//! The `sesr` subcommands.

use crate::args::{ArgError, Args};
use crate::pgm;
use sesr_core::ir::sesr_ir;
use sesr_core::model::{Sesr, SesrConfig};
use sesr_core::model_io::{load_model, save_model};
use sesr_core::train::{DivergenceGuard, TrainConfig, TrainError, Trainer};
use sesr_core::CollapsedSesr;
use sesr_data::TrainSet;
use sesr_npu::{simulate, EthosN78Like};
use std::fmt;
use std::path::Path;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Missing/invalid options.
    Args(ArgError),
    /// Unknown or missing subcommand; carries the usage text.
    Usage(String),
    /// I/O or decode failure.
    Io(std::io::Error),
    /// Training failed: divergence-guard abort or a bad checkpoint.
    Train(TrainError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Usage(u) => write!(f, "{u}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Train(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        CliError::Train(e)
    }
}

/// Usage text shown for bad invocations.
pub const USAGE: &str = "\
sesr — Super-Efficient Super Resolution (MLSys 2022 reproduction)

USAGE:
  sesr train    --out <model.sesr> [--m 5] [--f 16] [--scale 2] [--steps 500]
                [--expanded 64] [--batch 8] [--lr 5e-4] [--relu] [--seed N]
                [--ckpt <run.ckpt>] [--ckpt-every 50] [--resume <run.ckpt>]
                [--clip <max-grad-norm>] [--guard]
  sesr upscale  --model <model.sesr> --in <image.pgm> --out <sr.pgm> [--tile N]
  sesr simulate --model <model.sesr> [--height 1080] [--width 1920] [--tops 4]
  sesr info     --model <model.sesr>

Crash safety: with --ckpt, training state is checkpointed atomically every
--ckpt-every steps; after an interruption, rerun the same command with
--resume <run.ckpt> (and identical hyper-parameters) to continue
bit-identically. --guard enables divergence detection with automatic
rollback and learning-rate backoff.
";

/// Runs the CLI and returns its textual report.
///
/// # Errors
///
/// Returns [`CliError`] on bad arguments, unknown subcommands, or I/O
/// failure.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.subcommand() {
        Some("train") => train(args),
        Some("upscale") => upscale(args),
        Some("simulate") => simulate_cmd(args),
        Some("info") => info(args),
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn train(args: &Args) -> Result<String, CliError> {
    let out = args.required("out")?.to_string();
    let m = args.parsed_or("m", 5usize)?;
    let f = args.parsed_or("f", 16usize)?;
    let scale = args.parsed_or("scale", 2usize)?;
    let steps = args.parsed_or("steps", 500usize)?;
    let expanded = args.parsed_or("expanded", 64usize)?;
    let batch = args.parsed_or("batch", 8usize)?;
    let lr = args.parsed_or("lr", 5e-4f32)?;
    let seed = args.parsed_or("seed", 0x5E5Eu64)?;
    let images = args.parsed_or("images", 12usize)?;
    let ckpt_every = args.parsed_or("ckpt-every", 50usize)?;
    let resume = args.get("resume").filter(|v| !v.is_empty()).map(String::from);
    let ckpt = args
        .get("ckpt")
        .filter(|v| !v.is_empty())
        .map(String::from)
        .or_else(|| resume.clone());
    let grad_clip = match args.get("clip") {
        None => None,
        Some(_) => Some(args.parsed_or("clip", 1.0f32)?),
    };

    let mut config = SesrConfig {
        f,
        m,
        ..SesrConfig::m(m).with_expanded(expanded).with_seed(seed)
    }
    .with_scale(scale);
    if args.has("relu") {
        config = config.hardware_efficient();
    }
    let mut model = Sesr::new(config);
    let set = TrainSet::synthetic(images, 96, scale, seed ^ 0xDA7A);
    let trainer = Trainer::new(TrainConfig {
        steps,
        batch,
        hr_patch: 32,
        lr,
        log_every: (steps / 10).max(1),
        seed: seed ^ 0x57E9,
        grad_clip,
        guard: args.has("guard").then(DivergenceGuard::default),
        ..TrainConfig::default()
    });
    let report = match &ckpt {
        Some(path) => trainer.try_train_checkpointed(
            &mut model,
            &set,
            Path::new(path),
            ckpt_every,
            resume.is_some(),
        )?,
        None => trainer.try_train(&mut model, &set)?,
    };
    let collapsed = model.collapse();
    save_model(&collapsed, Path::new(&out))?;
    let mut summary = format!(
        "trained {} for {steps} steps (final L1 loss {:.4});\ncollapsed to {} layers / {} weight params;\nsaved to {out}",
        config.name(),
        report.final_loss,
        collapsed.layers().len(),
        collapsed.num_weight_params()
    );
    if let Some(step) = report.resumed_at {
        summary.push_str(&format!("\nresumed from checkpoint at step {step}"));
    }
    if !report.recoveries.is_empty() {
        summary.push_str(&format!(
            "\nrecovered from {} divergence event(s)",
            report.recoveries.len()
        ));
    }
    if let Some(path) = &ckpt {
        summary.push_str(&format!("\ncheckpoint: {path}"));
    }
    Ok(summary)
}

fn upscale(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?.to_string();
    let input = args.required("in")?.to_string();
    let output = args.required("out")?.to_string();
    let tile = args.parsed_or("tile", 0usize)?;
    let model = load_model(Path::new(&model_path))?;
    let lr = pgm::read(Path::new(&input))?;
    let sr = if tile > 0 {
        // Halo: the collapsed receptive-field radius is bounded by
        // 2 + (layers - 2) + 2; use it directly so tiling is seamless.
        let radius = model.layers().len() + 2;
        model.run_tiled(&lr, tile, radius)
    } else {
        model.run(&lr)
    };
    pgm::write(&sr, Path::new(&output))?;
    Ok(format!(
        "upscaled {}x{} -> {}x{} (x{}), wrote {output}",
        lr.shape()[1],
        lr.shape()[2],
        sr.shape()[1],
        sr.shape()[2],
        model.scale()
    ))
}

fn model_dims(model: &CollapsedSesr) -> (usize, usize) {
    // (f, m): middle layers have f output channels.
    let f = model.layers()[0].weight.shape()[0];
    let m = model.layers().len() - 2;
    (f, m)
}

fn simulate_cmd(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?.to_string();
    let h = args.parsed_or("height", 1080usize)?;
    let w = args.parsed_or("width", 1920usize)?;
    let tops = args.parsed_or("tops", 4.0f64)?;
    let model = load_model(Path::new(&model_path))?;
    let (f, m) = model_dims(&model);
    let mut cfg = EthosN78Like::default().0;
    cfg.peak_tops = tops;
    let ir = sesr_ir(f, m, model.scale(), model.has_input_residual(), h, w);
    let report = simulate(&ir, &cfg);
    let mut out = format!(
        "{} on a {tops}-TOP/s NPU, {h}x{w} input (x{}):\n  {:.2} GMACs, {:.1} MB DRAM, {:.2} ms -> {:.1} FPS ({:.0}% memory-bound)\n",
        ir.name,
        model.scale(),
        report.total_macs() as f64 / 1e9,
        report.dram_mb(),
        report.total_ms(),
        report.fps(),
        report.memory_bound_fraction() * 100.0
    );
    for l in &report.layers {
        out.push_str(&format!(
            "  {:<24} {:>7.3} ms {}\n",
            l.label,
            l.time_ms,
            if l.is_memory_bound() { "[mem]" } else { "[mac]" }
        ));
    }
    Ok(out)
}

fn info(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?.to_string();
    let model = load_model(Path::new(&model_path))?;
    let (f, m) = model_dims(&model);
    let mut out = format!(
        "SESR collapsed model: x{} SISR, {} layers (f = {f}, m = {m}), {} weight params ({} total)\nresiduals: feature={}, input={}\n",
        model.scale(),
        model.layers().len(),
        model.num_weight_params(),
        model.num_params(),
        model.has_feature_residual(),
        model.has_input_residual()
    );
    for (i, layer) in model.layers().iter().enumerate() {
        let s = layer.weight.shape();
        out.push_str(&format!(
            "  layer {i}: conv {}->{} {}x{} {}\n",
            s[1],
            s[0],
            s[2],
            s[3],
            match &layer.act {
                None => "(linear)",
                Some(sesr_core::collapsed::Act::Relu) => "+ ReLU",
                Some(sesr_core::collapsed::Act::PRelu(_)) => "+ PReLU",
            }
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_tensor::Tensor;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sesr_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_train_upscale_info_simulate_pipeline() {
        let model_path = tmp("pipeline.sesr");
        let report = run(&args(&format!(
            "train --out {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display()
        )))
        .unwrap();
        assert!(report.contains("saved to"));

        // Write a tiny input image.
        let img_path = tmp("in.pgm");
        let img = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, 1);
        pgm::write(&img, &img_path).unwrap();
        let out_path = tmp("out.pgm");
        let report = run(&args(&format!(
            "upscale --model {} --in {} --out {}",
            model_path.display(),
            img_path.display(),
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("16x16 -> 32x32"));
        let sr = pgm::read(&out_path).unwrap();
        assert_eq!(sr.shape(), &[1, 32, 32]);

        let report = run(&args(&format!("info --model {}", model_path.display()))).unwrap();
        assert!(report.contains("x2 SISR"));
        assert!(report.contains("layer 0"));

        let report = run(&args(&format!(
            "simulate --model {} --height 270 --width 480",
            model_path.display()
        )))
        .unwrap();
        assert!(report.contains("FPS"));
    }

    #[test]
    fn tiled_upscale_matches_whole() {
        let model_path = tmp("tiled.sesr");
        run(&args(&format!(
            "train --out {} --m 1 --steps 1 --expanded 4 --batch 2 --images 2",
            model_path.display()
        )))
        .unwrap();
        let img_path = tmp("tin.pgm");
        pgm::write(&Tensor::rand_uniform(&[1, 24, 24], 0.0, 1.0, 2), &img_path).unwrap();
        let whole_path = tmp("whole.pgm");
        let tiled_path = tmp("tiled.pgm");
        run(&args(&format!(
            "upscale --model {} --in {} --out {}",
            model_path.display(),
            img_path.display(),
            whole_path.display()
        )))
        .unwrap();
        run(&args(&format!(
            "upscale --model {} --in {} --out {} --tile 12",
            model_path.display(),
            img_path.display(),
            tiled_path.display()
        )))
        .unwrap();
        let whole = pgm::read(&whole_path).unwrap();
        let tiled = pgm::read(&tiled_path).unwrap();
        // 8-bit quantization allows at most one level of difference.
        assert!(whole.max_abs_diff(&tiled) <= 1.5 / 255.0);
    }

    #[test]
    fn checkpointed_train_writes_and_resumes() {
        let model_path = tmp("ckpt_train.sesr");
        let ckpt_path = tmp("ckpt_train.ckpt");
        std::fs::remove_file(&ckpt_path).ok();
        let flags = "--m 1 --steps 4 --expanded 4 --batch 2 --images 2 --ckpt-every 2 --guard --clip 5";
        let report = run(&args(&format!(
            "train --out {} --ckpt {} {flags}",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        assert!(report.contains("checkpoint:"));
        assert!(ckpt_path.exists());
        // Resuming the completed run is a no-op that reports its origin.
        let report = run(&args(&format!(
            "train --out {} --resume {} {flags}",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        assert!(report.contains("resumed from checkpoint at step 4"));
    }

    #[test]
    fn resume_with_different_config_is_rejected() {
        let model_path = tmp("mismatch.sesr");
        let ckpt_path = tmp("mismatch.ckpt");
        std::fs::remove_file(&ckpt_path).ok();
        run(&args(&format!(
            "train --out {} --ckpt {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        let err = run(&args(&format!(
            "train --out {} --resume {} --m 1 --steps 9 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Train(_)), "{err:?}");
        assert!(err.to_string().contains("different run"));
    }

    #[test]
    fn resume_from_corrupt_checkpoint_is_a_typed_error() {
        let model_path = tmp("corrupt.sesr");
        let ckpt_path = tmp("corrupt.ckpt");
        std::fs::remove_file(&ckpt_path).ok();
        run(&args(&format!(
            "train --out {} --ckpt {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        let mut bytes = std::fs::read(&ckpt_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&ckpt_path, &bytes).unwrap();
        let err = run(&args(&format!(
            "train --out {} --resume {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn unknown_subcommand_yields_usage() {
        let err = run(&args("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn missing_model_is_reported() {
        let err = run(&args("info --model /nonexistent/x.sesr")).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
