//! The `sesr` subcommands.

use crate::args::{ArgError, Args};
use crate::pgm;
use sesr_core::ir::sesr_ir;
use sesr_core::model::{Sesr, SesrConfig};
use sesr_core::model_io::{load_model, save_model};
use sesr_core::tiling::TileError;
use sesr_core::train::{DivergenceGuard, TrainConfig, TrainError, Trainer};
use sesr_core::CollapsedSesr;
use sesr_data::TrainSet;
use sesr_npu::{simulate, EthosN78Like};
use std::fmt;
use std::path::Path;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CliError {
    /// Missing/invalid options.
    Args(ArgError),
    /// Unknown or missing subcommand; carries the usage text.
    Usage(String),
    /// I/O or decode failure.
    Io(std::io::Error),
    /// Training failed: divergence-guard abort or a bad checkpoint.
    Train(TrainError),
    /// Invalid tiling geometry (zero tile, or overlap below the
    /// receptive-field radius).
    Tile(TileError),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Usage(u) => write!(f, "{u}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Train(e) => write!(f, "{e}"),
            CliError::Tile(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        CliError::Train(e)
    }
}

impl From<TileError> for CliError {
    fn from(e: TileError) -> Self {
        CliError::Tile(e)
    }
}

/// Usage text shown for bad invocations.
pub const USAGE: &str = "\
sesr — Super-Efficient Super Resolution (MLSys 2022 reproduction)

USAGE:
  sesr train    --out <model.sesr> [--m 5] [--f 16] [--scale 2] [--steps 500]
                [--expanded 64] [--batch 8] [--lr 5e-4] [--relu] [--seed N]
                [--ckpt <run.ckpt>] [--ckpt-every 50] [--resume <run.ckpt>]
                [--clip <max-grad-norm>] [--guard]
  sesr upscale  --model <model.sesr> --in <image.pgm> --out <sr.pgm> [--tile N]
  sesr simulate --model <model.sesr> [--height 1080] [--width 1920] [--tops 4]
  sesr info     --model <model.sesr>
  sesr serve-bench [--arch m5] [--scale 2] [--expanded 32] [--seed 0]
                [--workers 2] [--queue-cap 64] [--max-batch 8]
                [--requests 64] [--height 64] [--width 64]
                [--mode closed|open] [--concurrency 4] [--rate-hz 50]
                [--deadline-ms N] [--burst N] [--load-seed 0]
                [--intra-threads N] [--out BENCH_serve.json]
  sesr train-bench [--archs m5,m11] [--scale 2] [--expanded 16] [--seed 0]
                [--steps 10] [--warmup 2] [--batch 8] [--hr-patch 32]
                [--threads N] [--out BENCH_train.json]
  sesr infer-bench [--archs m5,m11] [--scale 2] [--expanded 16] [--seed 0]
                [--iters 30] [--warmup 5] [--height 180] [--width 320]
                [--threads N] [--variant scalar|avx2|avx2fma|neon]
                [--int8 on|off] [--psnr-budget 1.0]
                [--tuner-out tuned.sesr-tuner] [--out BENCH_infer.json]
  sesr serve-chaos [--seed 0xC4A05] [--requests 400] [--workers 3]
                [--concurrency 12] [--height 8] [--width 8]
                [--panic-per-mille 150] [--slow-per-mille 150]
                [--load-fail-per-mille 200] [--skew-per-mille 50]
                [--min-faults N]
  sesr router-bench [--seed 0xB0A7] [--phase-ms 3000] [--shards-low 1]
                [--shards-high 4] [--tenants 3] [--interactive-hz 30]
                [--deadline-ms 40] [--heavy-hz 12] [--big-height 432]
                [--big-width 576] [--overload-factor 2]
                [--overload-heavy-hz 16] [--autoscale-hz 600]
                [--autoscale-quiet-ms 1500]
                [--tuner-file tuned.sesr-tuner] [--out BENCH_router.json]
  sesr router-chaos [--seed 0xF1EE7] [--requests 450] [--shards 3]
                [--concurrency 24] [--kill-per-mille 12]
                [--wedge-per-mille 12] [--respawn-fail-per-mille 500]
                [--timeout-s 120]
  sesr video-bench [--height 96] [--width 96] [--tile 24] [--frames 24]
                [--scale 2] [--expanded 16] [--seed 7] [--overload 2]
                [--ladder m3,m5,m7,m11] [--out BENCH_video.json]
  sesr bench-gate --baseline <BENCH_x.json> --fresh <BENCH_x.json>
                [--max-regress 0.25]

Crash safety: with --ckpt, training state is checkpointed atomically every
--ckpt-every steps; after an interruption, rerun the same command with
--resume <run.ckpt> (and identical hyper-parameters) to continue
bit-identically. --guard enables divergence detection with automatic
rollback and learning-rate backoff.

Fault tolerance: serve-chaos drives seeded fault injection (worker
panics, slow forwards, registry load failures, clock-skewed deadlines)
through the serving engine under load, then fails unless every request
got exactly one terminal outcome and the fault/restart/retry counters
reconcile. router-chaos does the same at fleet scope: whole-shard kills,
wedged-slow shards, and failed respawns against the sharded router.

Multi-tenant serving: router-bench drives a deterministic tenant mix
(interactive small-image tenants under tight deadlines plus one heavy
batch tenant) at 1 vs N shards, measuring goodput scaling from
head-of-line-blocking elimination, then an overload phase checking that
batch is shed before any interactive request is rejected, then an
elastic phase starting at the low shard count with the autoscale
controller enabled: it must scale up under pressure (warm shards via
the shared plan store), reject no interactive work, and drain back down
in the quiet tail.

Streaming video: video-bench measures temporal tile reuse on synthetic
static/pan/scene-cut sequences (frames/sec vs a full-recompute
baseline, bit-identity checked) plus the any-time ladder under a 2x
overloaded per-frame deadline (miss rate, rung histogram, PSNR vs the
top-rung composite).
";

/// Runs the CLI and returns its textual report.
///
/// # Errors
///
/// Returns [`CliError`] on bad arguments, unknown subcommands, or I/O
/// failure.
pub fn run(args: &Args) -> Result<String, CliError> {
    match args.subcommand() {
        Some("train") => train(args),
        Some("upscale") => upscale(args),
        Some("simulate") => simulate_cmd(args),
        Some("info") => info(args),
        Some("serve-bench") => serve_bench(args),
        Some("serve-chaos") => serve_chaos(args),
        Some("router-bench") => router_bench(args),
        Some("router-chaos") => router_chaos(args),
        Some("video-bench") => video_bench(args),
        Some("train-bench") => train_bench(args),
        Some("infer-bench") => infer_bench(args),
        Some("bench-gate") => bench_gate(args),
        _ => Err(CliError::Usage(USAGE.to_string())),
    }
}

fn train(args: &Args) -> Result<String, CliError> {
    let out = args.required("out")?.to_string();
    let m = args.parsed_or("m", 5usize)?;
    let f = args.parsed_or("f", 16usize)?;
    let scale = args.parsed_or("scale", 2usize)?;
    let steps = args.parsed_or("steps", 500usize)?;
    let expanded = args.parsed_or("expanded", 64usize)?;
    let batch = args.parsed_or("batch", 8usize)?;
    let lr = args.parsed_or("lr", 5e-4f32)?;
    let seed = args.parsed_or("seed", 0x5E5Eu64)?;
    let images = args.parsed_or("images", 12usize)?;
    let ckpt_every = args.parsed_or("ckpt-every", 50usize)?;
    let resume = args
        .get("resume")
        .filter(|v| !v.is_empty())
        .map(String::from);
    let ckpt = args
        .get("ckpt")
        .filter(|v| !v.is_empty())
        .map(String::from)
        .or_else(|| resume.clone());
    let grad_clip = match args.get("clip") {
        None => None,
        Some(_) => Some(args.parsed_or("clip", 1.0f32)?),
    };

    let mut config = SesrConfig {
        f,
        m,
        ..SesrConfig::m(m).with_expanded(expanded).with_seed(seed)
    }
    .with_scale(scale);
    if args.has("relu") {
        config = config.hardware_efficient();
    }
    let mut model = Sesr::new(config);
    let set = TrainSet::synthetic(images, 96, scale, seed ^ 0xDA7A);
    let trainer = Trainer::new(TrainConfig {
        steps,
        batch,
        hr_patch: 32,
        lr,
        log_every: (steps / 10).max(1),
        seed: seed ^ 0x57E9,
        grad_clip,
        guard: args.has("guard").then(DivergenceGuard::default),
        ..TrainConfig::default()
    });
    let report = match &ckpt {
        Some(path) => trainer.try_train_checkpointed(
            &mut model,
            &set,
            Path::new(path),
            ckpt_every,
            resume.is_some(),
        )?,
        None => trainer.try_train(&mut model, &set)?,
    };
    let collapsed = model.collapse();
    save_model(&collapsed, Path::new(&out))?;
    let mut summary = format!(
        "trained {} for {steps} steps (final L1 loss {:.4});\ncollapsed to {} layers / {} weight params;\nsaved to {out}",
        config.name(),
        report.final_loss,
        collapsed.layers().len(),
        collapsed.num_weight_params()
    );
    if let Some(step) = report.resumed_at {
        summary.push_str(&format!("\nresumed from checkpoint at step {step}"));
    }
    if !report.recoveries.is_empty() {
        summary.push_str(&format!(
            "\nrecovered from {} divergence event(s)",
            report.recoveries.len()
        ));
    }
    if let Some(path) = &ckpt {
        summary.push_str(&format!("\ncheckpoint: {path}"));
    }
    Ok(summary)
}

/// LR pixel count above which `upscale` switches to the tiled path on its
/// own: beyond this, the whole-image im2col buffer for the 5x5 stages gets
/// large enough (~25x the image) to dominate memory.
const AUTO_TILE_PIXELS: usize = 256 * 256;

/// Tile side used when auto-tiling kicks in.
const AUTO_TILE_SIDE: usize = 128;

fn upscale(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?.to_string();
    let input = args.required("in")?.to_string();
    let output = args.required("out")?.to_string();
    let model = load_model(Path::new(&model_path))?;
    let lr = pgm::read(Path::new(&input))?;
    // Explicit --tile N tiles at that size; --tile 0 forces whole-image;
    // no flag picks automatically so large inputs never allocate a
    // full-image im2col buffer.
    let tile = match args.get("tile") {
        Some(_) => args.parsed_or("tile", 0usize)?,
        None if lr.shape()[1] * lr.shape()[2] > AUTO_TILE_PIXELS => AUTO_TILE_SIDE,
        None => 0,
    };
    let (sr, how) = if tile > 0 {
        let radius = model.receptive_field_radius();
        (
            model.run_tiled_parallel(&lr, tile, radius)?,
            format!("tiled {tile}px"),
        )
    } else {
        (model.run(&lr), "whole-image".to_string())
    };
    pgm::write(&sr, Path::new(&output))?;
    Ok(format!(
        "upscaled {}x{} -> {}x{} (x{}, {how}), wrote {output}",
        lr.shape()[1],
        lr.shape()[2],
        sr.shape()[1],
        sr.shape()[2],
        model.scale()
    ))
}

fn model_dims(model: &CollapsedSesr) -> (usize, usize) {
    // (f, m): middle layers have f output channels.
    let f = model.layers()[0].weight.shape()[0];
    let m = model.layers().len() - 2;
    (f, m)
}

fn simulate_cmd(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?.to_string();
    let h = args.parsed_or("height", 1080usize)?;
    let w = args.parsed_or("width", 1920usize)?;
    let tops = args.parsed_or("tops", 4.0f64)?;
    let model = load_model(Path::new(&model_path))?;
    let (f, m) = model_dims(&model);
    let mut cfg = EthosN78Like::default().0;
    cfg.peak_tops = tops;
    let ir = sesr_ir(f, m, model.scale(), model.has_input_residual(), h, w);
    let report = simulate(&ir, &cfg);
    let mut out = format!(
        "{} on a {tops}-TOP/s NPU, {h}x{w} input (x{}):\n  {:.2} GMACs, {:.1} MB DRAM, {:.2} ms -> {:.1} FPS ({:.0}% memory-bound)\n",
        ir.name,
        model.scale(),
        report.total_macs() as f64 / 1e9,
        report.dram_mb(),
        report.total_ms(),
        report.fps(),
        report.memory_bound_fraction() * 100.0
    );
    for l in &report.layers {
        out.push_str(&format!(
            "  {:<24} {:>7.3} ms {}\n",
            l.label,
            l.time_ms,
            if l.is_memory_bound() {
                "[mem]"
            } else {
                "[mac]"
            }
        ));
    }
    Ok(out)
}

fn info(args: &Args) -> Result<String, CliError> {
    let model_path = args.required("model")?.to_string();
    let model = load_model(Path::new(&model_path))?;
    let (f, m) = model_dims(&model);
    let mut out = format!(
        "SESR collapsed model: x{} SISR, {} layers (f = {f}, m = {m}), {} weight params ({} total)\nresiduals: feature={}, input={}\n",
        model.scale(),
        model.layers().len(),
        model.num_weight_params(),
        model.num_params(),
        model.has_feature_residual(),
        model.has_input_residual()
    );
    for (i, layer) in model.layers().iter().enumerate() {
        let s = layer.weight.shape();
        out.push_str(&format!(
            "  layer {i}: conv {}->{} {}x{} {}\n",
            s[1],
            s[0],
            s[2],
            s[3],
            match &layer.act {
                None => "(linear)",
                Some(sesr_core::collapsed::Act::Relu) => "+ ReLU",
                Some(sesr_core::collapsed::Act::PRelu(_)) => "+ PReLU",
            }
        ));
    }
    Ok(out)
}

fn serve_bench(args: &Args) -> Result<String, CliError> {
    use sesr_serve::engine::EngineConfig;
    use sesr_serve::loadgen::{LoadMode, LoadSpec};
    use sesr_serve::BenchConfig;

    let queue_cap = args.parsed_or("queue-cap", 64usize)?;
    let mode = match args.get("mode").unwrap_or("closed") {
        "closed" => LoadMode::Closed {
            concurrency: args.parsed_or("concurrency", 4usize)?,
        },
        "open" => LoadMode::Open {
            rate_hz: args.parsed_or("rate-hz", 50.0f64)?,
        },
        other => {
            return Err(CliError::Args(ArgError::Invalid {
                key: "mode".to_string(),
                value: other.to_string(),
            }))
        }
    };
    let deadline = match args.get("deadline-ms") {
        None => None,
        Some(_) => Some(std::time::Duration::from_millis(
            args.parsed_or("deadline-ms", 50u64)?,
        )),
    };
    let intra_op_threads = match args.get("intra-threads") {
        None => None,
        Some(_) => Some(args.parsed_or("intra-threads", 1usize)?),
    };
    let cfg = BenchConfig {
        arch: args.get("arch").unwrap_or("m5").to_string(),
        scale: args.parsed_or("scale", 2usize)?,
        expanded: args.parsed_or("expanded", 32usize)?,
        seed: args.parsed_or("seed", 0u64)?,
        engine: EngineConfig {
            workers: args.parsed_or("workers", 2usize)?,
            queue_capacity: queue_cap,
            max_batch: args.parsed_or("max-batch", 8usize)?,
            ..EngineConfig::default()
        },
        load: LoadSpec {
            requests: args.parsed_or("requests", 64usize)?,
            mode,
            height: args.parsed_or("height", 64usize)?,
            width: args.parsed_or("width", 64usize)?,
            seed: args.parsed_or("load-seed", 0u64)?,
            deadline,
            // The default burst oversubscribes the queue against a paused
            // engine, so every report demonstrates the rejection path.
            burst: args.parsed_or("burst", queue_cap + 16)?,
        },
        intra_op_threads,
        model_dir: None,
    };
    let out_path = args.get("out").unwrap_or("BENCH_serve.json").to_string();

    let outcome =
        sesr_serve::run_bench(&cfg).map_err(|e| CliError::Io(std::io::Error::other(e)))?;
    let json = sesr_serve::bench_report_json(&cfg, &outcome);
    sesr_serve::json::validate(&json)
        .map_err(|e| CliError::Io(std::io::Error::other(format!("malformed report: {e}"))))?;
    std::fs::write(Path::new(&out_path), &json)?;

    let r = &outcome.report;
    let mut summary = format!(
        "serve-bench {}x{}: {} requests ({} completed, {} rejected, {} expired)\n  throughput {:.1} req/s, {:.2} MP/s output; burst: {}/{} rejected\n",
        cfg.arch,
        cfg.scale,
        r.submitted,
        r.completed,
        r.rejected,
        r.deadline_expired,
        r.throughput_rps,
        r.output_megapixels_per_s,
        r.burst_rejected,
        r.burst_rejected + r.burst_admitted,
    );
    for (name, s) in &outcome.snapshot.stages {
        if s.count > 0 {
            summary.push_str(&format!(
                "  {name:<15} p50 {:>8.3} ms  p95 {:>8.3} ms  p99 {:>8.3} ms  (n={})\n",
                s.p50_ms, s.p95_ms, s.p99_ms, s.count
            ));
        }
    }
    summary.push_str(&format!("wrote {out_path}"));
    Ok(summary)
}

/// The chaos soak: drive seeded fault injection through the serving
/// engine under closed-loop load, then reconcile the client's view of
/// outcomes against the engine's fault/restart/retry ledger. Returns an
/// error (failing the CI step) if any request is lost, any counter
/// disagrees, or the drain misses its deadline.
fn serve_chaos(args: &Args) -> Result<String, CliError> {
    use sesr_serve::chaos::ChaosConfig;
    use sesr_serve::engine::{Engine, EngineConfig, ServeError, Ticket};
    use sesr_serve::registry::{ModelKey, ModelRegistry};
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::Duration;

    let requests = args.parsed_or("requests", 400u64)?;
    let seed = parse_seed(args, "seed", 0xC4A05)?;
    let workers = args.parsed_or("workers", 3usize)?;
    let concurrency = args.parsed_or("concurrency", 12usize)?.max(1);
    let height = args.parsed_or("height", 8usize)?;
    let width = args.parsed_or("width", 8usize)?;
    let min_faults = args.parsed_or("min-faults", requests / 8)?;
    let chaos = ChaosConfig {
        seed,
        panic_per_mille: args.parsed_or("panic-per-mille", 150u32)?,
        slow_per_mille: args.parsed_or("slow-per-mille", 150u32)?,
        load_fail_per_mille: args.parsed_or("load-fail-per-mille", 200u32)?,
        skew_per_mille: args.parsed_or("skew-per-mille", 50u32)?,
        slow: Duration::from_millis(args.parsed_or("slow-ms", 1u64)?),
        // Far beyond the request deadline: a skewed clock expires its
        // whole batch deterministically.
        skew: Duration::from_secs(60),
    };

    let model = Sesr::new(SesrConfig::m(2).with_expanded(8).with_seed(seed)).collapse();
    let key = ModelKey::new("m2", 2);
    let registry = Arc::new(ModelRegistry::new(4));
    registry.insert(key.clone(), model);
    let cfg = EngineConfig {
        workers,
        queue_capacity: 256,
        max_batch: 3,
        max_retries: 3,
        restart_budget: 10_000,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        chaos: Some(chaos),
        ..EngineConfig::default()
    };
    let batch_path_only = height * width <= cfg.tile_threshold_px;
    let engine = Engine::new(cfg, registry);

    let deadline = Some(Duration::from_secs(30));
    let (mut ok, mut expired, mut load_failed, mut crashed, mut other) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut resolve = |t: Ticket| match t.wait() {
        Ok(_) => ok += 1,
        Err(ServeError::DeadlineExpired) => expired += 1,
        Err(ServeError::ModelLoad(_)) => load_failed += 1,
        Err(ServeError::WorkerCrashed(_)) => crashed += 1,
        Err(_) => other += 1,
    };
    let mut inflight: VecDeque<Ticket> = VecDeque::new();
    for i in 0..requests {
        while inflight.len() >= concurrency {
            if let Some(t) = inflight.pop_front() {
                resolve(t);
            }
        }
        let input = sesr_tensor::Tensor::rand_uniform(&[1, height, width], 0.0, 1.0, i);
        match engine.submit(&key, input, deadline) {
            Ok(t) => inflight.push_back(t),
            Err(e) => {
                return Err(CliError::Io(std::io::Error::other(format!(
                    "submission rejected under soak load: {e}"
                ))))
            }
        }
    }
    for t in inflight {
        resolve(t);
    }
    let drain = engine.shutdown(Duration::from_secs(10));
    let c = engine.telemetry().snapshot().counters;

    let outcomes = ok + expired + load_failed + crashed + other;
    let fault_sum = c.faults_panic + c.faults_slow + c.faults_load + c.faults_skew;
    let mut problems: Vec<String> = Vec::new();
    if outcomes != requests {
        problems.push(format!(
            "lost requests: {outcomes} terminal outcomes for {requests} submissions"
        ));
    }
    if other != 0 {
        problems.push(format!("{other} request(s) saw an unexpected error kind"));
    }
    if c.faults_injected != fault_sum {
        problems.push(format!(
            "faults_injected {} != per-point sum {fault_sum}",
            c.faults_injected
        ));
    }
    if c.faults_injected < min_faults {
        problems.push(format!(
            "only {} faults injected (need >= {min_faults}; raise rates or requests)",
            c.faults_injected
        ));
    }
    if c.completed != ok {
        problems.push(format!(
            "engine completed {} but client saw {ok}",
            c.completed
        ));
    }
    if c.requests_quarantined != crashed {
        problems.push(format!(
            "quarantined {} but client saw {crashed} crash errors",
            c.requests_quarantined
        ));
    }
    if batch_path_only && c.worker_restarts != c.faults_panic {
        problems.push(format!(
            "{} worker restarts for {} injected panics",
            c.worker_restarts, c.faults_panic
        ));
    }
    if c.requests_retried + c.requests_quarantined + load_failed < c.faults_panic + c.faults_load {
        problems.push(format!(
            "retries {} + quarantined {} + load failures {load_failed} do not cover panic {} + load {} faults",
            c.requests_retried, c.requests_quarantined, c.faults_panic, c.faults_load
        ));
    }
    if !drain.joined {
        problems.push("shutdown failed to join workers within its deadline".to_string());
    }
    if drain.dropped != 0 {
        problems.push(format!(
            "{} settled requests were re-dropped in drain",
            drain.dropped
        ));
    }

    let summary = format!(
        "serve-chaos seed {seed:#x}: {requests} requests ({height}x{width}), {workers} workers\n\
         \x20 outcomes: {ok} ok, {expired} expired, {load_failed} load-failed, {crashed} crashed\n\
         \x20 faults injected: {} (panic {}, slow {}, load {}, skew {})\n\
         \x20 recovery: {} worker restarts, {} retries, {} quarantined\n\
         \x20 drain: joined={} in {:.0} ms, {} dropped",
        c.faults_injected,
        c.faults_panic,
        c.faults_slow,
        c.faults_load,
        c.faults_skew,
        c.worker_restarts,
        c.requests_retried,
        c.requests_quarantined,
        drain.joined,
        drain.elapsed.as_secs_f64() * 1e3,
        drain.dropped,
    );
    if problems.is_empty() {
        Ok(format!(
            "{summary}\nchaos soak reconciled: zero lost requests"
        ))
    } else {
        Err(CliError::Io(std::io::Error::other(format!(
            "{summary}\nchaos reconciliation FAILED:\n  {}",
            problems.join("\n  ")
        ))))
    }
}

/// Parses a seed option; seeds are conventionally written in hex, so
/// both `0x…` and decimal are accepted.
fn parse_seed(args: &Args, key: &str, default: u64) -> Result<u64, CliError> {
    match args.get(key) {
        None => Ok(default),
        Some(s) => s
            .strip_prefix("0x")
            .or_else(|| s.strip_prefix("0X"))
            .map_or_else(
                || s.parse::<u64>().ok(),
                |hex| u64::from_str_radix(hex, 16).ok(),
            )
            .ok_or_else(|| {
                CliError::Args(ArgError::Invalid {
                    key: key.to_string(),
                    value: s.to_string(),
                })
            }),
    }
}

/// The multi-tenant router bench: shard-scaling goodput plus the
/// overload/shedding phase, written to `BENCH_router.json`.
fn router_bench(args: &Args) -> Result<String, CliError> {
    use sesr_serve::router_bench::{router_bench_report_json, run_router_bench, RouterBenchConfig};
    use std::time::Duration;

    let d = RouterBenchConfig::default();
    let cfg = RouterBenchConfig {
        seed: parse_seed(args, "seed", d.seed)?,
        phase: Duration::from_millis(args.parsed_or("phase-ms", d.phase.as_millis() as u64)?),
        shard_counts: (
            args.parsed_or("shards-low", d.shard_counts.0)?.max(1),
            args.parsed_or("shards-high", d.shard_counts.1)?.max(1),
        ),
        interactive_tenants: args.parsed_or("tenants", d.interactive_tenants)?.max(1),
        interactive_hz: args.parsed_or("interactive-hz", d.interactive_hz)?,
        interactive_deadline: Duration::from_millis(
            args.parsed_or("deadline-ms", d.interactive_deadline.as_millis() as u64)?,
        ),
        heavy_hz: args.parsed_or("heavy-hz", d.heavy_hz)?,
        big: (
            args.parsed_or("big-height", d.big.0)?,
            args.parsed_or("big-width", d.big.1)?,
        ),
        overload_factor: args.parsed_or("overload-factor", d.overload_factor)?,
        overload_heavy_hz: args.parsed_or("overload-heavy-hz", d.overload_heavy_hz)?,
        autoscale_hz: args.parsed_or("autoscale-hz", d.autoscale_hz)?,
        autoscale_quiet: Duration::from_millis(
            args.parsed_or("autoscale-quiet-ms", d.autoscale_quiet.as_millis() as u64)?,
        ),
        tuner_file: args.get("tuner-file").map(std::path::PathBuf::from),
        ..d
    };
    let out_path = args.get("out").unwrap_or("BENCH_router.json").to_string();

    let report = run_router_bench(&cfg).map_err(|e| CliError::Io(std::io::Error::other(e)))?;
    let json = router_bench_report_json(&cfg, &report);
    sesr_serve::json::validate(&json)
        .map_err(|e| CliError::Io(std::io::Error::other(format!("malformed report: {e}"))))?;
    std::fs::write(Path::new(&out_path), &json)?;

    let mut summary = format!(
        "router-bench seed {:#x}: goodput {:.1} rps @ {} shard(s) -> {:.1} rps @ {} shards ({:.2}x)\n",
        cfg.seed,
        report.low.rps,
        report.low.shards,
        report.high.rps,
        report.high.shards,
        report.scaling_x,
    );
    let oc = &report.overload.snapshot.counters;
    summary.push_str(&format!(
        "  overload ({}x interactive, heavy {} rps): {} completed, {} batch shed, {} degraded, {} interactive rejected\n",
        cfg.overload_factor, cfg.overload_heavy_hz, oc.completed, oc.shed_batch, oc.degraded, oc.rejected_interactive,
    ));
    for t in &report.overload.snapshot.tenants {
        summary.push_str(&format!(
            "  {:<10} {:>5} completed  p50 {:>8.2} ms  p95 {:>8.2} ms  p99 {:>8.2} ms\n",
            t.tenant, t.completed, t.p50_ms, t.p95_ms, t.p99_ms
        ));
    }
    let sc = &report.autoscale.snapshot.counters;
    summary.push_str(&format!(
        "  autoscale (start {} shard(s), bound {}): {:.1} rps, {} up / {} down, {} keys rebalanced, {} warm plan hits, {} interactive rejected\n",
        cfg.shard_counts.0,
        cfg.shard_counts.1,
        report.autoscale.rps,
        sc.scale_up_events,
        sc.scale_down_events,
        sc.keys_rebalanced,
        sc.replication_warm_hits,
        sc.rejected_interactive,
    ));
    summary.push_str(&format!("wrote {out_path}"));
    if report.problems.is_empty() {
        Ok(summary)
    } else {
        Err(CliError::Io(std::io::Error::other(format!(
            "{summary}\nrouter-bench FAILED:\n  {}",
            report.problems.join("\n  ")
        ))))
    }
}

/// The streaming-video bench: temporal tile reuse fps/speedup plus the
/// any-time deadline phase on synthetic sequences, written to
/// `BENCH_video.json`.
fn video_bench(args: &Args) -> Result<String, CliError> {
    use sesr_serve::video_bench::{run_video_bench, video_bench_report_json, VideoBenchConfig};

    let d = VideoBenchConfig::default();
    let ladder = match args.get("ladder") {
        Some(list) => list
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect(),
        None => d.ladder.clone(),
    };
    let cfg = VideoBenchConfig {
        height: args.parsed_or("height", d.height)?,
        width: args.parsed_or("width", d.width)?,
        tile: args.parsed_or("tile", d.tile)?.max(1),
        frames: args.parsed_or("frames", d.frames)?.max(2),
        scale: args.parsed_or("scale", d.scale)?,
        expanded: args.parsed_or("expanded", d.expanded)?,
        seed: parse_seed(args, "seed", d.seed)?,
        overload: args.parsed_or("overload", d.overload)?,
        ladder,
    };
    let out_path = args.get("out").unwrap_or("BENCH_video.json").to_string();

    let report = run_video_bench(&cfg).map_err(|e| CliError::Io(std::io::Error::other(e)))?;
    let json = video_bench_report_json(&report);
    sesr_serve::json::validate(&json)
        .map_err(|e| CliError::Io(std::io::Error::other(format!("malformed report: {e}"))))?;
    std::fs::write(Path::new(&out_path), &json)?;

    let mut summary = format!(
        "video-bench {}x{} tile {} frames {} seed {:#x}:\n",
        cfg.height, cfg.width, cfg.tile, cfg.frames, cfg.seed
    );
    for s in &report.sequences {
        summary.push_str(&format!(
            "  {:<7} reuse {:>7.1} fps vs full {:>6.1} fps ({:.1}x), {} skipped / {} recomputed\n",
            s.name, s.reuse_fps, s.full_fps, s.speedup_x, s.tiles_skipped, s.tiles_recomputed,
        ));
        summary.push_str(&format!(
            "          anytime @ {:.2} ms: miss {:.0}%, {} degraded, rungs {:?}, {:.1} dB vs top\n",
            s.anytime.deadline_ms,
            s.anytime.miss_rate * 100.0,
            s.anytime.tiles_degraded,
            s.anytime.rungs,
            s.anytime.mean_psnr_db_vs_top,
        ));
    }
    summary.push_str(&format!("wrote {out_path}"));
    if report.problems.is_empty() {
        Ok(summary)
    } else {
        Err(CliError::Io(std::io::Error::other(format!(
            "{summary}\nvideo-bench FAILED:\n  {}",
            report.problems.join("\n  ")
        ))))
    }
}

/// The fleet-scope chaos soak: whole-shard kills, wedged-slow shards,
/// and failed respawns against the sharded router under closed-loop
/// multi-tenant load; fails unless every admitted request got exactly
/// one terminal outcome and the fleet ledger reconciles.
fn router_chaos(args: &Args) -> Result<String, CliError> {
    use sesr_serve::chaos::ShardChaosConfig;
    use std::time::Duration;

    let requests = args.parsed_or("requests", 450u64)?;
    let seed = parse_seed(args, "seed", 0xF1EE7)?;
    let shards = args.parsed_or("shards", 3usize)?.max(1);
    let concurrency = args.parsed_or("concurrency", 24usize)?.max(1);
    let timeout = Duration::from_secs(args.parsed_or("timeout-s", 120u64)?);
    let base_chaos = ShardChaosConfig {
        seed,
        kill_per_mille: args.parsed_or("kill-per-mille", 12u32)?,
        wedge_per_mille: args.parsed_or("wedge-per-mille", 12u32)?,
        respawn_fail_per_mille: args.parsed_or("respawn-fail-per-mille", 500u32)?,
        max_kills: 2,
        max_wedges: 2,
        max_respawn_fails: 2,
        // Far beyond the stall detector: the wedge must be *detected*
        // and drain-and-replaced, not sat out.
        wedge: Duration::from_secs(30),
        // Scaling-event faults stay off here: this harness runs a
        // fixed-size fleet; the autoscale soak test owns those points.
        ..ShardChaosConfig::default()
    };

    // The fault *schedule* is seeded, but whether e.g. a kill intersects
    // queued work (forcing a reroute) depends on wall-clock interleaving
    // between the load loop and the supervisor. A schedule miss — a
    // fault kind that never fired, or a kill that found an empty queue —
    // says nothing about the router, so it re-rolls with a perturbed
    // seed. Invariant violations (lost requests, ledger mismatches)
    // fail immediately on any attempt.
    const ATTEMPTS: u64 = 4;
    let mut last = String::new();
    for attempt in 0..ATTEMPTS {
        let shard_chaos = ShardChaosConfig {
            seed: seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
            ..base_chaos
        };
        let shard_seed = shard_chaos.seed;
        let (summary, schedule_misses, invariants) =
            run_router_chaos_soak(requests, shards, concurrency, timeout, shard_chaos)?;
        if !invariants.is_empty() {
            return Err(CliError::Io(std::io::Error::other(format!(
                "{summary}\nfleet chaos reconciliation FAILED:\n  {}",
                invariants.join("\n  ")
            ))));
        }
        if schedule_misses.is_empty() {
            let note = if attempt == 0 {
                String::new()
            } else {
                format!(" (fault schedule re-rolled {attempt}x)")
            };
            return Ok(format!(
                "{summary}\nfleet chaos soak reconciled: zero lost requests{note}"
            ));
        }
        last = format!(
            "{summary}\nattempt {attempt} (seed {shard_seed:#x}) missed:\n  {}",
            schedule_misses.join("\n  ")
        );
    }
    Err(CliError::Io(std::io::Error::other(format!(
        "{last}\nfault schedule never hit every kind in {ATTEMPTS} attempts (raise rates or requests)"
    ))))
}

/// One soak run. Returns `(summary, schedule_misses, invariant_problems)`:
/// the former are retryable properties of the seeded fault schedule, the
/// latter are real router bugs.
#[allow(clippy::type_complexity)]
fn run_router_chaos_soak(
    requests: u64,
    shards: usize,
    concurrency: usize,
    timeout: std::time::Duration,
    shard_chaos: sesr_serve::chaos::ShardChaosConfig,
) -> Result<(String, Vec<String>, Vec<String>), CliError> {
    use sesr_serve::chaos::ChaosConfig;
    use sesr_serve::engine::EngineConfig;
    use sesr_serve::registry::{ModelKey, ModelRegistry};
    use sesr_serve::{
        Priority, Router, RouterConfig, RouterServeError, RouterSubmitError, RouterTicket,
    };
    use std::collections::VecDeque;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let seed = shard_chaos.seed;
    let model = Sesr::new(SesrConfig::m(2).with_expanded(8).with_seed(seed)).collapse();
    let key = ModelKey::new("m2", 2);
    let registry = Arc::new(ModelRegistry::new(4));
    registry.insert(key.clone(), model);
    let router = Router::new(
        RouterConfig {
            shards,
            engine: EngineConfig {
                workers: 1,
                queue_capacity: 16,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                // Engine-level faults run concurrently with the shard
                // faults: panics exercise in-shard retry/respawn, and
                // slow-model delays keep queues non-empty so shard kills
                // intersect queued work (forcing reroutes). The seed is
                // fixed so --seed varies only the shard-fault schedule
                // against a stable slow/panic background.
                chaos: Some(ChaosConfig {
                    seed: 0xD15EA5E,
                    panic_per_mille: 15,
                    slow_per_mille: 150,
                    slow: Duration::from_millis(8),
                    load_fail_per_mille: 0,
                    skew_per_mille: 0,
                    ..ChaosConfig::default()
                }),
                ..EngineConfig::default()
            },
            shard_queue_capacity: 64,
            probe_interval: Duration::from_millis(2),
            stall_ticks: 100,
            respawn_budget: 32,
            reroute_budget: 8,
            respawn_backoff: Duration::from_millis(2),
            respawn_backoff_cap: Duration::from_millis(10),
            shard_chaos: Some(shard_chaos),
            ..RouterConfig::default()
        },
        registry,
    );

    let mut in_flight: VecDeque<RouterTicket> = VecDeque::new();
    let (mut ok, mut failed) = (0u64, 0u64);
    let resolve = |t: RouterTicket, ok: &mut u64, failed: &mut u64| match t.wait() {
        Ok(_) => *ok += 1,
        Err(
            RouterServeError::DeadlineExpired
            | RouterServeError::WorkerCrashed(_)
            | RouterServeError::ModelLoad(_)
            | RouterServeError::ShardLost(_)
            | RouterServeError::ShuttingDown,
        ) => *failed += 1,
    };
    let mut admitted = 0u64;
    let mut i = 0u64;
    let start = Instant::now();
    while admitted < requests {
        if start.elapsed() >= timeout {
            let snap = router.telemetry();
            return Err(CliError::Io(std::io::Error::other(format!(
                "router-chaos wedged: {admitted}/{requests} admitted after {}s\ncounters: {:?}",
                timeout.as_secs(),
                snap.counters
            ))));
        }
        i += 1;
        let tenant = format!("tenant-{}", i % 6);
        let class = if i.is_multiple_of(4) {
            Priority::Batch
        } else {
            Priority::Interactive
        };
        let input = sesr_tensor::Tensor::rand_uniform(&[1, 10, 10], 0.0, 1.0, i);
        match router.submit(&tenant, class, &key, input, Some(Duration::from_secs(20))) {
            Ok(t) => {
                admitted += 1;
                in_flight.push_back(t);
                if in_flight.len() >= concurrency {
                    if let Some(t) = in_flight.pop_front() {
                        resolve(t, &mut ok, &mut failed);
                    }
                }
            }
            Err(
                RouterSubmitError::ShedBatch
                | RouterSubmitError::Overloaded
                | RouterSubmitError::Throttled { .. }
                | RouterSubmitError::NoHealthyShard,
            ) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => {
                return Err(CliError::Io(std::io::Error::other(format!(
                    "unexpected rejection under chaos: {e}"
                ))))
            }
        }
    }
    while let Some(t) = in_flight.pop_front() {
        resolve(t, &mut ok, &mut failed);
    }
    let snap = router.telemetry();
    let c = snap.counters;
    let mut invariants = snap.reconcile();
    let mut schedule_misses = Vec::new();
    for (fired, what) in [
        (c.shard_kills >= 1, "no whole-shard kill fired"),
        (c.shard_wedges >= 1, "no shard wedge fired"),
        (c.respawn_failures >= 1, "no respawn failure fired"),
        (c.shard_respawns >= 1, "no shard respawned"),
        (c.wedges_detected >= 1, "stall probe never detected a wedge"),
        (c.rerouted >= 1, "no request was rerouted"),
        (
            c.breaker_opens >= 1 && c.breaker_half_opens >= 1,
            "circuit breaker never cycled open -> half-open",
        ),
    ] {
        if !fired {
            schedule_misses.push(what.to_string());
        }
    }
    if ok + failed != admitted {
        invariants.push(format!(
            "lost requests: client saw {ok}+{failed} outcomes for {admitted} admissions"
        ));
    }
    if c.admitted() != admitted {
        invariants.push(format!(
            "router admitted {} != client {admitted}",
            c.admitted()
        ));
    }
    if c.completed != ok {
        invariants.push(format!(
            "router completed {} != client ok {ok}",
            c.completed
        ));
    }
    if ok <= admitted / 2 {
        invariants.push(format!("chaos failed the majority: ok={ok} of {admitted}"));
    }
    let report = router.shutdown(Duration::from_secs(10));
    if !report.joined {
        invariants.push("shutdown failed to join within its deadline".to_string());
    }
    for p in router.telemetry().reconcile() {
        invariants.push(format!("post-shutdown: {p}"));
    }

    let summary = format!(
        "router-chaos seed {seed:#x}: {requests} requests, {shards} shards\n\
         \x20 outcomes: {ok} ok, {failed} failed; rerouted {}, requeued {}\n\
         \x20 shard faults: {} kills, {} wedges ({} detected), {} respawn failures, {} respawns\n\
         \x20 breaker: {} opens, {} half-opens, {} closes\n\
         \x20 drain: joined={} in {:.0} ms",
        c.rerouted,
        c.requeued_backpressure,
        c.shard_kills,
        c.shard_wedges,
        c.wedges_detected,
        c.respawn_failures,
        c.shard_respawns,
        c.breaker_opens,
        c.breaker_half_opens,
        c.breaker_closes,
        report.joined,
        report.elapsed.as_secs_f64() * 1e3,
    );
    Ok((summary, schedule_misses, invariants))
}

fn train_bench(args: &Args) -> Result<String, CliError> {
    use sesr_bench::TrainBenchConfig;

    let threads = match args.get("threads") {
        None => None,
        Some(_) => Some(args.parsed_or("threads", 4usize)?),
    };
    let cfg = TrainBenchConfig {
        archs: args
            .get("archs")
            .unwrap_or("m5,m11")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        scale: args.parsed_or("scale", 2usize)?,
        expanded: args.parsed_or("expanded", 16usize)?,
        seed: args.parsed_or("seed", 0u64)?,
        steps: args.parsed_or("steps", 10usize)?,
        warmup: args.parsed_or("warmup", 2usize)?,
        batch: args.parsed_or("batch", 8usize)?,
        hr_patch: args.parsed_or("hr-patch", 32usize)?,
        threads,
    };
    let out_path = args.get("out").unwrap_or("BENCH_train.json").to_string();

    let results =
        sesr_bench::run_train_bench(&cfg).map_err(|e| CliError::Io(std::io::Error::other(e)))?;
    let json = sesr_bench::train_bench_report_json(&cfg, &results);
    sesr_serve::json::validate(&json)
        .map_err(|e| CliError::Io(std::io::Error::other(format!("malformed report: {e}"))))?;
    std::fs::write(Path::new(&out_path), &json)?;

    let mut summary = String::new();
    for r in &results {
        summary.push_str(&format!(
            "train-bench {}x{} (expanded {}): {:.3} steps/s over {} steps ({:.0} ms)\n  phases: sample {:.0} ms, forward {:.0} ms, backward {:.0} ms, update {:.0} ms\n",
            r.arch,
            cfg.scale,
            cfg.expanded,
            r.steps_per_sec,
            r.steps,
            r.wall_ms,
            r.phases.sample,
            r.phases.forward,
            r.phases.backward,
            r.phases.update,
        ));
        let mut ops: Vec<_> = r.profile.entries().collect();
        ops.sort_by_key(|e| std::cmp::Reverse(e.1.nanos));
        for (name, stat) in ops.iter().take(5) {
            summary.push_str(&format!(
                "  {name:<22} {:>8.1} ms  ({} calls)\n",
                stat.nanos as f64 / 1e6,
                stat.calls
            ));
        }
    }
    summary.push_str(&format!("wrote {out_path}"));
    Ok(summary)
}

fn infer_bench(args: &Args) -> Result<String, CliError> {
    use sesr_bench::InferBenchConfig;

    let threads = match args.get("threads") {
        None => None,
        Some(_) => Some(args.parsed_or("threads", 4usize)?),
    };
    let cfg = InferBenchConfig {
        archs: args
            .get("archs")
            .unwrap_or("m5,m11")
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
        scale: args.parsed_or("scale", 2usize)?,
        expanded: args.parsed_or("expanded", 16usize)?,
        seed: args.parsed_or("seed", 0u64)?,
        iters: args.parsed_or("iters", 30usize)?,
        warmup: args.parsed_or("warmup", 5usize)?,
        h: args.parsed_or("height", 180usize)?,
        w: args.parsed_or("width", 320usize)?,
        threads,
        variant: args.get("variant").map(str::to_string),
        int8: args.get("int8").map(|v| v != "off").unwrap_or(true),
        psnr_budget: args.parsed_or("psnr-budget", 1.0f64)?,
    };
    let out_path = args.get("out").unwrap_or("BENCH_infer.json").to_string();
    let tuner_out = args.get("tuner-out").map(str::to_string);

    let results =
        sesr_bench::run_infer_bench(&cfg).map_err(|e| CliError::Io(std::io::Error::other(e)))?;
    let json = sesr_bench::infer_bench_report_json(&cfg, &results);
    sesr_serve::json::validate(&json)
        .map_err(|e| CliError::Io(std::io::Error::other(format!("malformed report: {e}"))))?;
    std::fs::write(Path::new(&out_path), &json)?;

    let mut summary = String::new();
    for r in &results {
        summary.push_str(&format!(
            "infer-bench {}x{} {}x{}: planned {:.2} img/s vs reference {:.2} img/s ({:.2}x), arena {} KiB, variant {}
",
            r.arch,
            cfg.scale,
            cfg.h,
            cfg.w,
            r.planned_images_per_sec,
            r.reference_images_per_sec,
            r.speedup,
            r.arena_bytes / 1024,
            r.variant,
        ));
        if let Some(q) = &r.int8 {
            summary.push_str(&format!(
                "  int8 {:.2} img/s ({:.2}x vs planned), dPSNR {:+.3} dB (budget {:.2}), arena {} KiB
",
                q.int8_images_per_sec,
                q.speedup_vs_planned,
                q.delta_psnr_db,
                cfg.psnr_budget,
                q.arena_bytes / 1024,
            ));
        }
        for (i, ms) in r.layer_ms.iter().enumerate() {
            summary.push_str(&format!(
                "  layer {i:<2} {:>8.2} ms total ({:.3} ms/run)
",
                ms,
                ms / r.iters as f64
            ));
        }
    }
    // The bench's autotuned GEMM blockings live in the process-wide
    // cache; --tuner-out persists them so engine spawns (serve/router,
    // including elastic scale-ups) start warm instead of re-tuning.
    if let Some(path) = tuner_out {
        let n = sesr_tensor::autotune::save_choices(Path::new(&path))?;
        summary.push_str(&format!("saved {n} tuned GEMM blocking(s) to {path}\n"));
    }
    summary.push_str(&format!("wrote {out_path}"));
    Ok(summary)
}

/// Keys the bench gate knows how to compare, per report kind
/// (identified by the top-level `"bench"` tag).
fn gate_metric_paths(kind: &str) -> Result<Vec<&'static [&'static str]>, CliError> {
    match kind {
        "sesr-serve" => Ok(vec![&["results", "throughput_rps"]]),
        "sesr-router" => Ok(vec![
            &["results", "shards_4", "rps"],
            &["results", "scaling_x"],
            &["results", "autoscale", "rps"],
        ]),
        // Only the absolute fps numbers are gated. speedup_x is a ratio
        // of two measurements whose denominator (static full_fps, a
        // short run) wobbles run to run — the bench's own `problems`
        // check enforces the absolute 5x floor instead. PSNR-vs-top is
        // not gated either: with seeded (untrained) ladder weights it
        // can sit below zero, where the multiplicative regression floor
        // inverts; the miss-rate `problems` check covers the any-time
        // contract.
        "sesr-video" => Ok(vec![
            &["results", "static", "reuse_fps"],
            &["results", "pan", "reuse_fps"],
            &["results", "cut", "reuse_fps"],
        ]),
        "sesr-train" | "sesr-infer" => Ok(vec![]), // resolved per-arch below
        other => Err(CliError::Io(std::io::Error::other(format!(
            "unknown bench kind {other:?} (expected sesr-serve|sesr-router|sesr-video|sesr-train|sesr-infer)"
        )))),
    }
}

/// Throughput metric name for report kinds whose `results` object is
/// keyed by architecture label.
fn per_arch_metric(kind: &str) -> Option<&'static str> {
    match kind {
        "sesr-train" => Some("steps_per_sec"),
        "sesr-infer" => Some("planned_images_per_sec"),
        _ => None,
    }
}

fn bench_gate(args: &Args) -> Result<String, CliError> {
    use sesr_serve::json::JsonValue;

    let baseline_path = args.required("baseline")?.to_string();
    let fresh_path = args.required("fresh")?.to_string();
    let max_regress = args.parsed_or("max-regress", 0.25f64)?;

    let load = |path: &str| -> Result<JsonValue, CliError> {
        let text = std::fs::read_to_string(Path::new(path))?;
        JsonValue::parse(&text)
            .map_err(|e| CliError::Io(std::io::Error::other(format!("{path}: {e}"))))
    };
    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;

    let kind = baseline
        .get(&["bench"])
        .and_then(JsonValue::as_str)
        .ok_or_else(|| CliError::Io(std::io::Error::other("baseline missing \"bench\" tag")))?
        .to_string();
    if fresh.get(&["bench"]).and_then(JsonValue::as_str) != Some(&kind) {
        return Err(CliError::Io(std::io::Error::other(
            "baseline and fresh reports are different bench kinds",
        )));
    }

    // Train/infer reports key their throughput metric under
    // results.<arch>.<metric>; compare every arch in the baseline.
    let mut metrics: Vec<(String, f64, f64)> = Vec::new();
    if let Some(metric) = per_arch_metric(&kind) {
        let archs = baseline
            .get(&["results"])
            .and_then(JsonValue::as_object_keys)
            .ok_or_else(|| CliError::Io(std::io::Error::other("baseline missing results")))?;
        for arch in archs {
            let path = ["results", arch.as_str(), metric];
            let b = baseline.get(&path).and_then(JsonValue::as_f64);
            let f = fresh.get(&path).and_then(JsonValue::as_f64);
            match (b, f) {
                (Some(b), Some(f)) => metrics.push((format!("{arch}.{metric}"), b, f)),
                _ => {
                    return Err(CliError::Io(std::io::Error::other(format!(
                        "missing results.{arch}.{metric} in baseline or fresh report"
                    ))))
                }
            }
            // Infer reports also carry an int8 lane when the baseline ran
            // with int8 enabled; once gated, a fresh report may not
            // silently drop it (e.g. by benching with --int8 off).
            if kind == "sesr-infer" {
                let path = ["results", arch.as_str(), "int8_images_per_sec"];
                let b = baseline.get(&path).and_then(JsonValue::as_f64);
                let f = fresh.get(&path).and_then(JsonValue::as_f64);
                match (b, f) {
                    (Some(b), Some(f)) => {
                        metrics.push((format!("{arch}.int8_images_per_sec"), b, f))
                    }
                    (None, _) => {} // baseline predates the int8 lane
                    (Some(_), None) => {
                        return Err(CliError::Io(std::io::Error::other(format!(
                            "baseline gates results.{arch}.int8_images_per_sec but the fresh report has no int8 lane"
                        ))))
                    }
                }
            }
        }
    } else {
        for path in gate_metric_paths(&kind)? {
            let b = baseline.get(path).and_then(JsonValue::as_f64);
            let f = fresh.get(path).and_then(JsonValue::as_f64);
            let label = path.join(".");
            match (b, f) {
                (Some(b), Some(f)) => metrics.push((label, b, f)),
                _ => {
                    return Err(CliError::Io(std::io::Error::other(format!(
                        "missing {label} in baseline or fresh report"
                    ))))
                }
            }
        }
    }
    if metrics.is_empty() {
        return Err(CliError::Io(std::io::Error::other(
            "no comparable metrics found",
        )));
    }

    let mut summary = format!(
        "bench-gate {kind} (max regression {:.0}%)\n",
        max_regress * 100.0
    );
    let mut failed = Vec::new();
    for (label, base, fresh) in &metrics {
        let floor = base * (1.0 - max_regress);
        let verdict = if *fresh >= floor { "ok" } else { "REGRESSED" };
        summary.push_str(&format!(
            "  {label:<24} baseline {base:>10.3}  fresh {fresh:>10.3}  floor {floor:>10.3}  {verdict}\n"
        ));
        if *fresh < floor {
            failed.push(label.clone());
        }
    }
    if !failed.is_empty() {
        return Err(CliError::Io(std::io::Error::other(format!(
            "{summary}throughput regressed beyond {:.0}%: {}",
            max_regress * 100.0,
            failed.join(", ")
        ))));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_tensor::Tensor;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("sesr_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn full_train_upscale_info_simulate_pipeline() {
        let model_path = tmp("pipeline.sesr");
        let report = run(&args(&format!(
            "train --out {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display()
        )))
        .unwrap();
        assert!(report.contains("saved to"));

        // Write a tiny input image.
        let img_path = tmp("in.pgm");
        let img = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, 1);
        pgm::write(&img, &img_path).unwrap();
        let out_path = tmp("out.pgm");
        let report = run(&args(&format!(
            "upscale --model {} --in {} --out {}",
            model_path.display(),
            img_path.display(),
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("16x16 -> 32x32"));
        let sr = pgm::read(&out_path).unwrap();
        assert_eq!(sr.shape(), &[1, 32, 32]);

        let report = run(&args(&format!("info --model {}", model_path.display()))).unwrap();
        assert!(report.contains("x2 SISR"));
        assert!(report.contains("layer 0"));

        let report = run(&args(&format!(
            "simulate --model {} --height 270 --width 480",
            model_path.display()
        )))
        .unwrap();
        assert!(report.contains("FPS"));
    }

    #[test]
    fn tiled_upscale_matches_whole() {
        let model_path = tmp("tiled.sesr");
        run(&args(&format!(
            "train --out {} --m 1 --steps 1 --expanded 4 --batch 2 --images 2",
            model_path.display()
        )))
        .unwrap();
        let img_path = tmp("tin.pgm");
        pgm::write(&Tensor::rand_uniform(&[1, 24, 24], 0.0, 1.0, 2), &img_path).unwrap();
        let whole_path = tmp("whole.pgm");
        let tiled_path = tmp("tiled.pgm");
        run(&args(&format!(
            "upscale --model {} --in {} --out {}",
            model_path.display(),
            img_path.display(),
            whole_path.display()
        )))
        .unwrap();
        run(&args(&format!(
            "upscale --model {} --in {} --out {} --tile 12",
            model_path.display(),
            img_path.display(),
            tiled_path.display()
        )))
        .unwrap();
        let whole = pgm::read(&whole_path).unwrap();
        let tiled = pgm::read(&tiled_path).unwrap();
        // 8-bit quantization allows at most one level of difference.
        assert!(whole.max_abs_diff(&tiled) <= 1.5 / 255.0);
    }

    #[test]
    fn checkpointed_train_writes_and_resumes() {
        let model_path = tmp("ckpt_train.sesr");
        let ckpt_path = tmp("ckpt_train.ckpt");
        std::fs::remove_file(&ckpt_path).ok();
        let flags =
            "--m 1 --steps 4 --expanded 4 --batch 2 --images 2 --ckpt-every 2 --guard --clip 5";
        let report = run(&args(&format!(
            "train --out {} --ckpt {} {flags}",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        assert!(report.contains("checkpoint:"));
        assert!(ckpt_path.exists());
        // Resuming the completed run is a no-op that reports its origin.
        let report = run(&args(&format!(
            "train --out {} --resume {} {flags}",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        assert!(report.contains("resumed from checkpoint at step 4"));
    }

    #[test]
    fn resume_with_different_config_is_rejected() {
        let model_path = tmp("mismatch.sesr");
        let ckpt_path = tmp("mismatch.ckpt");
        std::fs::remove_file(&ckpt_path).ok();
        run(&args(&format!(
            "train --out {} --ckpt {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        let err = run(&args(&format!(
            "train --out {} --resume {} --m 1 --steps 9 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Train(_)), "{err:?}");
        assert!(err.to_string().contains("different run"));
    }

    #[test]
    fn resume_from_corrupt_checkpoint_is_a_typed_error() {
        let model_path = tmp("corrupt.sesr");
        let ckpt_path = tmp("corrupt.ckpt");
        std::fs::remove_file(&ckpt_path).ok();
        run(&args(&format!(
            "train --out {} --ckpt {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap();
        let mut bytes = std::fs::read(&ckpt_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&ckpt_path, &bytes).unwrap();
        let err = run(&args(&format!(
            "train --out {} --resume {} --m 1 --steps 2 --expanded 4 --batch 2 --images 2",
            model_path.display(),
            ckpt_path.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn serve_bench_writes_valid_report_with_rejections() {
        let out_path = tmp("bench_serve_test.json");
        std::fs::remove_file(&out_path).ok();
        let report = run(&args(&format!(
            "serve-bench --arch m3 --expanded 8 --workers 1 --queue-cap 4 \
             --requests 6 --height 16 --width 16 --concurrency 2 --burst 8 \
             --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("serve-bench m3x2"));
        assert!(report.contains("p50"));
        let json = std::fs::read_to_string(&out_path).unwrap();
        sesr_serve::json::validate(&json).unwrap();
        assert!(json.contains("\"throughput_rps\""));
        assert!(json.contains("\"burst_rejected\":4"), "{json}");
    }

    #[test]
    fn serve_chaos_soak_reconciles_with_zero_lost_requests() {
        let report = run(&args(
            "serve-chaos --requests 160 --seed 7 --workers 2 --concurrency 8",
        ))
        .unwrap();
        assert!(report.contains("chaos soak reconciled"), "{report}");
        assert!(report.contains("faults injected"), "{report}");
        assert!(report.contains("0 dropped"), "{report}");
    }

    #[test]
    fn serve_chaos_with_zero_rates_injects_nothing_and_still_reconciles() {
        let report = run(&args(
            "serve-chaos --requests 40 --workers 2 --panic-per-mille 0 \
             --slow-per-mille 0 --load-fail-per-mille 0 --skew-per-mille 0 \
             --min-faults 0",
        ))
        .unwrap();
        assert!(report.contains("faults injected: 0"), "{report}");
        assert!(report.contains("40 ok"), "{report}");
    }

    #[test]
    fn serve_bench_rejects_unknown_arch_and_mode() {
        let err = run(&args("serve-bench --arch nope")).unwrap_err();
        assert!(err.to_string().contains("unknown arch"));
        let err = run(&args("serve-bench --mode sideways")).unwrap_err();
        assert!(matches!(err, CliError::Args(_)));
    }

    #[test]
    fn train_bench_writes_valid_report() {
        let out_path = tmp("bench_train_test.json");
        std::fs::remove_file(&out_path).ok();
        let report = run(&args(&format!(
            "train-bench --archs m5 --expanded 4 --steps 2 --warmup 1 \
             --batch 2 --hr-patch 16 --threads 1 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("train-bench m5x2"));
        assert!(report.contains("steps/s"));
        assert!(report.contains("backward"));
        let json = std::fs::read_to_string(&out_path).unwrap();
        sesr_serve::json::validate(&json).unwrap();
        assert!(json.contains("\"steps_per_sec\""));
        assert!(json.contains("\"conv2d.bwd\""));
    }

    #[test]
    fn infer_bench_writes_valid_report() {
        // infer-bench pins the process-global kernel variant around its
        // bit-identity gate; keep other bitwise tests out of that window.
        let _guard = sesr_tensor::simd::variant_test_lock();
        let out_path = tmp("bench_infer_test.json");
        std::fs::remove_file(&out_path).ok();
        let report = run(&args(&format!(
            "infer-bench --archs m3 --expanded 4 --iters 2 --warmup 1 \
             --height 16 --width 20 --threads 1 --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("infer-bench m3x2"));
        assert!(report.contains("img/s"));
        assert!(report.contains("arena"));
        assert!(report.contains("variant"));
        let json = std::fs::read_to_string(&out_path).unwrap();
        sesr_serve::json::validate(&json).unwrap();
        assert!(json.contains("\"bench\":\"sesr-infer\""));
        assert!(json.contains("\"planned_images_per_sec\""));
        assert!(json.contains("\"layer_ms\""));
        assert!(json.contains("\"variant\""));
        // The int8 lane runs by default and shows up in both outputs.
        assert!(report.contains("int8"));
        assert!(report.contains("dPSNR"));
        assert!(json.contains("\"int8_images_per_sec\""));
        assert!(json.contains("\"int8_delta_psnr_db\""));

        // --int8 off drops the lane from report and summary.
        let report = run(&args(&format!(
            "infer-bench --archs m3 --expanded 4 --iters 1 --warmup 0 \
             --height 16 --width 20 --threads 1 --int8 off --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(!report.contains("dPSNR"));
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(!json.contains("\"int8_images_per_sec\""));

        // An explicit pin round-trips into the report.
        let report = run(&args(&format!(
            "infer-bench --archs m3 --expanded 4 --iters 1 --warmup 0 \
             --height 16 --width 20 --threads 1 --variant scalar --out {}",
            out_path.display()
        )))
        .unwrap();
        assert!(report.contains("variant scalar"));
        let json = std::fs::read_to_string(&out_path).unwrap();
        assert!(json.contains("\"variant\":\"scalar\""));
        let best = *sesr_tensor::simd::detected_variants().last().unwrap();
        sesr_tensor::simd::set_kernel_variant(best);
    }

    #[test]
    fn bench_gate_handles_infer_reports_per_arch() {
        let mk = |name: &str, ips: f64| {
            let path = tmp(name);
            let results = sesr_serve::json::JsonObject::new()
                .raw(
                    "m5",
                    &sesr_serve::json::JsonObject::new()
                        .num("planned_images_per_sec", ips)
                        .finish(),
                )
                .finish();
            let doc = sesr_serve::json::JsonObject::new()
                .str("bench", "sesr-infer")
                .raw("results", &results)
                .finish();
            std::fs::write(&path, doc).unwrap();
            path
        };
        let baseline = mk("gate_infer_base.json", 100.0);
        let ok = mk("gate_infer_ok.json", 90.0);
        let bad = mk("gate_infer_bad.json", 40.0);
        let report = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            ok.display()
        )))
        .unwrap();
        assert!(report.contains("m5.planned_images_per_sec"));
        let err = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            bad.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("REGRESSED"), "{err}");
    }

    #[test]
    fn bench_gate_covers_the_int8_lane_when_the_baseline_has_it() {
        let mk = |name: &str, planned: f64, int8: Option<f64>| {
            let path = tmp(name);
            let mut arch =
                sesr_serve::json::JsonObject::new().num("planned_images_per_sec", planned);
            if let Some(v) = int8 {
                arch = arch.num("int8_images_per_sec", v);
            }
            let results = sesr_serve::json::JsonObject::new()
                .raw("m5", &arch.finish())
                .finish();
            let doc = sesr_serve::json::JsonObject::new()
                .str("bench", "sesr-infer")
                .raw("results", &results)
                .finish();
            std::fs::write(&path, doc).unwrap();
            path
        };
        let baseline = mk("gate_int8_base.json", 100.0, Some(150.0));
        // Both lanes healthy.
        let ok = mk("gate_int8_ok.json", 95.0, Some(140.0));
        let report = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            ok.display()
        )))
        .unwrap();
        assert!(report.contains("m5.int8_images_per_sec"));
        // int8 lane regressed while f32 held: the gate still fails.
        let bad = mk("gate_int8_bad.json", 100.0, Some(60.0));
        let err = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            bad.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("int8_images_per_sec"), "{err}");
        // Fresh report silently dropped the lane: also an error.
        let dropped = mk("gate_int8_dropped.json", 100.0, None);
        let err = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            dropped.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("no int8 lane"), "{err}");
    }

    #[test]
    fn bench_gate_passes_and_fails_on_regression() {
        let mk = |name: &str, sps: f64| {
            let path = tmp(name);
            let results = sesr_serve::json::JsonObject::new()
                .raw(
                    "m5",
                    &sesr_serve::json::JsonObject::new()
                        .num("steps_per_sec", sps)
                        .finish(),
                )
                .finish();
            let doc = sesr_serve::json::JsonObject::new()
                .str("bench", "sesr-train")
                .raw("results", &results)
                .finish();
            std::fs::write(&path, doc).unwrap();
            path
        };
        let baseline = mk("gate_base.json", 10.0);
        let ok = mk("gate_ok.json", 8.0); // -20%: within the 25% budget
        let bad = mk("gate_bad.json", 5.0); // -50%: regressed
        let report = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            ok.display()
        )))
        .unwrap();
        assert!(report.contains("ok"));
        let err = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            baseline.display(),
            bad.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("REGRESSED"), "{err}");
        // Tightening the tolerance flips the passing pair too.
        let err = run(&args(&format!(
            "bench-gate --baseline {} --fresh {} --max-regress 0.1",
            baseline.display(),
            ok.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("regressed beyond 10%"), "{err}");
    }

    #[test]
    fn bench_gate_rejects_mismatched_kinds() {
        let a = tmp("gate_kind_a.json");
        let b = tmp("gate_kind_b.json");
        std::fs::write(&a, r#"{"bench":"sesr-train","results":{}}"#).unwrap();
        std::fs::write(
            &b,
            r#"{"bench":"sesr-serve","results":{"throughput_rps":1}}"#,
        )
        .unwrap();
        let err = run(&args(&format!(
            "bench-gate --baseline {} --fresh {}",
            a.display(),
            b.display()
        )))
        .unwrap_err();
        assert!(err.to_string().contains("different bench kinds"), "{err}");
    }

    #[test]
    fn unknown_subcommand_yields_usage() {
        let err = run(&args("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn missing_model_is_reported() {
        let err = run(&args("info --model /nonexistent/x.sesr")).unwrap_err();
        assert!(matches!(err, CliError::Io(_)));
    }
}
