//! # sesr-cli
//!
//! Library backing the `sesr` command-line tool: a tiny argument parser
//! (the workspace's offline dependency set has no clap) and the four
//! subcommands — `train`, `upscale`, `simulate`, `info`.
//!
//! The command surface mirrors the deployment story of the paper:
//!
//! ```text
//! sesr train   --out model.sesr [--m 5] [--scale 2] [--steps 500] ...
//! sesr upscale --model model.sesr --in image.pgm --out sr.pgm [--tile N]
//! sesr simulate --model model.sesr [--height 1080] [--width 1920]
//! sesr info    --model model.sesr
//! ```
//!
//! Images are 8-bit PGM (luma), matching the paper's Y-channel pipeline.
//!
//! Error handling policy: user-facing code never panics on bad input —
//! every failure surfaces as a typed [`CliError`] mapped to a non-zero
//! exit code. The lint gate below enforces it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod args;
pub mod commands;
pub mod pgm;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};
