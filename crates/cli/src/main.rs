//! The `sesr` command-line entry point. All logic lives in the library
//! (`sesr_cli`) so the subcommands are unit-testable.

use sesr_cli::{run, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}
