//! The `sesr` command-line entry point. All logic lives in the library
//! (`sesr_cli`) so the subcommands are unit-testable.
//!
//! Exit codes: 0 on success, 2 for usage/argument errors, 1 for runtime
//! failures (I/O, corrupt files, diverged training).

use sesr_cli::{run, Args, CliError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    match run(&args) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            match err {
                CliError::Usage(_) | CliError::Args(_) => ExitCode::from(2),
                _ => ExitCode::from(1),
            }
        }
    }
}
