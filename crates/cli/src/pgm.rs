//! 8-bit binary PGM (P5) reading and writing for luma images.
//!
//! PGM is the natural container for the paper's Y-channel pipeline: one
//! gray channel, trivially inspectable, opened by any image viewer.

use sesr_tensor::Tensor;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors from PGM decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PgmError {
    /// Not a binary (`P5`) PGM file.
    BadMagic,
    /// Header fields missing or malformed.
    BadHeader(&'static str),
    /// Pixel payload shorter than `width * height`.
    Truncated,
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::BadMagic => write!(f, "not a binary PGM (P5) file"),
            PgmError::BadHeader(what) => write!(f, "malformed PGM header: {what}"),
            PgmError::Truncated => write!(f, "PGM pixel data truncated"),
        }
    }
}

impl std::error::Error for PgmError {}

/// Encodes a `[1, H, W]` tensor in `[0, 1]` as binary PGM bytes.
///
/// # Panics
///
/// Panics if the tensor is not single-channel rank 3.
pub fn encode(img: &Tensor) -> Vec<u8> {
    let dims = img.shape();
    assert_eq!(dims.len(), 3, "expected [1, H, W]");
    assert_eq!(dims[0], 1, "expected a single-channel luma image");
    let (h, w) = (dims[1], dims[2]);
    let mut out = format!("P5\n{w} {h}\n255\n").into_bytes();
    out.extend(
        img.data()
            .iter()
            .map(|&v| (v.clamp(0.0, 1.0) * 255.0).round() as u8),
    );
    out
}

/// Decodes binary PGM bytes into a `[1, H, W]` tensor in `[0, 1]`.
///
/// Handles comments (`#`) and arbitrary whitespace in the header. Maxval
/// up to 255 is supported.
///
/// # Errors
///
/// Returns [`PgmError`] for malformed files.
pub fn decode(bytes: &[u8]) -> Result<Tensor, PgmError> {
    if bytes.len() < 2 || &bytes[0..2] != b"P5" {
        return Err(PgmError::BadMagic);
    }
    // Tokenize the header: magic, width, height, maxval; comments run to
    // end of line.
    let mut pos = 2usize;
    let mut fields = Vec::with_capacity(3);
    while fields.len() < 3 {
        // Skip whitespace and comments.
        loop {
            match bytes.get(pos) {
                Some(b'#') => {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                }
                Some(c) if c.is_ascii_whitespace() => pos += 1,
                Some(_) => break,
                None => return Err(PgmError::BadHeader("unexpected end of header")),
            }
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == start {
            return Err(PgmError::BadHeader("expected a number"));
        }
        let text = std::str::from_utf8(&bytes[start..pos])
            .map_err(|_| PgmError::BadHeader("non-ascii number"))?;
        fields.push(
            text.parse::<usize>()
                .map_err(|_| PgmError::BadHeader("number out of range"))?,
        );
    }
    let (w, h, maxval) = (fields[0], fields[1], fields[2]);
    if w == 0 || h == 0 {
        return Err(PgmError::BadHeader("zero dimension"));
    }
    if maxval == 0 || maxval > 255 {
        return Err(PgmError::BadHeader("maxval must be 1..=255"));
    }
    // Exactly one whitespace byte separates header and pixels.
    if bytes.get(pos).is_none_or(|c| !c.is_ascii_whitespace()) {
        return Err(PgmError::BadHeader("missing separator before pixels"));
    }
    pos += 1;
    let need = w * h;
    if bytes.len() < pos + need {
        return Err(PgmError::Truncated);
    }
    let data: Vec<f32> = bytes[pos..pos + need]
        .iter()
        .map(|&b| b as f32 / maxval as f32)
        .collect();
    Ok(Tensor::from_vec(data, &[1, h, w]))
}

/// Reads a PGM file as a `[1, H, W]` tensor.
///
/// # Errors
///
/// Propagates I/O errors; wraps decode failures as `InvalidData`.
pub fn read(path: &Path) -> std::io::Result<Tensor> {
    let bytes = fs::read(path)?;
    decode(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Writes a `[1, H, W]` tensor as a PGM file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write(img: &Tensor, path: &Path) -> std::io::Result<()> {
    fs::write(path, encode(img))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_exact_at_8bit() {
        let img = Tensor::from_vec(
            (0..64).map(|i| (i as f32 * 4.0 / 255.0).min(1.0)).collect(),
            &[1, 8, 8],
        );
        let decoded = decode(&encode(&img)).unwrap();
        assert_eq!(decoded.shape(), &[1, 8, 8]);
        // Quantization error bounded by half a step.
        assert!(img.max_abs_diff(&decoded) <= 0.5 / 255.0 + 1e-6);
    }

    #[test]
    fn header_with_comments() {
        let mut bytes = b"P5\n# a comment\n2 2\n# more\n255\n".to_vec();
        bytes.extend([0u8, 128, 255, 64]);
        let img = decode(&bytes).unwrap();
        assert_eq!(img.shape(), &[1, 2, 2]);
        assert!((img.at(&[0, 0, 1]) - 128.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(decode(b"P2\n1 1\n255\n0").unwrap_err(), PgmError::BadMagic);
    }

    #[test]
    fn rejects_truncated_pixels() {
        let bytes = b"P5\n4 4\n255\n\x00\x01".to_vec();
        assert_eq!(decode(&bytes).unwrap_err(), PgmError::Truncated);
    }

    #[test]
    fn rejects_zero_dims() {
        assert_eq!(
            decode(b"P5\n0 4\n255\n").unwrap_err(),
            PgmError::BadHeader("zero dimension")
        );
    }

    #[test]
    fn nonstandard_maxval_scales() {
        let mut bytes = b"P5\n1 1\n100\n".to_vec();
        bytes.push(50);
        let img = decode(&bytes).unwrap();
        assert!((img.at(&[0, 0, 0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clamps_out_of_range_on_encode() {
        let img = Tensor::from_vec(vec![-0.5, 1.5], &[1, 1, 2]);
        let bytes = encode(&img);
        assert_eq!(&bytes[bytes.len() - 2..], &[0u8, 255]);
    }
}
