//! Minimal `--flag value` argument parsing.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: one positional subcommand plus `--key value`
/// options (bare `--key` is recorded with an empty value).
#[derive(Debug, Clone, Default)]
pub struct Args {
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
}

/// Errors produced while reading options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A required option was not given.
    Missing(String),
    /// An option's value failed to parse.
    Invalid {
        /// Option name.
        key: String,
        /// Raw value supplied.
        value: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Missing(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid { key, value } => {
                write!(f, "invalid value {value:?} for --{key}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Self {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().unwrap_or_default(),
                    _ => String::new(),
                };
                out.options.insert(key.to_string(), value);
            } else if out.subcommand.is_none() {
                out.subcommand = Some(a);
            }
        }
        out
    }

    /// The positional subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// Raw string value of an option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// True if the flag was present (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// [`ArgError::Missing`] when absent.
    pub fn required(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key).ok_or_else(|| ArgError::Missing(key.into()))
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::Invalid`] when present but unparseable.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::Invalid {
                key: key.into(),
                value: raw.into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("train --out m.sesr --steps 100 --full");
        assert_eq!(a.subcommand(), Some("train"));
        assert_eq!(a.get("out"), Some("m.sesr"));
        assert_eq!(a.parsed_or("steps", 0usize).unwrap(), 100);
        assert!(a.has("full"));
        assert!(!a.has("absent"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("train");
        assert_eq!(a.parsed_or("steps", 42usize).unwrap(), 42);
    }

    #[test]
    fn invalid_value_reported() {
        let a = parse("train --steps banana");
        let err = a.parsed_or("steps", 0usize).unwrap_err();
        assert_eq!(
            err,
            ArgError::Invalid {
                key: "steps".into(),
                value: "banana".into()
            }
        );
    }

    #[test]
    fn missing_required_reported() {
        let a = parse("upscale");
        assert_eq!(
            a.required("model").unwrap_err(),
            ArgError::Missing("model".into())
        );
    }

    #[test]
    fn bare_flag_before_another_flag() {
        let a = parse("x --full --steps 7");
        assert!(a.has("full"));
        assert_eq!(a.get("full"), Some(""));
        assert_eq!(a.parsed_or("steps", 0usize).unwrap(), 7);
    }
}
