//! The `serve-bench` harness: build a model, stand up an [`Engine`],
//! drive a seeded load profile, and emit a `BENCH_serve.json` report.
//!
//! The report is one JSON object with four sections: `model` (what was
//! served), `engine`/`load` (the knobs), `results` (load-generator view:
//! throughput, rejections) and `telemetry` (engine view: per-stage
//! latency distributions and counters). It is written by
//! [`bench_report_json`] and checked with [`crate::json::validate`]
//! before anything touches disk, so a malformed report fails the run
//! rather than polluting baselines.

use crate::engine::{Engine, EngineConfig};
use crate::json::JsonObject;
use crate::loadgen::{run_load, LoadMode, LoadReport, LoadSpec};
use crate::registry::{ModelKey, ModelRegistry};
use crate::telemetry::Snapshot;
use sesr_core::model::{Sesr, SesrConfig};
use sesr_core::model_io::save_model;
use std::path::PathBuf;
use std::sync::Arc;

/// Everything a serve-bench run needs, with reproducible defaults.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Architecture label: `m3`, `m5`, `m7`, `m11`, or `xl`.
    pub arch: String,
    /// Upscaling factor (2 or 4).
    pub scale: usize,
    /// Overparameterized training width (collapsed away before serving).
    pub expanded: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Engine sizing and batching policy.
    pub engine: EngineConfig,
    /// Load profile to drive.
    pub load: LoadSpec,
    /// Cap the intra-op (tile/conv) thread pool; `None` = autodetect.
    pub intra_op_threads: Option<usize>,
    /// Where the model artifact is written (exercises the registry's
    /// lazy-load path). `None` = a temp directory.
    pub model_dir: Option<PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            arch: "m5".to_string(),
            scale: 2,
            expanded: 32,
            seed: 0,
            engine: EngineConfig::default(),
            load: LoadSpec::default(),
            intra_op_threads: None,
            model_dir: None,
        }
    }
}

/// Maps an architecture label to its `SesrConfig`.
///
/// # Errors
///
/// Returns the unknown label.
pub fn arch_config(
    arch: &str,
    scale: usize,
    expanded: usize,
    seed: u64,
) -> Result<SesrConfig, String> {
    let base = match arch {
        "m3" => SesrConfig::m(3),
        "m5" => SesrConfig::m(5),
        "m7" => SesrConfig::m(7),
        "m11" => SesrConfig::m(11),
        "xl" => SesrConfig::xl(),
        other => return Err(format!("unknown arch {other:?} (expected m3|m5|m7|m11|xl)")),
    };
    Ok(base
        .with_scale(scale)
        .with_expanded(expanded)
        .with_seed(seed))
}

/// A completed bench run: the load generator's view and the engine's.
pub struct BenchOutcome {
    /// Load-generator-side measurements.
    pub report: LoadReport,
    /// Engine-side telemetry snapshot.
    pub snapshot: Snapshot,
}

/// Builds and collapses the model, registers it for lazy load, runs the
/// configured load, and returns both views of the run.
///
/// # Errors
///
/// Unknown arch label, or an I/O failure writing the model artifact.
pub fn run_bench(cfg: &BenchConfig) -> Result<BenchOutcome, String> {
    if let Some(n) = cfg.intra_op_threads {
        sesr_tensor::parallel::set_num_threads(n);
    }
    let model_cfg = arch_config(&cfg.arch, cfg.scale, cfg.expanded, cfg.seed)?;
    let collapsed = Sesr::new(model_cfg).collapse();

    let dir = cfg
        .model_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join("sesr_serve_bench"));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let key = ModelKey::new(&cfg.arch, cfg.scale);
    let path = dir.join(format!("{key}.sesr"));
    save_model(&collapsed, &path).map_err(|e| format!("save {}: {e}", path.display()))?;

    let registry = Arc::new(ModelRegistry::new(4));
    registry.register_path(key.clone(), path);

    let engine = Engine::new(cfg.engine.clone(), registry);
    let report = run_load(&engine, &key, &cfg.load);
    let snapshot = engine.telemetry().snapshot();
    Ok(BenchOutcome { report, snapshot })
}

/// Serializes a bench run into the `BENCH_serve.json` document.
pub fn bench_report_json(cfg: &BenchConfig, out: &BenchOutcome) -> String {
    let mode = match cfg.load.mode {
        LoadMode::Closed { concurrency } => JsonObject::new()
            .str("kind", "closed")
            .int("concurrency", concurrency as u64)
            .finish(),
        LoadMode::Open { rate_hz } => JsonObject::new()
            .str("kind", "open")
            .num("rate_hz", rate_hz)
            .finish(),
    };
    let model = JsonObject::new()
        .str("arch", &cfg.arch)
        .int("scale", cfg.scale as u64)
        .int("expanded", cfg.expanded as u64)
        .int("seed", cfg.seed)
        .finish();
    let engine = JsonObject::new()
        .int("workers", cfg.engine.workers as u64)
        .int("queue_capacity", cfg.engine.queue_capacity as u64)
        .int("max_batch", cfg.engine.max_batch as u64)
        .int("tile_threshold_px", cfg.engine.tile_threshold_px as u64)
        .int("tile", cfg.engine.tile as u64)
        .int(
            "intra_op_threads",
            cfg.intra_op_threads
                .unwrap_or_else(sesr_tensor::parallel::num_threads) as u64,
        )
        .finish();
    let load = JsonObject::new()
        .int("requests", cfg.load.requests as u64)
        .raw("mode", &mode)
        .int("height", cfg.load.height as u64)
        .int("width", cfg.load.width as u64)
        .int("seed", cfg.load.seed)
        .num(
            "deadline_ms",
            cfg.load
                .deadline
                .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
        )
        .int("burst", cfg.load.burst as u64)
        .finish();
    let r = &out.report;
    let results = JsonObject::new()
        .int("submitted", r.submitted)
        .int("completed", r.completed)
        .int("rejected_queue_full", r.rejected)
        .int("deadline_expired", r.deadline_expired)
        .int("failed", r.failed)
        .int("burst_admitted", r.burst_admitted)
        .int("burst_rejected", r.burst_rejected)
        .num("wall_ms", r.wall_ms)
        .num("throughput_rps", r.throughput_rps)
        .num("output_megapixels_per_s", r.output_megapixels_per_s)
        .finish();
    JsonObject::new()
        .str("bench", "sesr-serve")
        .raw("model", &model)
        .raw("engine", &engine)
        .raw("load", &load)
        .raw("results", &results)
        .raw("telemetry", &out.snapshot.to_json())
        .finish()
}
