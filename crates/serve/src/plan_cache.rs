//! Per-worker cache of compiled inference plans.
//!
//! Planned execution ([`InferPlan`]) amortizes its setup cost — kernel
//! flattening, Winograd kernel pre-transform, arena allocation — only if
//! the plan is reused across requests. Each engine worker owns one
//! [`PlanCache`]; nothing here is shared or locked, so a cache lookup on
//! the request hot path costs a short `Vec` scan.
//!
//! Two levels mirror the two halves of a plan:
//!
//! * **Kernels** (`Arc<CollapsedKernels>`) are shape-independent and
//!   shared: the batch path's plans and every tile planner for a model
//!   reuse one copy of the flattened weights.
//! * **Plans** (`InferPlan`) are `(model, height, width)`-specific; the
//!   queue batches same-key same-shape requests, so steady-state traffic
//!   for a handful of shapes hits a warm plan every time.
//!
//! **Precision.** Every plan and tile planner is additionally keyed by
//! the serving [`Precision`] resolved from the engine's
//! [`PrecisionPolicy`]: an int8-eligible model caches [`QuantPlan`]s, an
//! f32 model caches [`InferPlan`]s, and the two never mix. The
//! load-time decision itself — calibrate, quantize, measure ΔPSNR
//! against f32, fall back if the budget is exceeded — is cached at a
//! third level ([`PlanCache::decision_for`]) and replicated through the
//! [`SharedPlanCache`] so autoscaled shards warm int8 serving without
//! re-grading the model.
//!
//! **Staleness.** The registry can evict and reload a model under the
//! same [`ModelKey`] (e.g. after an artifact is replaced), so a key
//! match alone is not enough: every entry also remembers the
//! `Arc<CollapsedSesr>` it was compiled from and is valid only while
//! `Arc::ptr_eq` holds against the model the registry resolves for the
//! request. A reload therefore misses once, recompiles, and the stale
//! entry is dropped on that same lookup. A precision-policy flip
//! invalidates the same way: the first lookup after the flip drops the
//! other-precision entries for that key.
//!
//! **Kernel variant.** Plans and tile planners pin the process-global
//! [`kernel_variant`] at compile time, and an entry is valid only while
//! that global still matches (the *Detect* policy: serve never per-plan
//! autotunes the variant, because whole-frame plans and tile plans must
//! share one arithmetic for the tiled-vs-whole-frame bit-identity
//! guarantee). The global is normally fixed at process start, but if an
//! operator repins it at runtime (e.g. `scalar` for a cross-machine
//! repro), every cached plan compiled under the old variant misses,
//! recompiles under the new one, and is dropped — no mixed-variant
//! outputs can be served.
//!
//! Capacities are small and fixed (a worker serves few distinct models
//! and shapes at once); eviction is LRU via move-to-front.

use crate::registry::ModelKey;
use sesr_core::{CollapsedKernels, CollapsedSesr, InferPlan, TilePlanner, TileSpec};
use sesr_quant::{QuantKernels, QuantPlan, QuantTilePlanner, QuantizedSesr};
use sesr_tensor::simd::{kernel_variant, KernelVariant};
use sesr_tensor::Tensor;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Distinct models a worker keeps flattened kernels for.
const KERNELS_CAP: usize = 4;
/// Distinct `(model, shape)` plans a worker keeps arenas for.
const PLANS_CAP: usize = 8;
/// Distinct models a worker keeps tile planners for. Sized for one
/// video any-time ladder (m3/m5/m7/m11); the planners themselves bound
/// their per-shape plans internally.
const TILE_PLANNERS_CAP: usize = 4;
/// Distinct `(model, budget)` precision decisions a worker remembers.
const DECISIONS_CAP: usize = 4;

/// Calibration-scene geometry for load-time precision decisions. One
/// fixed scene per process: the decision must be deterministic across
/// workers and shards, or two workers could serve the same model at
/// different precisions.
const CALIB_TILE: usize = 24;
/// Seed family for the calibration images (distinct from the ΔPSNR
/// measurement tile so the decision is not graded on its training data).
const CALIB_SEED: u64 = 0xCA11B;
/// Calibration images measured for activation ranges.
const N_CALIB: u64 = 3;

/// Engine-wide serving-precision policy; per-model decisions flow from
/// it at load time (see [`PlanCache::decision_for`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrecisionPolicy {
    /// Always serve float plans.
    F32,
    /// Serve planned int8 when the measured ΔPSNR on the calibration
    /// scene stays within `psnr_budget` dB; silently fall back to f32
    /// for models that exceed it (counted in `precision_fallbacks`).
    Int8 {
        /// Largest acceptable PSNR loss versus f32, in dB.
        psnr_budget: f64,
    },
}

/// The resolved serving precision for one model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Float planned execution.
    F32,
    /// Quantized planned execution (uint8 wires, int8 weights, i32
    /// accumulation).
    Int8,
}

/// A load-time precision decision for one `(model, budget)` pair: the
/// resolved precision, the measured ΔPSNR, and — when int8 won — the
/// packed quantized kernels ready for plan compilation. Decisions are
/// immutable and shared (`Arc`) like kernels: calibration, quantization,
/// and the ΔPSNR measurement are the expensive model-level half of int8
/// serving, plan arenas are the cheap per-shape half.
#[derive(Debug)]
pub struct PrecisionDecision {
    /// The precision this model serves at.
    pub precision: Precision,
    /// Measured PSNR cost of int8 on the calibration scene, in dB
    /// (positive = int8 is worse; `NaN` when nothing was measured, i.e.
    /// the policy was [`PrecisionPolicy::F32`]).
    pub delta_db: f64,
    /// Packed int8 kernels, present exactly when `precision == Int8`.
    pub qkernels: Option<Arc<QuantKernels>>,
}

impl PrecisionDecision {
    /// The trivial f32 decision (no measurement performed). Callers on
    /// pure-f32 paths (video sessions, `PrecisionPolicy::F32` engines)
    /// borrow this constant instead of resolving a decision.
    pub const F32: PrecisionDecision = PrecisionDecision {
        precision: Precision::F32,
        delta_db: f64::NAN,
        qkernels: None,
    };
}

/// Where [`PlanCache::decision_for`] found the decision. Telemetry uses
/// `Computed` to count fallbacks exactly once per fresh measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionSource {
    /// Worker-local cache hit.
    LocalHit,
    /// Served by the process-wide [`SharedPlanCache`] (another shard
    /// already paid for the measurement).
    SharedHit,
    /// Measured and quantized here, now.
    Computed,
}

/// Calibrates, quantizes, and grades one model against the int8 PSNR
/// budget. Deterministic: fixed synthetic scene, fixed seeds.
fn compute_decision(model: &CollapsedSesr, psnr_budget: f64) -> PrecisionDecision {
    let calib: Vec<Tensor> = (0..N_CALIB)
        .map(|i| {
            sesr_quant::calibration_pair(model.scale(), CALIB_TILE, CALIB_TILE, CALIB_SEED + i).1
        })
        .collect();
    let profile = sesr_quant::calibrate(model, &calib);
    let qnet = QuantizedSesr::quantize(model, &profile);
    let delta_db =
        sesr_quant::delta_psnr(model, &qnet, CALIB_TILE, CALIB_TILE, CALIB_SEED ^ 0x5EED);
    if delta_db <= psnr_budget {
        PrecisionDecision {
            precision: Precision::Int8,
            delta_db,
            qkernels: Some(Arc::new(QuantKernels::new(&qnet))),
        }
    } else {
        PrecisionDecision {
            precision: Precision::F32,
            delta_db,
            qkernels: None,
        }
    }
}

struct KernelsEntry {
    key: ModelKey,
    model: Arc<CollapsedSesr>,
    kernels: Arc<CollapsedKernels>,
}

/// Distinct models the process-wide shared store keeps kernels for.
const SHARED_KERNELS_CAP: usize = 8;

/// One shared-store entry: the model key, the exact model `Arc` the
/// kernels were flattened from (staleness identity), and the kernels.
type SharedKernelEntry = (ModelKey, Arc<CollapsedSesr>, Arc<CollapsedKernels>);

/// One shared precision-decision entry: model key, model identity, the
/// PSNR budget it was graded against (as `f64::to_bits`, so `NaN`-free
/// exact keying), and the decision.
type SharedDecisionEntry = (ModelKey, Arc<CollapsedSesr>, u64, Arc<PrecisionDecision>);

/// Process-wide store of flattened kernels, shared across every engine
/// shard the router owns (hot-model replication).
///
/// [`CollapsedKernels`] is the expensive *immutable* half of a plan:
/// flattened weights and pre-transformed Winograd kernels. Plans
/// themselves (arenas) are mutable per-worker scratch and stay
/// worker-local — sharing them would serialize compute — but the
/// kernels behind them are safely shared `Arc`s. A freshly spawned
/// shard's workers therefore skip the flattening entirely whenever any
/// other shard has served the model before: its first request is warm.
///
/// The `warm_hits` counter feeds the router's `replication_warm_hits`
/// telemetry; it counts worker-local misses that the shared store
/// served, i.e. exactly the compiles replication avoided.
///
/// Staleness follows the same `Arc::ptr_eq` rule as [`PlanCache`]:
/// entries are keyed by the model Arc they were flattened from, so a
/// registry reload misses once and replaces the shared entry.
pub struct SharedPlanCache {
    kernels: Mutex<Vec<SharedKernelEntry>>,
    decisions: Mutex<Vec<SharedDecisionEntry>>,
    /// Gradings currently in flight somewhere in the fleet, keyed by
    /// `(key, model identity, budget bits)` — the single-flight set
    /// behind [`SharedPlanCache::grade_single_flight`].
    grading: Mutex<Vec<(ModelKey, usize, u64)>>,
    grading_done: Condvar,
    warm_hits: AtomicU64,
    published: AtomicU64,
}

/// Removes a grading ticket and wakes waiters on drop, so a panicking
/// grade closure never strands the shards waiting on it.
struct GradeTicket<'a> {
    store: &'a SharedPlanCache,
    ticket: (ModelKey, usize, u64),
}

impl Drop for GradeTicket<'_> {
    fn drop(&mut self) {
        let mut g = self
            .store
            .grading
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        g.retain(|t| *t != self.ticket);
        drop(g);
        self.store.grading_done.notify_all();
    }
}

impl SharedPlanCache {
    /// An empty shared store.
    pub fn new() -> Self {
        Self {
            kernels: Mutex::new(Vec::with_capacity(SHARED_KERNELS_CAP)),
            decisions: Mutex::new(Vec::with_capacity(SHARED_KERNELS_CAP)),
            grading: Mutex::new(Vec::new()),
            grading_done: Condvar::new(),
            warm_hits: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Looks up kernels for `(key, model)`. A hit bumps `warm_hits` —
    /// callers only consult the shared store after a local miss, so
    /// every hit here is a compile some other worker already paid for.
    pub fn get(&self, key: &ModelKey, model: &Arc<CollapsedSesr>) -> Option<Arc<CollapsedKernels>> {
        let mut g = self.kernels.lock().unwrap_or_else(PoisonError::into_inner);
        let idx = g
            .iter()
            .position(|(k, m, _)| k == key && Arc::ptr_eq(m, model))?;
        let entry = g.remove(idx);
        let kernels = entry.2.clone();
        g.insert(0, entry);
        drop(g);
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
        Some(kernels)
    }

    /// Publishes freshly compiled kernels so other shards skip the
    /// compile. Stale same-key entries (reloaded model) are replaced.
    pub fn publish(
        &self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        kernels: &Arc<CollapsedKernels>,
    ) {
        let mut g = self.kernels.lock().unwrap_or_else(PoisonError::into_inner);
        g.retain(|(k, m, _)| k != key || Arc::ptr_eq(m, model));
        if g.iter().any(|(k, m, _)| k == key && Arc::ptr_eq(m, model)) {
            return; // lost a publish race; the existing entry is equivalent
        }
        g.insert(0, (key.clone(), model.clone(), kernels.clone()));
        g.truncate(SHARED_KERNELS_CAP);
        drop(g);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a precision decision for `(key, model, budget)`. Like
    /// kernels, a hit bumps `warm_hits`: the calibration, quantization,
    /// and ΔPSNR measurement were paid by another shard, so a freshly
    /// autoscaled shard warms its int8 plans without re-grading the
    /// model.
    pub fn get_decision(
        &self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        budget_bits: u64,
    ) -> Option<Arc<PrecisionDecision>> {
        let mut g = self
            .decisions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let idx = g
            .iter()
            .position(|(k, m, b, _)| k == key && *b == budget_bits && Arc::ptr_eq(m, model))?;
        let entry = g.remove(idx);
        let decision = entry.3.clone();
        g.insert(0, entry);
        drop(g);
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
        Some(decision)
    }

    /// Publishes a freshly computed precision decision. Same-key entries
    /// for a reloaded model or a different budget are replaced: a policy
    /// or artifact change must not leave decisions other shards could
    /// wrongly warm from.
    pub fn publish_decision(
        &self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        budget_bits: u64,
        decision: &Arc<PrecisionDecision>,
    ) {
        let mut g = self
            .decisions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        g.retain(|(k, m, b, _)| k != key || (Arc::ptr_eq(m, model) && *b == budget_bits));
        if g.iter()
            .any(|(k, m, b, _)| k == key && *b == budget_bits && Arc::ptr_eq(m, model))
        {
            return; // lost a publish race; the existing entry is equivalent
        }
        g.insert(
            0,
            (key.clone(), model.clone(), budget_bits, decision.clone()),
        );
        g.truncate(SHARED_KERNELS_CAP);
        drop(g);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Looks up a decision, or grades it with cross-shard single-flight:
    /// if another worker anywhere in the fleet is already grading this
    /// exact `(model, budget)`, wait for its publish instead of paying
    /// the grade (calibrate + quantize + ΔPSNR) again. Without this,
    /// a shard scaled up during the load ramp races the first shard's
    /// in-flight grading, misses the store, and re-grades — after which
    /// both serve from worker-local caches and replication never gets a
    /// second chance. Returns the decision and whether it was warmed
    /// (`true` = served by the store, counted in `warm_hits`; `false` =
    /// this call ran `grade` and published the result).
    pub fn grade_single_flight(
        &self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        budget_bits: u64,
        grade: impl FnOnce() -> PrecisionDecision,
    ) -> (Arc<PrecisionDecision>, bool) {
        let ticket = (key.clone(), Arc::as_ptr(model) as usize, budget_bits);
        loop {
            if let Some(d) = self.get_decision(key, model, budget_bits) {
                return (d, true);
            }
            let g = self.grading.lock().unwrap_or_else(PoisonError::into_inner);
            if !g.contains(&ticket) {
                let mut g = g;
                g.push(ticket.clone());
                break;
            }
            // Someone else is grading. The timeout is a liveness
            // backstop, not the protocol: the grader's drop guard
            // notifies even on panic, and the loop re-checks the store
            // before ever becoming the grader itself.
            let _unused = self
                .grading_done
                .wait_timeout(g, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
        }
        let _ticket = GradeTicket {
            store: self,
            ticket,
        };
        let d = Arc::new(grade());
        self.publish_decision(key, model, budget_bits, &d);
        (d, false)
    }

    /// Precision decisions currently held.
    pub fn decisions_len(&self) -> usize {
        self.decisions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Worker-local misses served from the shared store so far (kernels
    /// and precision decisions).
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }

    /// Kernel sets published into the store so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Models currently held.
    pub fn len(&self) -> usize {
        self.kernels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedPlanCache")
            .field("models", &self.len())
            .field("warm_hits", &self.warm_hits())
            .finish()
    }
}

/// A compiled whole-frame plan at either serving precision. Past the
/// precision decision the engine's batch path is precision-agnostic:
/// both arms run out of a single pre-sized arena with zero steady-state
/// allocations.
pub enum AnyPlan {
    /// Float planned executor.
    F32(InferPlan),
    /// Quantized planned executor (uint8 wires, i32 accumulation, fused
    /// requantization epilogues).
    Int8(QuantPlan),
}

impl AnyPlan {
    /// Runs a `[N, 1, H, W]` batch, reusing the arena per image.
    pub fn run_batch(&mut self, input: &Tensor) -> Tensor {
        match self {
            AnyPlan::F32(p) => p.run_batch(input),
            AnyPlan::Int8(p) => p.run_batch(input),
        }
    }

    /// The kernel variant pinned at compile time.
    pub fn variant(&self) -> KernelVariant {
        match self {
            AnyPlan::F32(p) => p.variant(),
            AnyPlan::Int8(p) => p.variant(),
        }
    }

    /// Bytes in this plan's arena.
    pub fn arena_bytes(&self) -> usize {
        match self {
            AnyPlan::F32(p) => p.arena_bytes(),
            AnyPlan::Int8(p) => p.arena_bytes(),
        }
    }

    /// The precision this plan serves at.
    pub fn precision(&self) -> Precision {
        match self {
            AnyPlan::F32(_) => Precision::F32,
            AnyPlan::Int8(_) => Precision::Int8,
        }
    }
}

impl fmt::Debug for AnyPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnyPlan")
            .field("precision", &self.precision())
            .field("arena_bytes", &self.arena_bytes())
            .finish()
    }
}

/// A tile planner at either serving precision; both arms keep a bounded
/// LRU of per-shape plans and composite bit-identically with their
/// whole-frame counterpart.
pub enum AnyTilePlanner {
    /// Float tile planner.
    F32(TilePlanner),
    /// Quantized tile planner.
    Int8(QuantTilePlanner),
}

impl AnyTilePlanner {
    /// Runs one tile through the plan for its expanded shape.
    pub fn run_tile(&mut self, lr: &Tensor, spec: &TileSpec) -> Tensor {
        match self {
            AnyTilePlanner::F32(p) => p.run_tile(lr, spec),
            AnyTilePlanner::Int8(p) => p.run_tile(lr, spec),
        }
    }

    /// Pre-compiles the plan for an `h x w` tile (warm path).
    pub fn warm_shape(&mut self, h: usize, w: usize) {
        match self {
            AnyTilePlanner::F32(p) => {
                p.plan_for(h, w);
            }
            AnyTilePlanner::Int8(p) => {
                p.plan_for(h, w);
            }
        }
    }

    /// Distinct tile shapes currently planned.
    pub fn cached_plans(&self) -> usize {
        match self {
            AnyTilePlanner::F32(p) => p.cached_plans(),
            AnyTilePlanner::Int8(p) => p.cached_plans(),
        }
    }

    /// Largest arena across the cached per-shape plans.
    pub fn max_arena_bytes(&self) -> usize {
        match self {
            AnyTilePlanner::F32(p) => p.max_arena_bytes(),
            AnyTilePlanner::Int8(p) => p.max_arena_bytes(),
        }
    }

    /// The precision this planner serves at.
    pub fn precision(&self) -> Precision {
        match self {
            AnyTilePlanner::F32(_) => Precision::F32,
            AnyTilePlanner::Int8(_) => Precision::Int8,
        }
    }
}

struct PlanEntry {
    key: ModelKey,
    h: usize,
    w: usize,
    /// The serving precision the plan was compiled at; a precision-policy
    /// flip invalidates entries the same way a model reload does.
    precision: Precision,
    model: Arc<CollapsedSesr>,
    plan: AnyPlan,
}

struct TilePlannerEntry {
    key: ModelKey,
    model: Arc<CollapsedSesr>,
    /// The process-global kernel variant when the planner was built; its
    /// lazily-compiled per-tile plans all pin this, so a global repin
    /// invalidates the whole planner.
    variant: KernelVariant,
    /// Serving precision (see [`PlanEntry::precision`]).
    precision: Precision,
    planner: AnyTilePlanner,
}

struct DecisionEntry {
    key: ModelKey,
    model: Arc<CollapsedSesr>,
    /// `f64::to_bits` of the PSNR budget the decision was graded
    /// against: exact keying, no `NaN` comparison pitfalls.
    budget_bits: u64,
    decision: Arc<PrecisionDecision>,
}

/// Worker-local LRU cache of [`CollapsedKernels`] and [`InferPlan`]s,
/// optionally backed by a process-wide [`SharedPlanCache`] so sibling
/// shards replicate hot kernels instead of recompiling them.
pub struct PlanCache {
    kernels: Vec<KernelsEntry>,
    plans: Vec<PlanEntry>,
    tile_planners: Vec<TilePlannerEntry>,
    decisions: Vec<DecisionEntry>,
    shared: Option<Arc<SharedPlanCache>>,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::with_shared(None)
    }

    /// A cache that consults (and publishes to) `shared` on local
    /// kernel misses.
    pub fn with_shared(shared: Option<Arc<SharedPlanCache>>) -> Self {
        PlanCache {
            kernels: Vec::with_capacity(KERNELS_CAP),
            plans: Vec::with_capacity(PLANS_CAP),
            tile_planners: Vec::with_capacity(TILE_PLANNERS_CAP),
            decisions: Vec::with_capacity(DECISIONS_CAP),
            shared,
        }
    }

    /// The precision decision for `(model, psnr_budget)`, computed on
    /// first use: calibrate on the fixed synthetic scene, quantize,
    /// measure ΔPSNR against the f32 reference, and serve int8 only if
    /// the loss fits the budget. The decision (and, when int8 wins, the
    /// packed `QuantKernels` inside it) is cached locally and in the
    /// shared store, so autoscaled sibling shards warm their int8 plans
    /// without re-grading the model. Staleness mirrors the other levels:
    /// a model reload or a budget change drops the same-key entry.
    ///
    /// Note a decision evicted here and recomputed later yields bitwise
    /// identical kernels (fixed seeds, deterministic pipeline), so plans
    /// compiled against the older `QuantKernels` Arc remain valid.
    pub fn decision_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        psnr_budget: f64,
    ) -> (Arc<PrecisionDecision>, DecisionSource) {
        let bits = psnr_budget.to_bits();
        if let Some(idx) = self
            .decisions
            .iter()
            .position(|e| e.key == *key && e.budget_bits == bits && Arc::ptr_eq(&e.model, model))
        {
            let entry = self.decisions.remove(idx);
            self.decisions.insert(0, entry);
            return (self.decisions[0].decision.clone(), DecisionSource::LocalHit);
        }
        self.decisions
            .retain(|e| e.key != *key || (Arc::ptr_eq(&e.model, model) && e.budget_bits == bits));
        let (decision, source) = match &self.shared {
            Some(shared) => {
                // Single-flight across the fleet: concurrent first
                // requests on different shards collapse to one grading.
                let (d, warm) = shared
                    .grade_single_flight(key, model, bits, || compute_decision(model, psnr_budget));
                let source = if warm {
                    DecisionSource::SharedHit
                } else {
                    DecisionSource::Computed
                };
                (d, source)
            }
            None => (
                Arc::new(compute_decision(model, psnr_budget)),
                DecisionSource::Computed,
            ),
        };
        self.decisions.insert(
            0,
            DecisionEntry {
                key: key.clone(),
                model: model.clone(),
                budget_bits: bits,
                decision: decision.clone(),
            },
        );
        self.decisions.truncate(DECISIONS_CAP);
        (decision, source)
    }

    /// Flattened kernels for `model`, compiled on first use. The `bool`
    /// is `true` on a cache hit (callers feed it to telemetry) — a
    /// shared-store hit counts: the flattening was not paid here.
    pub fn kernels_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
    ) -> (Arc<CollapsedKernels>, bool) {
        if let Some(idx) = self
            .kernels
            .iter()
            .position(|e| e.key == *key && Arc::ptr_eq(&e.model, model))
        {
            let entry = self.kernels.remove(idx);
            self.kernels.insert(0, entry);
            return (self.kernels[0].kernels.clone(), true);
        }
        // A same-key entry that failed ptr_eq is a stale compile of a
        // reloaded model; it can never hit again, so drop it now.
        self.kernels
            .retain(|e| e.key != *key || Arc::ptr_eq(&e.model, model));
        // Hot-model replication: another shard may have flattened these
        // weights already.
        let (kernels, warm) = match self.shared.as_ref().and_then(|s| s.get(key, model)) {
            Some(k) => (k, true),
            None => {
                let k = Arc::new(CollapsedKernels::new(model));
                if let Some(shared) = &self.shared {
                    shared.publish(key, model, &k);
                }
                (k, false)
            }
        };
        self.kernels.insert(
            0,
            KernelsEntry {
                key: key.clone(),
                model: model.clone(),
                kernels: kernels.clone(),
            },
        );
        self.kernels.truncate(KERNELS_CAP);
        (kernels, warm)
    }

    /// A ready-to-run plan for `(model, h, w)` at the decision's
    /// precision, compiled on first use. The `bool` is `true` on a
    /// cache hit.
    pub fn plan_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        h: usize,
        w: usize,
        decision: &PrecisionDecision,
    ) -> (&mut AnyPlan, bool) {
        let variant = kernel_variant();
        let want = decision.precision;
        if let Some(idx) = self.plans.iter().position(|e| {
            e.key == *key
                && e.h == h
                && e.w == w
                && e.precision == want
                && Arc::ptr_eq(&e.model, model)
                && e.plan.variant() == variant
        }) {
            let entry = self.plans.remove(idx);
            self.plans.insert(0, entry);
            return (&mut self.plans[0].plan, true);
        }
        // Stale entries can never hit again: a same-key ptr_eq failure is
        // a reloaded model, a variant mismatch (any key) is a plan
        // compiled under a repinned kernel global, and a same-key
        // precision mismatch is a plan from before a policy flip. Drop
        // all three now — a flipped model must never serve
        // mixed-precision outputs from leftover plans.
        self.plans.retain(|e| {
            (e.key != *key || (Arc::ptr_eq(&e.model, model) && e.precision == want))
                && e.plan.variant() == variant
        });
        let plan = match want {
            Precision::F32 => {
                let (kernels, _) = self.kernels_for(key, model);
                AnyPlan::F32(InferPlan::new(kernels, h, w))
            }
            Precision::Int8 => {
                let qk = decision
                    .qkernels
                    .clone()
                    .expect("an int8 decision always carries packed kernels");
                AnyPlan::Int8(QuantPlan::new(qk, h, w))
            }
        };
        self.plans.insert(
            0,
            PlanEntry {
                key: key.clone(),
                h,
                w,
                precision: want,
                model: model.clone(),
                plan,
            },
        );
        self.plans.truncate(PLANS_CAP);
        (&mut self.plans[0].plan, false)
    }

    /// A [`TilePlanner`] for `model`, created on first use and shared by
    /// every tile shape that model runs at. Video sessions walk the
    /// any-time ladder per dirty tile, so one worker holds one warm
    /// planner per rung; each planner bounds its per-shape plans with
    /// its own LRU. The `bool` is `true` on a cache hit. Staleness
    /// follows the same `Arc::ptr_eq` rule as the other levels.
    pub fn tile_planner_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        decision: &PrecisionDecision,
    ) -> (&mut AnyTilePlanner, bool) {
        let variant = kernel_variant();
        let want = decision.precision;
        if let Some(idx) = self.tile_planners.iter().position(|e| {
            e.key == *key
                && e.precision == want
                && Arc::ptr_eq(&e.model, model)
                && e.variant == variant
        }) {
            let entry = self.tile_planners.remove(idx);
            self.tile_planners.insert(0, entry);
            return (&mut self.tile_planners[0].planner, true);
        }
        self.tile_planners.retain(|e| {
            (e.key != *key || (Arc::ptr_eq(&e.model, model) && e.precision == want))
                && e.variant == variant
        });
        let planner = match want {
            Precision::F32 => {
                let (kernels, _) = self.kernels_for(key, model);
                AnyTilePlanner::F32(TilePlanner::new(kernels))
            }
            Precision::Int8 => {
                let qk = decision
                    .qkernels
                    .clone()
                    .expect("an int8 decision always carries packed kernels");
                AnyTilePlanner::Int8(QuantTilePlanner::new(qk))
            }
        };
        self.tile_planners.insert(
            0,
            TilePlannerEntry {
                key: key.clone(),
                model: model.clone(),
                variant,
                precision: want,
                planner,
            },
        );
        self.tile_planners.truncate(TILE_PLANNERS_CAP);
        (&mut self.tile_planners[0].planner, false)
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_core::model::{Sesr, SesrConfig};

    fn tiny_model() -> Arc<CollapsedSesr> {
        Arc::new(Sesr::new(SesrConfig::m(1).with_expanded(4).with_seed(3)).collapse())
    }

    #[test]
    fn plan_lookup_hits_after_miss_and_shares_kernels() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        let (_, hit) = cache.plan_for(&key, &model, 8, 10, &PrecisionDecision::F32);
        assert!(!hit, "first lookup must compile");
        let (_, hit) = cache.plan_for(&key, &model, 8, 10, &PrecisionDecision::F32);
        assert!(hit, "second lookup must reuse the plan");
        // The plan compile also primed the kernels level.
        let (_, hit) = cache.kernels_for(&key, &model);
        assert!(hit, "kernels were compiled as part of the plan");

        // A different shape misses at the plan level but reuses kernels.
        let (k1, _) = cache.kernels_for(&key, &model);
        let (_, hit) = cache.plan_for(&key, &model, 6, 6, &PrecisionDecision::F32);
        assert!(!hit);
        let (k2, _) = cache.kernels_for(&key, &model);
        assert!(Arc::ptr_eq(&k1, &k2));
    }

    #[test]
    fn reloaded_model_invalidates_stale_entries() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let old = tiny_model();
        cache.plan_for(&key, &old, 8, 8, &PrecisionDecision::F32);

        // Same key, different Arc: a registry reload. Must miss and
        // recompile against the new weights.
        let reloaded = tiny_model();
        let (_, hit) = cache.plan_for(&key, &reloaded, 8, 8, &PrecisionDecision::F32);
        assert!(!hit, "reload must invalidate the cached plan");
        let (_, hit) = cache.plan_for(&key, &reloaded, 8, 8, &PrecisionDecision::F32);
        assert!(hit);
        // The stale entry was dropped, not just shadowed.
        assert_eq!(cache.plans.len(), 1);
        assert_eq!(cache.kernels.len(), 1);
    }

    #[test]
    fn tile_planners_are_cached_per_model_and_reloaded_on_staleness() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();
        let (_, hit) = cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        assert!(!hit, "first lookup must build the planner");
        let (planner, hit) = cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        assert!(hit, "second lookup must reuse it");
        // Warm per-shape plans inside the planner survive across lookups.
        planner.warm_shape(8, 8);
        let (planner, _) = cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        assert_eq!(planner.cached_plans(), 1);
        // A reload (same key, new Arc) invalidates the planner.
        let reloaded = tiny_model();
        let (planner, hit) = cache.tile_planner_for(&key, &reloaded, &PrecisionDecision::F32);
        assert!(!hit, "reload must rebuild the planner");
        assert_eq!(planner.cached_plans(), 0);
    }

    #[test]
    fn repinned_kernel_variant_invalidates_plans_and_planners() {
        // Serialize against other tests that flip the process-global
        // variant (same lock the sesr-tensor bitwise tests take).
        let _guard = sesr_tensor::simd::variant_test_lock();
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        let prev = sesr_tensor::simd::set_kernel_variant(KernelVariant::Scalar);
        cache.plan_for(&key, &model, 8, 8, &PrecisionDecision::F32);
        cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        let (plan, hit) = cache.plan_for(&key, &model, 8, 8, &PrecisionDecision::F32);
        assert!(hit);
        assert_eq!(plan.variant(), KernelVariant::Scalar);
        let (_, hit) = cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        assert!(hit);

        // Repin to the detected default. On hardware where that is still
        // Scalar (or under force-scalar) the entries stay valid; on any
        // SIMD machine the old-variant entries must miss and be dropped.
        sesr_tensor::simd::set_kernel_variant(prev);
        let current = kernel_variant();
        let (plan, hit) = cache.plan_for(&key, &model, 8, 8, &PrecisionDecision::F32);
        assert_eq!(hit, current == KernelVariant::Scalar);
        assert_eq!(plan.variant(), current);
        let (_, hit) = cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        assert_eq!(hit, current == KernelVariant::Scalar);
        assert_eq!(cache.plans.len(), 1, "stale-variant plan must be dropped");
        assert_eq!(cache.tile_planners.len(), 1);
    }

    #[test]
    fn shared_store_replicates_kernels_across_caches() {
        let shared = Arc::new(SharedPlanCache::new());
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        // "Shard A" compiles and publishes.
        let mut a = PlanCache::with_shared(Some(shared.clone()));
        let (ka, hit) = a.kernels_for(&key, &model);
        assert!(!hit, "first compile anywhere is a miss");
        assert_eq!(shared.published(), 1);
        assert_eq!(shared.warm_hits(), 0);

        // "Shard B" (a freshly spawned shard's worker) warms instantly.
        let mut b = PlanCache::with_shared(Some(shared.clone()));
        let (kb, hit) = b.kernels_for(&key, &model);
        assert!(hit, "replicated kernels must count as a hit");
        assert!(Arc::ptr_eq(&ka, &kb), "one flattening shared by both");
        assert_eq!(shared.warm_hits(), 1);

        // B's local cache now holds it: no further shared traffic.
        let (_, hit) = b.kernels_for(&key, &model);
        assert!(hit);
        assert_eq!(shared.warm_hits(), 1);

        // A reloaded model misses and replaces the shared entry.
        let reloaded = tiny_model();
        let (_, hit) = b.kernels_for(&key, &reloaded);
        assert!(!hit);
        assert_eq!(shared.len(), 1, "stale shared entry must be replaced");
    }

    #[test]
    fn caches_are_bounded() {
        let mut cache = PlanCache::new();
        let model = tiny_model();
        let key = ModelKey::new("m1", 2);
        for i in 0..2 * PLANS_CAP {
            cache.plan_for(&key, &model, 6 + i, 6, &PrecisionDecision::F32);
        }
        assert_eq!(cache.plans.len(), PLANS_CAP);
        assert!(cache.kernels.len() <= KERNELS_CAP);
        // Most-recent shapes survived.
        let (_, hit) = cache.plan_for(
            &key,
            &model,
            6 + 2 * PLANS_CAP - 1,
            6,
            &PrecisionDecision::F32,
        );
        assert!(hit);
    }

    /// A generous budget always resolves to int8 (every calibrated model
    /// loses less than 100 dB on the calibration scene).
    const ALWAYS_INT8: f64 = 100.0;
    /// An impossible budget always falls back (ΔPSNR of a finite
    /// measurement can never be ≤ -100 dB).
    const NEVER_INT8: f64 = -100.0;

    #[test]
    fn decision_resolves_int8_within_budget_and_falls_back_beyond_it() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        let (d, src) = cache.decision_for(&key, &model, ALWAYS_INT8);
        assert_eq!(src, DecisionSource::Computed);
        assert_eq!(d.precision, Precision::Int8);
        assert!(d.delta_db.is_finite());
        assert!(d.qkernels.is_some(), "int8 decision must carry kernels");

        // Same budget again: local hit, same Arc.
        let (d2, src) = cache.decision_for(&key, &model, ALWAYS_INT8);
        assert_eq!(src, DecisionSource::LocalHit);
        assert!(Arc::ptr_eq(&d, &d2));

        // A budget no measurement can meet: measured, then fell back.
        let (d3, src) = cache.decision_for(&key, &model, NEVER_INT8);
        assert_eq!(src, DecisionSource::Computed);
        assert_eq!(d3.precision, Precision::F32);
        assert!(d3.delta_db.is_finite(), "fallback still reports ΔPSNR");
        assert!(d3.qkernels.is_none());
    }

    #[test]
    fn precision_policy_flip_drops_stale_plans_and_planners() {
        // Satellite: flipping a model's policy f32 -> int8 (or back) must
        // drop the other-precision entries on the first lookup, so no
        // request can be served from a mixed-precision cache.
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();
        let (int8, _) = cache.decision_for(&key, &model, ALWAYS_INT8);

        // Serve f32 first.
        cache.plan_for(&key, &model, 8, 8, &PrecisionDecision::F32);
        cache.plan_for(&key, &model, 6, 10, &PrecisionDecision::F32);
        cache.tile_planner_for(&key, &model, &PrecisionDecision::F32);
        assert_eq!(cache.plans.len(), 2);

        // Policy flips to int8: every f32 plan for the key is stale.
        let (plan, hit) = cache.plan_for(&key, &model, 8, 8, &int8);
        assert!(!hit, "post-flip lookup must recompile at int8");
        assert_eq!(plan.precision(), Precision::Int8);
        assert_eq!(cache.plans.len(), 1, "stale f32 plans must be dropped");
        let (planner, hit) = cache.tile_planner_for(&key, &model, &int8);
        assert!(!hit);
        assert_eq!(planner.precision(), Precision::Int8);
        assert_eq!(cache.tile_planners.len(), 1);

        // Steady state at int8 hits.
        let (_, hit) = cache.plan_for(&key, &model, 8, 8, &int8);
        assert!(hit);

        // Flip back: the int8 entries are dropped in turn.
        let (plan, hit) = cache.plan_for(&key, &model, 8, 8, &PrecisionDecision::F32);
        assert!(!hit);
        assert_eq!(plan.precision(), Precision::F32);
        assert_eq!(cache.plans.len(), 1);
    }

    #[test]
    fn int8_plans_match_the_quantized_oracle() {
        // The cached int8 plan serves the exact bits of the quantized
        // reference network it was decided from.
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();
        let (d, _) = cache.decision_for(&key, &model, ALWAYS_INT8);
        let lr = Tensor::rand_uniform(&[1, 9, 11], 0.0, 1.0, 5);
        let batch = Tensor::stack(&[&lr]);
        let (plan, _) = cache.plan_for(&key, &model, 9, 11, &d);
        let got = plan.run_batch(&batch);

        // Rebuild the oracle exactly as compute_decision does.
        let oracle = {
            let calib: Vec<Tensor> = (0..N_CALIB)
                .map(|i| {
                    sesr_quant::calibration_pair(
                        model.scale(),
                        CALIB_TILE,
                        CALIB_TILE,
                        CALIB_SEED + i,
                    )
                    .1
                })
                .collect();
            let profile = sesr_quant::calibrate(&model, &calib);
            QuantizedSesr::quantize(&model, &profile)
        };
        let want = oracle.run(&lr);
        assert_eq!(want.data(), got.data());
    }

    #[test]
    fn concurrent_gradings_collapse_to_one() {
        // The autoscale race: two shards' workers both miss the store
        // and grade "simultaneously". Single-flight must run the grade
        // closure exactly once; the loser waits and warms from the
        // winner's publish instead of paying a second grading.
        use std::sync::atomic::AtomicUsize;

        let shared = Arc::new(SharedPlanCache::new());
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();
        let grades = Arc::new(AtomicUsize::new(0));

        let winner = {
            let (shared, key, model, grades) =
                (shared.clone(), key.clone(), model.clone(), grades.clone());
            std::thread::spawn(move || {
                shared.grade_single_flight(&key, &model, 0, || {
                    grades.fetch_add(1, Ordering::SeqCst);
                    // Hold the grading slot long enough that the other
                    // thread reliably arrives mid-flight.
                    std::thread::sleep(Duration::from_millis(150));
                    PrecisionDecision::F32
                })
            })
        };
        // Arrive while the winner is mid-grade.
        std::thread::sleep(Duration::from_millis(30));
        let (d_loser, warm_loser) = shared.grade_single_flight(&key, &model, 0, || {
            grades.fetch_add(1, Ordering::SeqCst);
            PrecisionDecision::F32
        });
        let (d_winner, warm_winner) = winner.join().expect("grader thread");

        assert_eq!(grades.load(Ordering::SeqCst), 1, "grade must run once");
        assert!(!warm_winner, "the grader itself is not warm");
        assert!(warm_loser, "the waiter must warm from the publish");
        assert!(Arc::ptr_eq(&d_winner, &d_loser), "one shared decision");
        assert_eq!(shared.warm_hits(), 1);
    }

    #[test]
    fn shared_store_replicates_decisions_across_caches() {
        // An autoscaled shard's worker must warm int8 serving from the
        // shared store: the grading (calibrate + quantize + ΔPSNR) is
        // paid once per process, not once per shard.
        let shared = Arc::new(SharedPlanCache::new());
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        let mut a = PlanCache::with_shared(Some(shared.clone()));
        let (da, src) = a.decision_for(&key, &model, ALWAYS_INT8);
        assert_eq!(src, DecisionSource::Computed);
        assert_eq!(shared.decisions_len(), 1);
        let warm_before = shared.warm_hits();

        // Fresh shard, fresh worker cache: decision comes from the store.
        let mut b = PlanCache::with_shared(Some(shared.clone()));
        let (db, src) = b.decision_for(&key, &model, ALWAYS_INT8);
        assert_eq!(src, DecisionSource::SharedHit);
        assert!(Arc::ptr_eq(&da, &db), "one grading shared by both shards");
        assert_eq!(shared.warm_hits(), warm_before + 1);

        // And so do the packed kernels inside it: compiling a plan on the
        // new shard allocates only the arena.
        let (plan, hit) = b.plan_for(&key, &model, 8, 8, &db);
        assert!(!hit, "plan arenas stay shard-local");
        assert_eq!(plan.precision(), Precision::Int8);

        // A different budget is a different decision.
        let (_, src) = b.decision_for(&key, &model, 0.5);
        assert_eq!(src, DecisionSource::Computed);

        // A reloaded model invalidates the shared decision.
        let reloaded = tiny_model();
        let (_, src) = b.decision_for(&key, &reloaded, ALWAYS_INT8);
        assert_eq!(src, DecisionSource::Computed);
    }
}
