//! Per-worker cache of compiled inference plans.
//!
//! Planned execution ([`InferPlan`]) amortizes its setup cost — kernel
//! flattening, Winograd kernel pre-transform, arena allocation — only if
//! the plan is reused across requests. Each engine worker owns one
//! [`PlanCache`]; nothing here is shared or locked, so a cache lookup on
//! the request hot path costs a short `Vec` scan.
//!
//! Two levels mirror the two halves of a plan:
//!
//! * **Kernels** (`Arc<CollapsedKernels>`) are shape-independent and
//!   shared: the batch path's plans and every tile planner for a model
//!   reuse one copy of the flattened weights.
//! * **Plans** (`InferPlan`) are `(model, height, width)`-specific; the
//!   queue batches same-key same-shape requests, so steady-state traffic
//!   for a handful of shapes hits a warm plan every time.
//!
//! **Staleness.** The registry can evict and reload a model under the
//! same [`ModelKey`] (e.g. after an artifact is replaced), so a key
//! match alone is not enough: every entry also remembers the
//! `Arc<CollapsedSesr>` it was compiled from and is valid only while
//! `Arc::ptr_eq` holds against the model the registry resolves for the
//! request. A reload therefore misses once, recompiles, and the stale
//! entry is dropped on that same lookup.
//!
//! **Kernel variant.** Plans and tile planners pin the process-global
//! [`kernel_variant`] at compile time, and an entry is valid only while
//! that global still matches (the *Detect* policy: serve never per-plan
//! autotunes the variant, because whole-frame plans and tile plans must
//! share one arithmetic for the tiled-vs-whole-frame bit-identity
//! guarantee). The global is normally fixed at process start, but if an
//! operator repins it at runtime (e.g. `scalar` for a cross-machine
//! repro), every cached plan compiled under the old variant misses,
//! recompiles under the new one, and is dropped — no mixed-variant
//! outputs can be served.
//!
//! Capacities are small and fixed (a worker serves few distinct models
//! and shapes at once); eviction is LRU via move-to-front.

use crate::registry::ModelKey;
use sesr_core::{CollapsedKernels, CollapsedSesr, InferPlan, TilePlanner};
use sesr_tensor::simd::{kernel_variant, KernelVariant};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Distinct models a worker keeps flattened kernels for.
const KERNELS_CAP: usize = 4;
/// Distinct `(model, shape)` plans a worker keeps arenas for.
const PLANS_CAP: usize = 8;
/// Distinct models a worker keeps tile planners for. Sized for one
/// video any-time ladder (m3/m5/m7/m11); the planners themselves bound
/// their per-shape plans internally.
const TILE_PLANNERS_CAP: usize = 4;

struct KernelsEntry {
    key: ModelKey,
    model: Arc<CollapsedSesr>,
    kernels: Arc<CollapsedKernels>,
}

/// Distinct models the process-wide shared store keeps kernels for.
const SHARED_KERNELS_CAP: usize = 8;

/// One shared-store entry: the model key, the exact model `Arc` the
/// kernels were flattened from (staleness identity), and the kernels.
type SharedKernelEntry = (ModelKey, Arc<CollapsedSesr>, Arc<CollapsedKernels>);

/// Process-wide store of flattened kernels, shared across every engine
/// shard the router owns (hot-model replication).
///
/// [`CollapsedKernels`] is the expensive *immutable* half of a plan:
/// flattened weights and pre-transformed Winograd kernels. Plans
/// themselves (arenas) are mutable per-worker scratch and stay
/// worker-local — sharing them would serialize compute — but the
/// kernels behind them are safely shared `Arc`s. A freshly spawned
/// shard's workers therefore skip the flattening entirely whenever any
/// other shard has served the model before: its first request is warm.
///
/// The `warm_hits` counter feeds the router's `replication_warm_hits`
/// telemetry; it counts worker-local misses that the shared store
/// served, i.e. exactly the compiles replication avoided.
///
/// Staleness follows the same `Arc::ptr_eq` rule as [`PlanCache`]:
/// entries are keyed by the model Arc they were flattened from, so a
/// registry reload misses once and replaces the shared entry.
pub struct SharedPlanCache {
    kernels: Mutex<Vec<SharedKernelEntry>>,
    warm_hits: AtomicU64,
    published: AtomicU64,
}

impl SharedPlanCache {
    /// An empty shared store.
    pub fn new() -> Self {
        Self {
            kernels: Mutex::new(Vec::with_capacity(SHARED_KERNELS_CAP)),
            warm_hits: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Looks up kernels for `(key, model)`. A hit bumps `warm_hits` —
    /// callers only consult the shared store after a local miss, so
    /// every hit here is a compile some other worker already paid for.
    pub fn get(&self, key: &ModelKey, model: &Arc<CollapsedSesr>) -> Option<Arc<CollapsedKernels>> {
        let mut g = self.kernels.lock().unwrap_or_else(PoisonError::into_inner);
        let idx = g
            .iter()
            .position(|(k, m, _)| k == key && Arc::ptr_eq(m, model))?;
        let entry = g.remove(idx);
        let kernels = entry.2.clone();
        g.insert(0, entry);
        drop(g);
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
        Some(kernels)
    }

    /// Publishes freshly compiled kernels so other shards skip the
    /// compile. Stale same-key entries (reloaded model) are replaced.
    pub fn publish(
        &self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        kernels: &Arc<CollapsedKernels>,
    ) {
        let mut g = self.kernels.lock().unwrap_or_else(PoisonError::into_inner);
        g.retain(|(k, m, _)| k != key || Arc::ptr_eq(m, model));
        if g.iter().any(|(k, m, _)| k == key && Arc::ptr_eq(m, model)) {
            return; // lost a publish race; the existing entry is equivalent
        }
        g.insert(0, (key.clone(), model.clone(), kernels.clone()));
        g.truncate(SHARED_KERNELS_CAP);
        drop(g);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    /// Worker-local misses served from the shared store so far.
    pub fn warm_hits(&self) -> u64 {
        self.warm_hits.load(Ordering::Relaxed)
    }

    /// Kernel sets published into the store so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Models currently held.
    pub fn len(&self) -> usize {
        self.kernels
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SharedPlanCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedPlanCache")
            .field("models", &self.len())
            .field("warm_hits", &self.warm_hits())
            .finish()
    }
}

struct PlanEntry {
    key: ModelKey,
    h: usize,
    w: usize,
    model: Arc<CollapsedSesr>,
    plan: InferPlan,
}

struct TilePlannerEntry {
    key: ModelKey,
    model: Arc<CollapsedSesr>,
    /// The process-global kernel variant when the planner was built; its
    /// lazily-compiled per-tile plans all pin this, so a global repin
    /// invalidates the whole planner.
    variant: KernelVariant,
    planner: TilePlanner,
}

/// Worker-local LRU cache of [`CollapsedKernels`] and [`InferPlan`]s,
/// optionally backed by a process-wide [`SharedPlanCache`] so sibling
/// shards replicate hot kernels instead of recompiling them.
pub struct PlanCache {
    kernels: Vec<KernelsEntry>,
    plans: Vec<PlanEntry>,
    tile_planners: Vec<TilePlannerEntry>,
    shared: Option<Arc<SharedPlanCache>>,
}

impl PlanCache {
    pub fn new() -> Self {
        Self::with_shared(None)
    }

    /// A cache that consults (and publishes to) `shared` on local
    /// kernel misses.
    pub fn with_shared(shared: Option<Arc<SharedPlanCache>>) -> Self {
        PlanCache {
            kernels: Vec::with_capacity(KERNELS_CAP),
            plans: Vec::with_capacity(PLANS_CAP),
            tile_planners: Vec::with_capacity(TILE_PLANNERS_CAP),
            shared,
        }
    }

    /// Flattened kernels for `model`, compiled on first use. The `bool`
    /// is `true` on a cache hit (callers feed it to telemetry) — a
    /// shared-store hit counts: the flattening was not paid here.
    pub fn kernels_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
    ) -> (Arc<CollapsedKernels>, bool) {
        if let Some(idx) = self
            .kernels
            .iter()
            .position(|e| e.key == *key && Arc::ptr_eq(&e.model, model))
        {
            let entry = self.kernels.remove(idx);
            self.kernels.insert(0, entry);
            return (self.kernels[0].kernels.clone(), true);
        }
        // A same-key entry that failed ptr_eq is a stale compile of a
        // reloaded model; it can never hit again, so drop it now.
        self.kernels
            .retain(|e| e.key != *key || Arc::ptr_eq(&e.model, model));
        // Hot-model replication: another shard may have flattened these
        // weights already.
        let (kernels, warm) = match self.shared.as_ref().and_then(|s| s.get(key, model)) {
            Some(k) => (k, true),
            None => {
                let k = Arc::new(CollapsedKernels::new(model));
                if let Some(shared) = &self.shared {
                    shared.publish(key, model, &k);
                }
                (k, false)
            }
        };
        self.kernels.insert(
            0,
            KernelsEntry {
                key: key.clone(),
                model: model.clone(),
                kernels: kernels.clone(),
            },
        );
        self.kernels.truncate(KERNELS_CAP);
        (kernels, warm)
    }

    /// A ready-to-run plan for `(model, h, w)`, compiled on first use.
    /// The `bool` is `true` on a cache hit.
    pub fn plan_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
        h: usize,
        w: usize,
    ) -> (&mut InferPlan, bool) {
        let variant = kernel_variant();
        if let Some(idx) = self.plans.iter().position(|e| {
            e.key == *key
                && e.h == h
                && e.w == w
                && Arc::ptr_eq(&e.model, model)
                && e.plan.variant() == variant
        }) {
            let entry = self.plans.remove(idx);
            self.plans.insert(0, entry);
            return (&mut self.plans[0].plan, true);
        }
        // Stale entries can never hit again: a same-key ptr_eq failure is
        // a reloaded model, and a variant mismatch (any key) is a plan
        // compiled under a repinned kernel global. Drop both now.
        self.plans.retain(|e| {
            (e.key != *key || Arc::ptr_eq(&e.model, model)) && e.plan.variant() == variant
        });
        let (kernels, _) = self.kernels_for(key, model);
        let plan = InferPlan::new(kernels, h, w);
        self.plans.insert(
            0,
            PlanEntry {
                key: key.clone(),
                h,
                w,
                model: model.clone(),
                plan,
            },
        );
        self.plans.truncate(PLANS_CAP);
        (&mut self.plans[0].plan, false)
    }

    /// A [`TilePlanner`] for `model`, created on first use and shared by
    /// every tile shape that model runs at. Video sessions walk the
    /// any-time ladder per dirty tile, so one worker holds one warm
    /// planner per rung; each planner bounds its per-shape plans with
    /// its own LRU. The `bool` is `true` on a cache hit. Staleness
    /// follows the same `Arc::ptr_eq` rule as the other levels.
    pub fn tile_planner_for(
        &mut self,
        key: &ModelKey,
        model: &Arc<CollapsedSesr>,
    ) -> (&mut TilePlanner, bool) {
        let variant = kernel_variant();
        if let Some(idx) = self
            .tile_planners
            .iter()
            .position(|e| e.key == *key && Arc::ptr_eq(&e.model, model) && e.variant == variant)
        {
            let entry = self.tile_planners.remove(idx);
            self.tile_planners.insert(0, entry);
            return (&mut self.tile_planners[0].planner, true);
        }
        self.tile_planners
            .retain(|e| (e.key != *key || Arc::ptr_eq(&e.model, model)) && e.variant == variant);
        let (kernels, _) = self.kernels_for(key, model);
        self.tile_planners.insert(
            0,
            TilePlannerEntry {
                key: key.clone(),
                model: model.clone(),
                variant,
                planner: TilePlanner::new(kernels),
            },
        );
        self.tile_planners.truncate(TILE_PLANNERS_CAP);
        (&mut self.tile_planners[0].planner, false)
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_core::model::{Sesr, SesrConfig};

    fn tiny_model() -> Arc<CollapsedSesr> {
        Arc::new(Sesr::new(SesrConfig::m(1).with_expanded(4).with_seed(3)).collapse())
    }

    #[test]
    fn plan_lookup_hits_after_miss_and_shares_kernels() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        let (_, hit) = cache.plan_for(&key, &model, 8, 10);
        assert!(!hit, "first lookup must compile");
        let (_, hit) = cache.plan_for(&key, &model, 8, 10);
        assert!(hit, "second lookup must reuse the plan");
        // The plan compile also primed the kernels level.
        let (_, hit) = cache.kernels_for(&key, &model);
        assert!(hit, "kernels were compiled as part of the plan");

        // A different shape misses at the plan level but reuses kernels.
        let (k1, _) = cache.kernels_for(&key, &model);
        let (_, hit) = cache.plan_for(&key, &model, 6, 6);
        assert!(!hit);
        let (k2, _) = cache.kernels_for(&key, &model);
        assert!(Arc::ptr_eq(&k1, &k2));
    }

    #[test]
    fn reloaded_model_invalidates_stale_entries() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let old = tiny_model();
        cache.plan_for(&key, &old, 8, 8);

        // Same key, different Arc: a registry reload. Must miss and
        // recompile against the new weights.
        let reloaded = tiny_model();
        let (_, hit) = cache.plan_for(&key, &reloaded, 8, 8);
        assert!(!hit, "reload must invalidate the cached plan");
        let (_, hit) = cache.plan_for(&key, &reloaded, 8, 8);
        assert!(hit);
        // The stale entry was dropped, not just shadowed.
        assert_eq!(cache.plans.len(), 1);
        assert_eq!(cache.kernels.len(), 1);
    }

    #[test]
    fn tile_planners_are_cached_per_model_and_reloaded_on_staleness() {
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();
        let (_, hit) = cache.tile_planner_for(&key, &model);
        assert!(!hit, "first lookup must build the planner");
        let (planner, hit) = cache.tile_planner_for(&key, &model);
        assert!(hit, "second lookup must reuse it");
        // Warm per-shape plans inside the planner survive across lookups.
        let _ = planner.plan_for(8, 8);
        let (planner, _) = cache.tile_planner_for(&key, &model);
        assert_eq!(planner.cached_plans(), 1);
        // A reload (same key, new Arc) invalidates the planner.
        let reloaded = tiny_model();
        let (planner, hit) = cache.tile_planner_for(&key, &reloaded);
        assert!(!hit, "reload must rebuild the planner");
        assert_eq!(planner.cached_plans(), 0);
    }

    #[test]
    fn repinned_kernel_variant_invalidates_plans_and_planners() {
        // Serialize against other tests that flip the process-global
        // variant (same lock the sesr-tensor bitwise tests take).
        let _guard = sesr_tensor::simd::variant_test_lock();
        let mut cache = PlanCache::new();
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        let prev = sesr_tensor::simd::set_kernel_variant(KernelVariant::Scalar);
        cache.plan_for(&key, &model, 8, 8);
        cache.tile_planner_for(&key, &model);
        let (plan, hit) = cache.plan_for(&key, &model, 8, 8);
        assert!(hit);
        assert_eq!(plan.variant(), KernelVariant::Scalar);
        let (_, hit) = cache.tile_planner_for(&key, &model);
        assert!(hit);

        // Repin to the detected default. On hardware where that is still
        // Scalar (or under force-scalar) the entries stay valid; on any
        // SIMD machine the old-variant entries must miss and be dropped.
        sesr_tensor::simd::set_kernel_variant(prev);
        let current = kernel_variant();
        let (plan, hit) = cache.plan_for(&key, &model, 8, 8);
        assert_eq!(hit, current == KernelVariant::Scalar);
        assert_eq!(plan.variant(), current);
        let (_, hit) = cache.tile_planner_for(&key, &model);
        assert_eq!(hit, current == KernelVariant::Scalar);
        assert_eq!(cache.plans.len(), 1, "stale-variant plan must be dropped");
        assert_eq!(cache.tile_planners.len(), 1);
    }

    #[test]
    fn shared_store_replicates_kernels_across_caches() {
        let shared = Arc::new(SharedPlanCache::new());
        let key = ModelKey::new("m1", 2);
        let model = tiny_model();

        // "Shard A" compiles and publishes.
        let mut a = PlanCache::with_shared(Some(shared.clone()));
        let (ka, hit) = a.kernels_for(&key, &model);
        assert!(!hit, "first compile anywhere is a miss");
        assert_eq!(shared.published(), 1);
        assert_eq!(shared.warm_hits(), 0);

        // "Shard B" (a freshly spawned shard's worker) warms instantly.
        let mut b = PlanCache::with_shared(Some(shared.clone()));
        let (kb, hit) = b.kernels_for(&key, &model);
        assert!(hit, "replicated kernels must count as a hit");
        assert!(Arc::ptr_eq(&ka, &kb), "one flattening shared by both");
        assert_eq!(shared.warm_hits(), 1);

        // B's local cache now holds it: no further shared traffic.
        let (_, hit) = b.kernels_for(&key, &model);
        assert!(hit);
        assert_eq!(shared.warm_hits(), 1);

        // A reloaded model misses and replaces the shared entry.
        let reloaded = tiny_model();
        let (_, hit) = b.kernels_for(&key, &reloaded);
        assert!(!hit);
        assert_eq!(shared.len(), 1, "stale shared entry must be replaced");
    }

    #[test]
    fn caches_are_bounded() {
        let mut cache = PlanCache::new();
        let model = tiny_model();
        let key = ModelKey::new("m1", 2);
        for i in 0..2 * PLANS_CAP {
            cache.plan_for(&key, &model, 6 + i, 6);
        }
        assert_eq!(cache.plans.len(), PLANS_CAP);
        assert!(cache.kernels.len() <= KERNELS_CAP);
        // Most-recent shapes survived.
        let (_, hit) = cache.plan_for(&key, &model, 6 + 2 * PLANS_CAP - 1, 6);
        assert!(hit);
    }
}
