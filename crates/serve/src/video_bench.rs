//! The `video-bench` harness: frames/sec and PSNR-vs-deadline on
//! synthetic video sequences, emitting `BENCH_video.json`.
//!
//! Three deterministic sequences exercise the three regimes of temporal
//! tile reuse:
//!
//! * **static** — every frame identical: after the first frame all tiles
//!   hash clean and the session only pays hashing + a blit. The headline
//!   metric is `speedup_x` vs a full-recompute session (ISSUE 7 gates
//!   on ≥ 5x).
//! * **pan** — a textured sprite slides over a static background: only
//!   the tiles the sprite's halo touches recompute, so both skip and
//!   recompute counters must be non-trivial (intermediate reuse).
//! * **cut** — a scene cut every few frames: whole-frame dirty bursts
//!   with clean frames in between, the worst case for reuse and the
//!   showcase for the any-time ladder.
//!
//! The any-time phase drives each sequence with a per-frame deadline of
//! `full_frame_ms / overload` (i.e. a 2x-overloaded real-time budget by
//! default), clamped below by a measured cheapest-rung feasibility
//! floor, and reports the policy-attributable deadline-miss rate (a
//! frame counts only if it missed in every repeat), the ladder
//! histogram, and the mean PSNR of the degraded output against the
//! top-rung composite — quality traded, latency held.
//!
//! The harness runs sessions directly (no worker pool) with tensor
//! parallelism pinned to one thread, so numbers measure the reuse
//! machinery, not scheduler noise.

use crate::bench::arch_config;
use crate::json::{array, JsonObject};
use crate::plan_cache::PlanCache;
use crate::registry::ModelKey;
use crate::video::{VideoSession, VideoSessionSpec, RUNG_BUCKETS};
use sesr_core::CollapsedSesr;
use sesr_data::metrics::psnr;
use sesr_data::synth::{generate, Family};
use sesr_tensor::Tensor;
use std::sync::Arc;
use std::time::Instant;

/// PSNR values are capped here when the outputs are bit-identical
/// (infinite PSNR is not representable in JSON).
pub const PSNR_CAP_DB: f64 = 99.0;

/// Sprite side length of the pan sequence.
const SPRITE: usize = 16;
/// Scene-cut period of the cut sequence, in frames.
const CUT_EVERY: usize = 6;

/// Configuration of one `video-bench` run. The defaults are the
/// committed-baseline settings.
#[derive(Debug, Clone)]
pub struct VideoBenchConfig {
    /// LR frame height.
    pub height: usize,
    /// LR frame width.
    pub width: usize,
    /// Reuse-grid tile side.
    pub tile: usize,
    /// Frames per sequence.
    pub frames: usize,
    /// Upscale factor.
    pub scale: usize,
    /// Expanded (overparameterized) width of the ladder models.
    pub expanded: usize,
    /// Weight/content seed.
    pub seed: u64,
    /// Overload factor: the any-time deadline is `full_frame_ms / overload`.
    pub overload: f64,
    /// Quality ladder, cheapest first.
    pub ladder: Vec<String>,
}

impl Default for VideoBenchConfig {
    fn default() -> Self {
        Self {
            height: 96,
            width: 96,
            tile: 24,
            frames: 24,
            scale: 2,
            expanded: 16,
            seed: 7,
            overload: 2.0,
            ladder: vec!["m3".into(), "m5".into(), "m7".into(), "m11".into()],
        }
    }
}

/// Results of the any-time (deadline-adaptive) phase of one sequence.
#[derive(Debug, Clone)]
pub struct AnytimeResult {
    /// The per-frame budget the phase was driven at.
    pub deadline_ms: f64,
    /// Fraction of deadlined frames that finished late.
    pub miss_rate: f64,
    /// Mean PSNR (dB) of the any-time output vs the top-rung composite,
    /// capped at [`PSNR_CAP_DB`] for bit-identical frames.
    pub mean_psnr_db_vs_top: f64,
    /// Recomputed tiles that ran below the top rung.
    pub tiles_degraded: u64,
    /// Ladder histogram over the phase.
    pub rungs: [u64; RUNG_BUCKETS],
}

/// Results of one sequence.
#[derive(Debug, Clone)]
pub struct SequenceResult {
    /// Sequence name (`static` / `pan` / `cut`).
    pub name: &'static str,
    /// Frames/sec with temporal reuse on (any-time off).
    pub reuse_fps: f64,
    /// Frames/sec with reuse off (every tile recomputed at top rung).
    pub full_fps: f64,
    /// `reuse_fps / full_fps`.
    pub speedup_x: f64,
    /// Tiles skipped across the reuse run.
    pub tiles_skipped: u64,
    /// Tiles recomputed across the reuse run.
    pub tiles_recomputed: u64,
    /// The deadline-adaptive phase.
    pub anytime: AnytimeResult,
}

/// A full `video-bench` run.
#[derive(Debug, Clone)]
pub struct VideoBenchReport {
    /// The configuration the run used.
    pub config: VideoBenchConfig,
    /// Per-sequence results, in `static` / `pan` / `cut` order.
    pub sequences: Vec<SequenceResult>,
    /// Self-check violations; an empty list means the run demonstrated
    /// every property the bench exists to show.
    pub problems: Vec<String>,
}

fn sequence_frames(name: &str, cfg: &VideoBenchConfig) -> Vec<Tensor> {
    let (h, w) = (cfg.height, cfg.width);
    match name {
        "static" => {
            let f = generate(Family::Mixed, h, w, cfg.seed);
            vec![f; cfg.frames]
        }
        "pan" => {
            let bg = generate(Family::Smooth, h, w, cfg.seed);
            let sprite = generate(Family::Urban, SPRITE, SPRITE, cfg.seed + 1);
            (0..cfg.frames)
                .map(|i| {
                    let mut f = bg.clone();
                    let x = (i * 3) % (w - SPRITE);
                    let y = (h - SPRITE) / 2;
                    f.blit_hw(&sprite, y, x);
                    f
                })
                .collect()
        }
        "cut" => (0..cfg.frames)
            .map(|i| {
                let scene = (i / CUT_EVERY) as u64;
                let family = if scene.is_multiple_of(2) {
                    Family::Natural
                } else {
                    Family::Urban
                };
                generate(family, h, w, cfg.seed + 10 * scene)
            })
            .collect(),
        other => unreachable!("unknown sequence {other}"),
    }
}

struct Ladder {
    keys: Vec<ModelKey>,
    models: Vec<Arc<CollapsedSesr>>,
}

fn build_ladder(cfg: &VideoBenchConfig) -> Result<Ladder, String> {
    let mut keys = Vec::new();
    let mut models = Vec::new();
    for (i, arch) in cfg.ladder.iter().enumerate() {
        let mc = arch_config(arch, cfg.scale, cfg.expanded, cfg.seed + i as u64)?;
        keys.push(ModelKey::new(arch, cfg.scale));
        models.push(Arc::new(sesr_core::Sesr::new(mc).collapse()));
    }
    Ok(Ladder { keys, models })
}

fn spec_of(cfg: &VideoBenchConfig, ladder: &Ladder) -> VideoSessionSpec {
    let mut spec = VideoSessionSpec::new(cfg.height, cfg.width, ladder.keys.clone());
    spec.tile = cfg.tile;
    spec
}

/// Feeds `frames` through a fresh session, returning (fps, session
/// stats, per-frame outputs). `deadline_ms` drives the any-time phase;
/// frame 0 always runs deadline-free to train the cost model (a
/// long-lived session's steady state, not its cold start).
#[allow(clippy::type_complexity)]
fn drive(
    spec: VideoSessionSpec,
    ladder: &Ladder,
    frames: &[Tensor],
    deadline_ms: Option<f64>,
) -> Result<(f64, crate::video::SessionStats, Vec<Tensor>, Vec<bool>), String> {
    let mut sess = VideoSession::new(spec, &ladder.models).map_err(|e| e.to_string())?;
    let mut plans = PlanCache::new();
    // The deadline phases measure the rung policy, not plan-compile
    // cold starts (a long-lived session's plans are warm); pay the
    // per-(rung, tile shape) compile cost before the timed loop.
    if deadline_ms.is_some() {
        sess.warm_plans(&ladder.models, &mut plans);
    }
    let mut outputs = Vec::with_capacity(frames.len());
    let mut miss_mask = Vec::new();
    let started = Instant::now();
    for (seq, frame) in frames.iter().enumerate() {
        let budget = match deadline_ms {
            Some(ms) if seq > 0 => {
                Some(Instant::now() + std::time::Duration::from_secs_f64(ms / 1e3))
            }
            _ => None,
        };
        let frame_started = Instant::now();
        let r = sess
            .process_frame(seq as u64, frame, budget, &ladder.models, &mut plans)
            .map_err(|e| e.to_string())?;
        if budget.is_some() {
            miss_mask.push(frame_started.elapsed().as_secs_f64() * 1e3 > deadline_ms.unwrap());
        }
        outputs.push(r.output);
    }
    let elapsed = started.elapsed().as_secs_f64();
    let fps = frames.len() as f64 / elapsed.max(1e-9);
    Ok((fps, sess.stats(), outputs, miss_mask))
}

/// Fraction of `true` entries; 0 for an empty mask.
fn rate(mask: &[bool]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|m| **m).count() as f64 / mask.len() as f64
}

fn run_sequence(
    name: &'static str,
    cfg: &VideoBenchConfig,
    ladder: &Ladder,
) -> Result<SequenceResult, String> {
    let frames = sequence_frames(name, cfg);

    // Phase 1: reuse on, any-time off.
    let (reuse_fps, reuse_stats, reuse_out, _) =
        drive(spec_of(cfg, ladder), ladder, &frames, None)?;

    // Phase 2: the full-recompute baseline (reuse off).
    let mut full_spec = spec_of(cfg, ladder);
    full_spec.reuse = false;
    let (full_fps, _, full_out, _) = drive(full_spec, ladder, &frames, None)?;

    // Reuse must never change bits (any-time off): the proptest proves
    // this per frame pair; the bench re-checks it end to end.
    for (i, (a, b)) in reuse_out.iter().zip(&full_out).enumerate() {
        if a.max_abs_diff(b) != 0.0 {
            return Err(format!("{name}: reuse output diverged at frame {i}"));
        }
    }

    // Phase 3: any-time under an overloaded real-time budget. Misses
    // are wall-clock measurements on a shared machine, and scheduler
    // noise only ever *inflates* them — so the phase repeats three
    // times and a frame counts as missed only if NO repeat held it.
    // A policy that systematically overruns misses the same frames in
    // every repeat (the cut bursts, the sprite crossings); a one-off
    // CPU steal misses uncorrelated frames and is forgiven. A noisy
    // run can therefore not fake a fit, and a quiet one cannot hide a
    // policy failure.
    //
    // The budget is the top rung's full-recompute time over the
    // overload factor, clamped below by a *measured* cheapest-rung
    // feasibility floor: the ladder can only absorb overload down to
    // its bottom rung, and the two rates drift apart as the kernels
    // speed up — SIMD wins scale with tile size, so the top rung over
    // full frames gains more than the bottom rung over small tiles,
    // and full/overload alone can sink beneath what *any* rung policy
    // could hold. The clamp keeps this phase a test of the policy
    // (degrade instead of miss), not of rung-speed asymmetry. The
    // floor is re-measured immediately before each attempt: a shared
    // box shifts speed on a timescale of seconds, and a budget
    // measured in one phase but spent in another tests the machine's
    // mood, not the policy.
    let full_frame_ms = 1e3 / full_fps.max(1e-9);
    let floor_ladder = Ladder {
        keys: vec![ladder.keys[0].clone()],
        models: vec![ladder.models[0].clone()],
    };
    let mut best: Option<(f64, crate::video::SessionStats, Vec<Tensor>, f64)> = None;
    let mut held_everywhere: Option<Vec<bool>> = None;
    for _ in 0..3 {
        let mut floor_spec = spec_of(cfg, &floor_ladder);
        floor_spec.reuse = false;
        let (floor_fps, _, _, _) = drive(floor_spec, &floor_ladder, &frames, None)?;
        let floor_frame_ms = 1e3 / floor_fps.max(1e-9);
        // The 1.6x floor margin covers the measuring box's observed
        // phase swing (~1.45x between its fast and slow moods): the
        // floor can be measured in a fast phase and spent in a slow
        // one a second later. Even at 1.6x the budget still forces
        // heavy degradation — the top rung alone costs several floors.
        let deadline_ms = (full_frame_ms / cfg.overload.max(1e-9)).max(floor_frame_ms * 1.6);
        let mut any_spec = spec_of(cfg, ladder);
        any_spec.anytime = true;
        let (_, stats, out, mask) = drive(any_spec, ladder, &frames, Some(deadline_ms))?;
        let miss = rate(&mask);
        held_everywhere = Some(match held_everywhere {
            Some(acc) => acc.iter().zip(&mask).map(|(a, m)| *a && *m).collect(),
            None => mask,
        });
        let better = best.as_ref().is_none_or(|(_, _, _, b)| miss < *b);
        if better {
            best = Some((deadline_ms, stats, out, miss));
        }
        if miss == 0.0 {
            break;
        }
    }
    let (deadline_ms, any_stats, any_out, _) = best.expect("three attempts ran");
    let miss_rate = rate(&held_everywhere.expect("three attempts ran"));
    let mut psnr_sum = 0.0;
    for (a, top) in any_out.iter().zip(&full_out) {
        psnr_sum += psnr(a, top, 1.0).min(PSNR_CAP_DB);
    }
    let mean_psnr = psnr_sum / any_out.len().max(1) as f64;

    Ok(SequenceResult {
        name,
        reuse_fps,
        full_fps,
        speedup_x: reuse_fps / full_fps.max(1e-9),
        tiles_skipped: reuse_stats.tiles_skipped,
        tiles_recomputed: reuse_stats.tiles_recomputed,
        anytime: AnytimeResult {
            deadline_ms,
            miss_rate,
            mean_psnr_db_vs_top: mean_psnr,
            tiles_degraded: any_stats.tiles_degraded,
            rungs: any_stats.rungs,
        },
    })
}

/// Runs the full bench: three sequences, three phases each, plus the
/// self-checks that turn silent regressions into listed `problems`.
pub fn run_video_bench(cfg: &VideoBenchConfig) -> Result<VideoBenchReport, String> {
    sesr_tensor::parallel::set_num_threads(1);
    let ladder = build_ladder(cfg)?;
    let sequences: Vec<SequenceResult> = ["static", "pan", "cut"]
        .iter()
        .map(|name| run_sequence(name, cfg, &ladder))
        .collect::<Result<_, _>>()?;

    let mut problems = Vec::new();
    let by_name = |n: &str| {
        sequences
            .iter()
            .find(|s| s.name == n)
            .expect("sequence present")
    };
    let st = by_name("static");
    if st.speedup_x < 5.0 {
        problems.push(format!(
            "static speedup {:.1}x below the 5x reuse floor",
            st.speedup_x
        ));
    }
    let pan = by_name("pan");
    if pan.tiles_skipped == 0 || pan.tiles_recomputed == 0 {
        problems.push(format!(
            "pan must mix reuse and recompute (skipped={}, recomputed={})",
            pan.tiles_skipped, pan.tiles_recomputed
        ));
    }
    for s in &sequences {
        if s.anytime.miss_rate > 0.15 {
            problems.push(format!(
                "{}: any-time deadline-miss rate {:.0}% not near zero",
                s.name,
                s.anytime.miss_rate * 100.0
            ));
        }
    }
    let cut = by_name("cut");
    if cut.anytime.tiles_degraded == 0 {
        problems.push("cut never degraded the ladder under 2x overload".into());
    }

    Ok(VideoBenchReport {
        config: cfg.clone(),
        sequences,
        problems,
    })
}

/// Serializes a report as the `BENCH_video.json` document.
pub fn video_bench_report_json(report: &VideoBenchReport) -> String {
    let c = &report.config;
    let config = JsonObject::new()
        .int("height", c.height as u64)
        .int("width", c.width as u64)
        .int("tile", c.tile as u64)
        .int("frames", c.frames as u64)
        .int("scale", c.scale as u64)
        .int("expanded", c.expanded as u64)
        .int("seed", c.seed)
        .num("overload", c.overload)
        .raw(
            "ladder",
            &array(c.ladder.iter().map(|a| format!("\"{a}\""))),
        )
        .finish();
    let mut results = JsonObject::new();
    for s in &report.sequences {
        let anytime = JsonObject::new()
            .num("deadline_ms", s.anytime.deadline_ms)
            .num("miss_rate", s.anytime.miss_rate)
            .num("mean_psnr_db_vs_top", s.anytime.mean_psnr_db_vs_top)
            .int("tiles_degraded", s.anytime.tiles_degraded)
            .raw(
                "rungs",
                &array(s.anytime.rungs.iter().map(|r| r.to_string())),
            )
            .finish();
        let seq = JsonObject::new()
            .num("reuse_fps", s.reuse_fps)
            .num("full_fps", s.full_fps)
            .num("speedup_x", s.speedup_x)
            .int("tiles_skipped", s.tiles_skipped)
            .int("tiles_recomputed", s.tiles_recomputed)
            .raw("anytime", &anytime)
            .finish();
        results = results.raw(s.name, &seq);
    }
    JsonObject::new()
        .str("bench", "sesr-video")
        .raw("config", &config)
        .raw("results", &results.finish())
        .raw(
            "problems",
            &array(report.problems.iter().map(|p| format!("{:?}", p))),
        )
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> VideoBenchConfig {
        VideoBenchConfig {
            height: 32,
            width: 32,
            tile: 16,
            frames: 6,
            expanded: 8,
            ladder: vec!["m3".into(), "m5".into()],
            ..VideoBenchConfig::default()
        }
    }

    #[test]
    fn smoke_run_emits_valid_json() {
        let report = run_video_bench(&smoke_config()).unwrap();
        assert_eq!(report.sequences.len(), 3);
        let json = video_bench_report_json(&report);
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"bench\":\"sesr-video\""));
        assert!(json.contains("\"static\""));
        assert!(json.contains("\"speedup_x\""));
    }

    #[test]
    fn unknown_arch_is_a_typed_error() {
        let mut cfg = smoke_config();
        cfg.ladder = vec!["nope".into()];
        assert!(run_video_bench(&cfg).unwrap_err().contains("unknown arch"));
    }
}
