//! Shard supervision: health probing, circuit breaking, wedge detection,
//! budgeted respawn, and shard-level chaos injection.
//!
//! One supervisor thread probes every shard each `probe_interval`:
//!
//! * **Chaos** — when configured, it is the supervisor that injects the
//!   shard-level faults: *kill* (hard engine shutdown: queued work
//!   settles through hooks and reroutes), *wedge* (pause the engine's
//!   queue so the shard is alive-but-stuck — exactly the failure health
//!   probes alone cannot see), and *fail respawn* (the replacement
//!   engine "fails to boot", consuming respawn backoff).
//! * **Breaker** — a killed or dead shard opens its breaker *before*
//!   its engine is torn down, so hook-driven reroutes already exclude
//!   it. Respawn moves the breaker to half-open; it closes again only
//!   after the fresh engine serves `half_open_successes` completions.
//! * **Wedge detection** — a shard with queued work whose completion
//!   counter has not advanced for `stall_ticks` consecutive probes is
//!   declared wedged and drain-and-replaced. Health probes return
//!   `Healthy` for a paused engine; only the progress signal catches it.
//! * **Respawn budget** — each shard gets `respawn_budget` replacement
//!   engines; attempts back off exponentially with deterministic jitter
//!   (shared with the engine's retry machinery) so simultaneous
//!   failures do not stampede. A shard that exhausts the budget stays
//!   open forever and the rest of the fleet absorbs its keys.

use crate::engine::{Engine, Health};
use crate::router::{respawn_backoff, RouterCore, BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::Duration;

struct ProbeState {
    /// Engine completion count at the previous probe.
    last_completed: u64,
    /// Consecutive probes with queued work and no progress.
    stall: u32,
    /// Tick at which an injected wedge auto-releases (if the stall
    /// detector has not replaced the shard first).
    wedged_until: Option<u64>,
    /// Engine generation when the wedge was injected; a replaced engine
    /// must not be resumed by a stale wedge timer.
    wedged_gen: u64,
    /// Tick at which the next respawn attempt is due. `None` while the
    /// shard is live, or forever once the budget is exhausted.
    respawn_at: Option<u64>,
    /// Consecutive failed respawn attempts (backoff exponent).
    failed_respawns: u32,
}

impl ProbeState {
    fn new() -> Self {
        Self {
            last_completed: 0,
            stall: 0,
            wedged_until: None,
            wedged_gen: 0,
            respawn_at: None,
            failed_respawns: 0,
        }
    }
}

pub(crate) fn supervisor_loop(core: Arc<RouterCore>) {
    let mut st: Vec<ProbeState> = (0..core.shards.len()).map(|_| ProbeState::new()).collect();
    let mut tick: u64 = 0;
    while core.running() {
        std::thread::sleep(core.cfg.probe_interval);
        tick += 1;
        for (i, ps) in st.iter_mut().enumerate() {
            probe_shard(&core, i, tick, ps);
        }
    }
}

fn engine_of(core: &RouterCore, i: usize) -> Arc<Engine> {
    Arc::clone(
        &core.shards[i]
            .engine
            .read()
            .unwrap_or_else(PoisonError::into_inner),
    )
}

fn ticks_for(core: &RouterCore, d: Duration) -> u64 {
    let probe = core.cfg.probe_interval.max(Duration::from_micros(1));
    ((d.as_nanos() / probe.as_nanos()) as u64).max(1)
}

/// Opens the breaker, tears the engine down (its hooks reroute queued
/// work), and schedules a respawn.
fn kill_shard(core: &RouterCore, i: usize, tick: u64, st: &mut ProbeState) {
    let shard = &core.shards[i];
    shard.breaker.store(BREAKER_OPEN, Ordering::Release);
    core.telemetry.counters(|c| c.breaker_opens += 1);
    let engine = engine_of(core, i);
    // Hard stop: no drain budget. close() overrides pause, and the
    // shutdown path settles every queued job through its hook, which
    // reroutes now that the breaker is already open.
    engine.shutdown(Duration::ZERO);
    st.wedged_until = None;
    st.stall = 0;
    st.last_completed = 0;
    st.failed_respawns = 0;
    st.respawn_at = Some(tick + 1);
}

fn try_respawn(core: &RouterCore, i: usize, tick: u64, st: &mut ProbeState) {
    let shard = &core.shards[i];
    if shard.respawns_used.load(Ordering::Relaxed) >= u64::from(core.cfg.respawn_budget) {
        // Budget exhausted: the shard stays open forever; the fleet
        // absorbs its keys through rendezvous fallback.
        st.respawn_at = None;
        return;
    }
    if core.chaos.as_ref().is_some_and(|c| c.fail_respawn()) {
        core.telemetry.counters(|c| c.respawn_failures += 1);
        st.failed_respawns += 1;
        let sleep = respawn_backoff(core, st.failed_respawns);
        st.respawn_at = Some(tick + ticks_for(core, sleep));
        return;
    }
    let fresh = Arc::new(Engine::new(core.cfg.engine.clone(), core.registry.clone()));
    *shard.engine.write().unwrap_or_else(PoisonError::into_inner) = fresh;
    shard.generation.fetch_add(1, Ordering::Release);
    shard.respawns_used.fetch_add(1, Ordering::Relaxed);
    st.failed_respawns = 0;
    st.respawn_at = None;
    st.stall = 0;
    st.last_completed = 0;
    shard.breaker.store(BREAKER_HALF_OPEN, Ordering::Release);
    core.telemetry.counters(|c| {
        c.shard_respawns += 1;
        c.breaker_half_opens += 1;
    });
}

fn probe_shard(core: &RouterCore, i: usize, tick: u64, st: &mut ProbeState) {
    let shard = &core.shards[i];
    let breaker = shard.breaker.load(Ordering::Acquire);
    if breaker == BREAKER_OPEN {
        if let Some(due) = st.respawn_at {
            if tick >= due {
                try_respawn(core, i, tick, st);
            }
        }
        return;
    }
    // Live shard (closed or half-open breaker).
    if core.chaos.as_ref().is_some_and(|c| c.kill_shard()) {
        core.telemetry.counters(|c| c.shard_kills += 1);
        kill_shard(core, i, tick, st);
        return;
    }
    let engine = engine_of(core, i);
    if st.wedged_until.is_none() && core.chaos.as_ref().is_some_and(|c| c.wedge_shard()) {
        core.telemetry.counters(|c| c.shard_wedges += 1);
        engine.pause();
        st.wedged_until = Some(tick + ticks_for(core, core.cfg.shard_chaos_wedge()));
        st.wedged_gen = shard.generation.load(Ordering::Acquire);
    }
    if let Some(until) = st.wedged_until {
        if tick >= until {
            if shard.generation.load(Ordering::Acquire) == st.wedged_gen {
                engine.resume();
            }
            st.wedged_until = None;
        }
    }
    // An engine that reports Draining without the router asking for it
    // has died underneath us (e.g. its worker pool exhausted its restart
    // budget): replace it.
    if engine.health() == Health::Draining {
        kill_shard(core, i, tick, st);
        return;
    }
    // Wedge detection: queued work, no completions for stall_ticks
    // consecutive probes. This is the only probe that sees a paused (or
    // livelocked) engine — health() happily reports Healthy for one.
    let completed = engine.telemetry().counters(|c| c.completed);
    if engine.queue_depth() > 0 && completed == st.last_completed {
        st.stall += 1;
    } else {
        st.stall = 0;
    }
    st.last_completed = completed;
    if st.stall >= core.cfg.stall_ticks {
        core.telemetry.counters(|c| c.wedges_detected += 1);
        kill_shard(core, i, tick, st);
        return;
    }
    // Half-open probing: the respawned engine rejoins the ring only
    // after proving it can complete work.
    if breaker == BREAKER_HALF_OPEN && completed >= core.cfg.half_open_successes {
        shard.breaker.store(BREAKER_CLOSED, Ordering::Release);
        core.telemetry.counters(|c| c.breaker_closes += 1);
    }
}
