//! Shard supervision: health probing, circuit breaking, wedge detection,
//! budgeted respawn, and shard-level chaos injection.
//!
//! One supervisor thread probes every shard each `probe_interval`:
//!
//! * **Chaos** — when configured, it is the supervisor that injects the
//!   shard-level faults: *kill* (hard engine shutdown: queued work
//!   settles through hooks and reroutes), *wedge* (pause the engine's
//!   queue so the shard is alive-but-stuck — exactly the failure health
//!   probes alone cannot see), and *fail respawn* (the replacement
//!   engine "fails to boot", consuming respawn backoff).
//! * **Breaker** — a killed or dead shard opens its breaker *before*
//!   its engine is torn down, so hook-driven reroutes already exclude
//!   it. Respawn moves the breaker to half-open; it closes again only
//!   after the fresh engine serves `half_open_successes` completions.
//! * **Wedge detection** — a shard with queued work whose completion
//!   counter has not advanced for `stall_ticks` consecutive probes is
//!   declared wedged and drain-and-replaced. Health probes return
//!   `Healthy` for a paused engine; only the progress signal catches it.
//! * **Respawn budget** — each shard gets `respawn_budget` replacement
//!   engines; attempts back off exponentially with deterministic jitter
//!   (shared with the engine's retry machinery) so simultaneous
//!   failures do not stampede. A shard that exhausts the budget stays
//!   open forever and the rest of the fleet absorbs its keys.
//! * **Autoscale execution** — with [`RouterConfig::autoscale`] set, the
//!   supervisor additionally feeds one pressure observation per tick to
//!   the pure [`AutoscaleController`] and executes its decisions: *up*
//!   spawns an engine into a dormant slot (warm through the shared plan
//!   store) and adds it to the ring; *down* takes the victim off the
//!   ring first (bounded key move), lets its queues flush within
//!   `drain_grace`, migrates pinned video sessions to live shards (or
//!   leaves them to settle as typed `SessionLost`), and only then
//!   retires the slot. At most one scaling transition is in flight at a
//!   time, and every completed transition re-arms the controller's
//!   cooldown.
//!
//! [`RouterConfig::autoscale`]: crate::router::RouterConfig
//! [`AutoscaleController`]: crate::autoscale::AutoscaleController

use crate::autoscale::{AutoscaleConfig, AutoscaleController, ScaleSignal};
use crate::chaos::splitmix64;
use crate::engine::{Engine, Health};
use crate::router::{respawn_backoff, RouterCore, BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN};
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError};
use std::time::Duration;

/// Synthetic keys sampled per ring edit to measure `keys_rebalanced`.
const REBALANCE_SAMPLES: u64 = 1024;

struct ProbeState {
    /// Engine completion count at the previous probe.
    last_completed: u64,
    /// Consecutive probes with queued work and no progress.
    stall: u32,
    /// Tick at which an injected wedge auto-releases (if the stall
    /// detector has not replaced the shard first).
    wedged_until: Option<u64>,
    /// Engine generation when the wedge was injected; a replaced engine
    /// must not be resumed by a stale wedge timer.
    wedged_gen: u64,
    /// Tick at which the next respawn attempt is due. `None` while the
    /// shard is live, or forever once the budget is exhausted.
    respawn_at: Option<u64>,
    /// Consecutive failed respawn attempts (backoff exponent).
    failed_respawns: u32,
}

impl ProbeState {
    fn new() -> Self {
        Self {
            last_completed: 0,
            stall: 0,
            wedged_until: None,
            wedged_gen: 0,
            respawn_at: None,
            failed_respawns: 0,
        }
    }
}

pub(crate) fn supervisor_loop(core: Arc<RouterCore>) {
    let mut st: Vec<ProbeState> = (0..core.shards.len()).map(|_| ProbeState::new()).collect();
    let mut scaler = core.cfg.autoscale.clone().map(Autoscaler::new);
    let mut tick: u64 = 0;
    while core.running() {
        std::thread::sleep(core.cfg.probe_interval);
        tick += 1;
        for (i, ps) in st.iter_mut().enumerate() {
            probe_shard(&core, i, tick, ps);
        }
        if let Some(s) = scaler.as_mut() {
            s.step(&core, tick, &mut st);
        }
    }
}

fn engine_of(core: &RouterCore, i: usize) -> Option<Arc<Engine>> {
    core.shards[i].engine()
}

/// Slots currently holding an engine (live, killed-awaiting-respawn, or
/// draining) — the autoscaler's notion of fleet size.
fn active_count(core: &RouterCore) -> usize {
    core.shards
        .iter()
        .filter(|s| {
            s.engine
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .is_some()
        })
        .count()
}

/// Slots actually taking primary traffic right now: engine present,
/// breaker not open, not draining. `active_count` minus dead-awaiting-
/// respawn and scale-down victims — the fleet's real serving capacity.
fn serving_count(core: &RouterCore) -> usize {
    core.shards
        .iter()
        .filter(|s| {
            s.breaker.load(Ordering::Acquire) != BREAKER_OPEN
                && !s.draining.load(Ordering::Acquire)
                && s.engine
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
        })
        .count()
}

fn ticks_for(core: &RouterCore, d: Duration) -> u64 {
    let probe = core.cfg.probe_interval.max(Duration::from_micros(1));
    ((d.as_nanos() / probe.as_nanos()) as u64).max(1)
}

/// Opens the breaker, tears the engine down (its hooks reroute queued
/// work), and schedules a respawn.
fn kill_shard(core: &RouterCore, i: usize, tick: u64, st: &mut ProbeState) {
    let shard = &core.shards[i];
    shard.breaker.store(BREAKER_OPEN, Ordering::Release);
    core.telemetry.counters(|c| c.breaker_opens += 1);
    // Hard stop: no drain budget. close() overrides pause, and the
    // shutdown path settles every queued job through its hook, which
    // reroutes now that the breaker is already open.
    if let Some(engine) = engine_of(core, i) {
        engine.shutdown(Duration::ZERO);
    }
    st.wedged_until = None;
    st.stall = 0;
    st.last_completed = 0;
    st.failed_respawns = 0;
    st.respawn_at = Some(tick + 1);
}

fn try_respawn(core: &RouterCore, i: usize, tick: u64, st: &mut ProbeState) {
    let shard = &core.shards[i];
    if shard.respawns_used.load(Ordering::Relaxed) >= u64::from(core.cfg.respawn_budget) {
        // Budget exhausted: the shard stays open forever; the fleet
        // absorbs its keys through rendezvous fallback.
        st.respawn_at = None;
        return;
    }
    // Below minimum *serving* capacity (the dead slot counts as active
    // but routes nothing) there is no slack shard to absorb a failed
    // comeback — the dedicated chaos point targets exactly that moment.
    let at_min = core
        .cfg
        .autoscale
        .as_ref()
        .is_some_and(|a| serving_count(core) < a.min_shards);
    let injected = core
        .chaos
        .as_ref()
        .is_some_and(|c| c.fail_respawn() || (at_min && c.fail_respawn_at_min()));
    if injected {
        core.telemetry.counters(|c| c.respawn_failures += 1);
        st.failed_respawns += 1;
        let sleep = respawn_backoff(core, st.failed_respawns);
        st.respawn_at = Some(tick + ticks_for(core, sleep));
        return;
    }
    let fresh = Arc::new(Engine::new(core.cfg.engine.clone(), core.registry.clone()));
    *shard.engine.write().unwrap_or_else(PoisonError::into_inner) = Some(fresh);
    shard.generation.fetch_add(1, Ordering::Release);
    shard.respawns_used.fetch_add(1, Ordering::Relaxed);
    st.failed_respawns = 0;
    st.respawn_at = None;
    st.stall = 0;
    st.last_completed = 0;
    shard.breaker.store(BREAKER_HALF_OPEN, Ordering::Release);
    core.telemetry.counters(|c| {
        c.shard_respawns += 1;
        c.breaker_half_opens += 1;
    });
    // Elastic fleets: a scaling-event kill may have knocked this slot
    // out of the ring between join and death. Half-open shards take
    // primary traffic (that is how they prove themselves), so rejoin
    // here — idempotent, and a no-op move count when already a member.
    if core.cfg.autoscale.is_some() {
        let moved = edit_ring(core, |ring| ring.add_shard(i));
        core.telemetry.counters(|c| c.keys_rebalanced += moved);
    }
}

fn probe_shard(core: &RouterCore, i: usize, tick: u64, st: &mut ProbeState) {
    let shard = &core.shards[i];
    // Dormant slots have nothing to probe; scale-down victims belong to
    // the autoscaler's drain state machine (injecting a kill or a stall
    // replace mid-drain would race its retirement sequence).
    if shard.draining.load(Ordering::Acquire) {
        return;
    }
    let breaker = shard.breaker.load(Ordering::Acquire);
    if breaker == BREAKER_OPEN {
        if let Some(due) = st.respawn_at {
            if tick >= due {
                try_respawn(core, i, tick, st);
            }
        }
        return;
    }
    // Live shard (closed or half-open breaker).
    if core.chaos.as_ref().is_some_and(|c| c.kill_shard()) {
        core.telemetry.counters(|c| c.shard_kills += 1);
        kill_shard(core, i, tick, st);
        return;
    }
    let Some(engine) = engine_of(core, i) else {
        return;
    };
    if st.wedged_until.is_none() && core.chaos.as_ref().is_some_and(|c| c.wedge_shard()) {
        core.telemetry.counters(|c| c.shard_wedges += 1);
        engine.pause();
        st.wedged_until = Some(tick + ticks_for(core, core.cfg.shard_chaos_wedge()));
        st.wedged_gen = shard.generation.load(Ordering::Acquire);
    }
    if let Some(until) = st.wedged_until {
        if tick >= until {
            if shard.generation.load(Ordering::Acquire) == st.wedged_gen {
                engine.resume();
            }
            st.wedged_until = None;
        }
    }
    // An engine that reports Draining without the router asking for it
    // has died underneath us (e.g. its worker pool exhausted its restart
    // budget): replace it.
    if engine.health() == Health::Draining {
        kill_shard(core, i, tick, st);
        return;
    }
    // Wedge detection: queued work, no completions for stall_ticks
    // consecutive probes. This is the only probe that sees a paused (or
    // livelocked) engine — health() happily reports Healthy for one.
    let completed = engine.telemetry().counters(|c| c.completed);
    if engine.queue_depth() > 0 && completed == st.last_completed {
        st.stall += 1;
    } else {
        st.stall = 0;
    }
    st.last_completed = completed;
    if st.stall >= core.cfg.stall_ticks {
        core.telemetry.counters(|c| c.wedges_detected += 1);
        kill_shard(core, i, tick, st);
        return;
    }
    // Half-open probing: the respawned engine rejoins the ring only
    // after proving it can complete work.
    if breaker == BREAKER_HALF_OPEN && completed >= core.cfg.half_open_successes {
        shard.breaker.store(BREAKER_CLOSED, Ordering::Release);
        core.telemetry.counters(|c| c.breaker_closes += 1);
    }
}

// ---------------------------------------------------------------------------
// Autoscale execution
// ---------------------------------------------------------------------------

/// One in-flight scale-down.
struct DrainState {
    /// The retiring slot.
    slot: usize,
    /// Tick at which the drain is force-completed (in-flight work then
    /// reroutes through the shutdown hooks instead of finishing here).
    deadline_tick: u64,
}

/// Supervisor-side executor around the pure [`AutoscaleController`].
struct Autoscaler {
    ctl: AutoscaleController,
    drain: Option<DrainState>,
    /// `failed_deadline` at the previous tick; a positive delta
    /// saturates the pressure signal.
    last_deadline_misses: u64,
}

impl Autoscaler {
    fn new(cfg: AutoscaleConfig) -> Self {
        Self {
            ctl: AutoscaleController::new(cfg),
            drain: None,
            last_deadline_misses: 0,
        }
    }

    fn step(&mut self, core: &Arc<RouterCore>, tick: u64, st: &mut [ProbeState]) {
        if self.drain.is_some() {
            self.drive_drain(core, tick, st);
            return;
        }
        let pressure = self.pressure(core);
        let active = active_count(core);
        match self.ctl.observe(tick, pressure, active) {
            ScaleSignal::Hold => {}
            ScaleSignal::BlockedAtMax => {
                core.telemetry.counters(|c| c.autoscale_blocked_at_max += 1);
            }
            ScaleSignal::Up => self.scale_up(core, tick, st),
            ScaleSignal::Down => self.scale_down(core, tick),
        }
    }

    /// Mean router-queue fill over live (non-draining, engine-holding)
    /// slots, saturated to 1.0 whenever deadline misses were recorded
    /// since the previous tick — a missed deadline is the strongest
    /// "not enough capacity" signal the fleet produces.
    fn pressure(&mut self, core: &RouterCore) -> f64 {
        let misses = core.telemetry.counters(|c| c.failed_deadline);
        let missed_now = misses > self.last_deadline_misses;
        self.last_deadline_misses = misses;
        let (mut fill, mut n) = (0.0f64, 0usize);
        for s in core.shards.iter() {
            let live = s
                .engine
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .is_some()
                && !s.draining.load(Ordering::Acquire);
            if live {
                fill += s.queue.len() as f64 / core.cfg.shard_queue_capacity.max(1) as f64;
                n += 1;
            }
        }
        let mean = if n == 0 { 0.0 } else { fill / n as f64 };
        if missed_now {
            1.0
        } else {
            mean
        }
    }

    /// Spawns an engine into a dormant slot and joins it to the ring.
    /// The new shard is warm by construction: its workers draw collapsed
    /// kernels from the shared plan store and the GEMM autotuner cache
    /// is process-wide (plus file-seeded via `EngineConfig::tuner_path`).
    fn scale_up(&mut self, core: &Arc<RouterCore>, tick: u64, st: &mut [ProbeState]) {
        let Some(slot) = core.shards.iter().position(|s| {
            s.engine
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .is_none()
        }) else {
            return;
        };
        let shard = &core.shards[slot];
        let fresh = Arc::new(Engine::new(core.cfg.engine.clone(), core.registry.clone()));
        *shard.engine.write().unwrap_or_else(PoisonError::into_inner) = Some(fresh);
        shard.generation.fetch_add(1, Ordering::Release);
        st[slot] = ProbeState::new();
        // Half-open like a respawn: it takes traffic immediately but
        // only counts as fully healthy after proving completions.
        shard.breaker.store(BREAKER_HALF_OPEN, Ordering::Release);
        let moved = edit_ring(core, |ring| ring.add_shard(slot));
        core.telemetry.counters(|c| {
            c.scale_up_events += 1;
            c.keys_rebalanced += moved;
            c.breaker_half_opens += 1;
        });
        self.ctl.note_transition(tick);
        // Scaling-event chaos: the freshly joined shard dies at the
        // worst moment — right after keys moved onto it. The normal
        // kill/respawn machinery takes over from here.
        if core.chaos.as_ref().is_some_and(|c| c.kill_on_spawn()) {
            core.telemetry.counters(|c| c.shard_kills += 1);
            let moved = edit_ring(core, |ring| ring.remove_shard(slot));
            core.telemetry.counters(|c| c.keys_rebalanced += moved);
            kill_shard(core, slot, tick, &mut st[slot]);
        }
    }

    /// Starts draining the highest-indexed live slot: off the ring
    /// first (new keys route elsewhere — a bounded move), then the
    /// drain state machine watches its queues empty.
    fn scale_down(&mut self, core: &Arc<RouterCore>, tick: u64) {
        let Some(victim) = core
            .shards
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| {
                s.engine
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
                    && !s.draining.load(Ordering::Acquire)
                    && s.breaker.load(Ordering::Acquire) != BREAKER_OPEN
            })
            .map(|(i, _)| i)
        else {
            return;
        };
        let shard = &core.shards[victim];
        shard.draining.store(true, Ordering::Release);
        let moved = edit_ring(core, |ring| ring.remove_shard(victim));
        core.telemetry.counters(|c| c.keys_rebalanced += moved);
        // Scaling-event chaos: the victim wedges mid-drain. Nothing
        // un-pauses it — the drain grace must expire and force-retire,
        // rerouting whatever the wedge stranded.
        if core.chaos.as_ref().is_some_and(|c| c.wedge_on_drain()) {
            core.telemetry.counters(|c| c.shard_wedges += 1);
            if let Some(engine) = shard.engine() {
                engine.pause();
            }
        }
        let grace = self.ctl.config().drain_grace;
        self.drain = Some(DrainState {
            slot: victim,
            deadline_tick: tick + ticks_for(core, grace),
        });
    }

    /// Watches an in-flight drain; on quiescence (or the grace
    /// deadline) migrates pinned video sessions and retires the slot.
    fn drive_drain(&mut self, core: &Arc<RouterCore>, tick: u64, st: &mut [ProbeState]) {
        let Some(d) = &self.drain else { return };
        let (slot, deadline_tick) = (d.slot, d.deadline_tick);
        let shard = &core.shards[slot];
        let Some(engine) = shard.engine() else {
            // The engine vanished mid-drain (chaos kill raced the drain
            // start): nothing left to flush, just retire the slot.
            self.retire(core, tick, slot, st);
            return;
        };
        let quiescent = shard.queue.len() == 0 && engine.queue_depth() == 0;
        if !quiescent && tick < deadline_tick {
            return;
        }
        migrate_video_pins(core, slot, &engine);
        // Breaker open *before* the hard stop, exactly like kill_shard:
        // shutdown hooks then reroute any in-flight work off this slot.
        shard.breaker.store(BREAKER_OPEN, Ordering::Release);
        core.telemetry.counters(|c| c.breaker_opens += 1);
        engine.shutdown(Duration::ZERO);
        self.retire(core, tick, slot, st);
    }

    /// Final slot retirement: generation bump (stale video pins become
    /// typed `SessionLost`), engine slot cleared, probe state reset.
    fn retire(&mut self, core: &Arc<RouterCore>, tick: u64, slot: usize, st: &mut [ProbeState]) {
        let shard = &core.shards[slot];
        shard.generation.fetch_add(1, Ordering::Release);
        *shard.engine.write().unwrap_or_else(PoisonError::into_inner) = None;
        shard.breaker.store(BREAKER_OPEN, Ordering::Release);
        shard.draining.store(false, Ordering::Release);
        st[slot] = ProbeState::new();
        core.telemetry.counters(|c| c.scale_down_events += 1);
        self.drain = None;
        self.ctl.note_transition(tick);
    }
}

/// Applies one ring edit and returns how many sampled keys it moved.
fn edit_ring(core: &RouterCore, edit: impl FnOnce(&mut crate::autoscale::HashRing)) -> u64 {
    let mut ring = core.ring.write().unwrap_or_else(PoisonError::into_inner);
    let before = ring.clone();
    edit(&mut ring);
    before.sampled_moves(&ring, REBALANCE_SAMPLES)
}

/// Moves every video session pinned to the retiring `slot` onto a live
/// shard, state and all. A session that cannot move (no live target, or
/// a worker holds it mid-frame) keeps its stale pin so the retirement
/// generation bump surfaces it as a typed [`VideoError::SessionLost`] —
/// settled, never silently dead.
///
/// [`VideoError::SessionLost`]: crate::video::VideoError
fn migrate_video_pins(core: &Arc<RouterCore>, slot: usize, engine: &Arc<Engine>) {
    let gen_now = core.shards[slot].generation.load(Ordering::Acquire);
    let mut sessions = core
        .video_sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let pinned: Vec<u64> = sessions
        .iter()
        .filter(|(_, pin)| pin.shard == slot && pin.generation == gen_now)
        .map(|(&id, _)| id)
        .collect();
    for id in pinned {
        // Stable per-session target draw, excluding the retiring slot.
        let Some(target) = core.rendezvous(splitmix64(id), Some(slot)) else {
            continue;
        };
        let Some(target_engine) = core.shards[target].engine() else {
            continue;
        };
        let Some(pin) = sessions.get(&id) else {
            continue;
        };
        let Ok(state) = engine.export_video_session(pin.engine_session) else {
            continue;
        };
        match target_engine.import_video_session(state) {
            Ok(new_engine_session) => {
                if let Some(pin) = sessions.get_mut(&id) {
                    pin.shard = target;
                    pin.generation = core.shards[target].generation.load(Ordering::Acquire);
                    pin.engine_session = new_engine_session;
                }
            }
            Err(_) => {
                // Exported but not importable (target drained in the
                // same instant): the state is gone; the stale pin makes
                // the loss typed at next touch.
            }
        }
    }
}
