//! Per-stage latency histograms, throughput and rejection counters.
//!
//! Every request that moves through the engine is timed at four stages —
//! queue wait, batch assembly, compute, reassembly — plus end-to-end
//! total. Latencies land in log-scale histograms (8 sub-buckets per
//! power of two, ≤ 12.5% relative quantile error, fixed 512-slot
//! footprint, no allocation on the record path beyond the initial
//! vector), from which p50/p95/p99 are read out. Counters track
//! submissions, completions, and each distinct rejection reason, so a
//! load run can show its backpressure behavior, not just its happy path.

use crate::json::{array, JsonObject};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Pipeline stages measured per request (or per batch where noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Submit → dequeue by a worker.
    QueueWait,
    /// Grouping and stacking same-shape requests into one NCHW batch
    /// (recorded per batch).
    BatchAssembly,
    /// Forward pass (recorded per batch / per tiled request).
    Compute,
    /// Splitting batched output / pasting tile interiors and fulfilling
    /// tickets (recorded per batch / per tiled request).
    Reassembly,
    /// Submit → response fulfilled (per request).
    Total,
}

/// All stages, in display order.
pub const STAGES: [Stage; 5] = [
    Stage::QueueWait,
    Stage::BatchAssembly,
    Stage::Compute,
    Stage::Reassembly,
    Stage::Total,
];

impl Stage {
    /// Snake-case stage name used in JSON exports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Compute => "compute",
            Stage::Reassembly => "reassembly",
            Stage::Total => "total",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::QueueWait => 0,
            Stage::BatchAssembly => 1,
            Stage::Compute => 2,
            Stage::Reassembly => 3,
            Stage::Total => 4,
        }
    }
}

const SUB_BITS: u32 = 3; // 8 sub-buckets per octave
const BUCKETS: usize = 512;

fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = ((v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    let idx = ((exp - SUB_BITS + 1) as usize) << SUB_BITS;
    (idx + sub).min(BUCKETS - 1)
}

fn bucket_upper(idx: usize) -> u64 {
    if idx < (1 << SUB_BITS) {
        return idx as u64;
    }
    let exp = (idx >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (idx & ((1 << SUB_BITS) - 1)) as u64;
    (1u64 << exp) + (sub + 1) * (1u64 << (exp - SUB_BITS)) - 1
}

/// Log-scale latency histogram over nanoseconds.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        self.record_ns(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.total_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_ns as f64 / self.count as f64 / 1e6
    }

    /// Maximum recorded latency in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_ns as f64 / 1e6
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds, as the upper bound
    /// of the bucket holding that rank (≤ 12.5% overestimate). Returns 0
    /// for an empty histogram.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The top bucket is open-ended; report the true max there.
                let ub = bucket_upper(i).min(self.max_ns);
                return ub as f64 / 1e6;
            }
        }
        self.max_ms()
    }
}

/// Monotonic event counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fulfilled with an output image.
    pub completed: u64,
    /// Requests rejected at submit because the queue was at capacity.
    pub rejected_queue_full: u64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub rejected_deadline: u64,
    /// Requests rejected because the engine was shutting down.
    pub rejected_shutdown: u64,
    /// Requests rejected at submit by input boundary validation
    /// (NaN/Inf values, zero dimensions, wrong rank).
    pub rejected_invalid: u64,
    /// Requests rejected at submit because the engine was draining.
    pub rejected_draining: u64,
    /// Requests failed because their model could not be loaded.
    pub model_load_failures: u64,
    /// Forward-pass panics caught (batched path: the worker dies and is
    /// respawned; tiled path: contained in the tile pool).
    pub worker_crashes: u64,
    /// Workers respawned by the supervisor after a crash.
    pub worker_restarts: u64,
    /// Requests re-enqueued after a retryable failure (worker crash or
    /// transient model-load failure).
    pub requests_retried: u64,
    /// Requests terminally failed after exhausting their retry budget on
    /// crashes — the poison-pill quarantine path.
    pub requests_quarantined: u64,
    /// Requests still queued when a shutdown deadline expired, answered
    /// with `ShuttingDown` instead of being run.
    pub dropped_in_drain: u64,
    /// Total chaos faults injected (sum of the four per-point counters).
    pub faults_injected: u64,
    /// Injected panic-in-forward faults.
    pub faults_panic: u64,
    /// Injected slow-model faults.
    pub faults_slow: u64,
    /// Injected registry-load faults.
    pub faults_load: u64,
    /// Injected clock-skew faults.
    pub faults_skew: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests executed inside micro-batches (avg batch = this/batches).
    pub batched_requests: u64,
    /// Largest micro-batch executed.
    pub max_batch: u64,
    /// Requests routed through the tiled path.
    pub tiled_requests: u64,
    /// Individual tiles executed by the tiled path.
    pub tiles_run: u64,
    /// Requests served from an already-compiled inference plan (per-worker
    /// plan cache hit on `(model, shape)`).
    pub plan_cache_hits: u64,
    /// Requests that had to compile a fresh inference plan (cache miss or
    /// eviction).
    pub plan_cache_misses: u64,
    /// Largest plan buffer arena used by any single request, in bytes
    /// (max semantics, not a sum).
    pub peak_arena_bytes: u64,
    /// Int8 plans brought into service (fresh quantized plan or tile
    /// planner compilations under an in-budget precision decision).
    /// Cumulative, so a value > 0 proves the engine actually served
    /// int8 rather than silently falling back.
    pub int8_plans_active: u64,
    /// Plan-cache hits served by an int8 plan (subset of
    /// `plan_cache_hits`).
    pub int8_plan_cache_hits: u64,
    /// Models graded under an `Int8` policy whose measured ΔPSNR
    /// exceeded the budget, falling back to f32. Counted once per fresh
    /// grading, not per request.
    pub precision_fallbacks: u64,
    /// Video sessions opened.
    pub video_sessions_opened: u64,
    /// Video sessions closed.
    pub video_sessions_closed: u64,
    /// Video frames accepted into sessions.
    pub video_frames_in: u64,
    /// Video frames settled with a composited output.
    pub video_frames_completed: u64,
    /// Duplicate frame submissions settled idempotently from the cached
    /// output (no recompute).
    pub video_frames_duplicate: u64,
    /// Tiles skipped because their halo-expanded input was unchanged —
    /// cached HR output blitted back verbatim.
    pub video_tiles_skipped: u64,
    /// Dirty tiles recomputed through the model ladder.
    pub video_tiles_recomputed: u64,
    /// Dirty tiles run below the ladder's top rung (by difficulty or
    /// deadline pressure) — the any-time degradation count.
    pub video_tiles_degraded: u64,
    /// Ladder histogram: tiles computed at rung 0 (cheapest model).
    pub video_rung_0: u64,
    /// Tiles computed at rung 1.
    pub video_rung_1: u64,
    /// Tiles computed at rung 2.
    pub video_rung_2: u64,
    /// Tiles computed at rung 3 and above (clamped into this bucket).
    pub video_rung_3: u64,
    /// Frames whose processing finished after their deadline.
    pub video_deadline_misses: u64,
}

impl Counters {
    /// Bumps one ladder-rung bucket (rungs past 3 clamp into the last).
    pub fn bump_video_rung(&mut self, rung: usize) {
        match rung {
            0 => self.video_rung_0 += 1,
            1 => self.video_rung_1 += 1,
            2 => self.video_rung_2 += 1,
            _ => self.video_rung_3 += 1,
        }
    }
}

struct Inner {
    stages: [Histogram; 5],
    counters: Counters,
    started: Instant,
}

/// Thread-safe telemetry hub shared by the engine's workers.
pub struct Telemetry {
    inner: Mutex<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    /// Fresh telemetry with the epoch set to now.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                stages: [
                    Histogram::new(),
                    Histogram::new(),
                    Histogram::new(),
                    Histogram::new(),
                    Histogram::new(),
                ],
                counters: Counters::default(),
                started: Instant::now(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records a latency sample for one stage.
    pub fn record(&self, stage: Stage, d: Duration) {
        self.lock().stages[stage.index()].record(d);
    }

    /// Applies a mutation to the counters (e.g. bump a rejection reason).
    pub fn counters<R>(&self, f: impl FnOnce(&mut Counters) -> R) -> R {
        f(&mut self.lock().counters)
    }

    /// Records one completed request: bumps `completed` *and* the `Total`
    /// histogram under a single lock acquisition, so a concurrent
    /// [`Telemetry::snapshot`] can never observe one without the other
    /// (a torn snapshot would make `completed` and the total-stage count
    /// disagree mid-drain).
    pub fn complete(&self, total: Duration) {
        let mut g = self.lock();
        g.counters.completed += 1;
        g.stages[Stage::Total.index()].record(total);
    }

    /// A point-in-time copy of every stage histogram and counter, plus
    /// the process-global kernel state (active SIMD variant, tuned GEMM
    /// shape count) so a telemetry dump records which arithmetic served
    /// the traffic.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.lock();
        Snapshot {
            stages: STAGES
                .iter()
                .map(|s| (s.name(), StageSummary::of(&g.stages[s.index()])))
                .collect(),
            counters: g.counters,
            elapsed_ms: g.started.elapsed().as_secs_f64() * 1e3,
            kernel_variant: sesr_tensor::simd::kernel_variant().name(),
            gemm_shapes_tuned: sesr_tensor::autotune::cached_gemm_choices() as u64,
        }
    }
}

/// Latency summary of one stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// Median latency (ms).
    pub p50_ms: f64,
    /// 95th percentile (ms).
    pub p95_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Maximum (ms).
    pub max_ms: f64,
}

impl StageSummary {
    fn of(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            mean_ms: h.mean_ms(),
            p50_ms: h.quantile_ms(0.50),
            p95_ms: h.quantile_ms(0.95),
            p99_ms: h.quantile_ms(0.99),
            max_ms: h.max_ms(),
        }
    }

    fn to_json(self, name: &str) -> String {
        JsonObject::new()
            .str("stage", name)
            .int("count", self.count)
            .num("mean_ms", self.mean_ms)
            .num("p50_ms", self.p50_ms)
            .num("p95_ms", self.p95_ms)
            .num("p99_ms", self.p99_ms)
            .num("max_ms", self.max_ms)
            .finish()
    }
}

/// A point-in-time view of the engine's telemetry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// `(stage name, summary)` in pipeline order.
    pub stages: Vec<(&'static str, StageSummary)>,
    /// Counter values at snapshot time.
    pub counters: Counters,
    /// Milliseconds since the telemetry epoch.
    pub elapsed_ms: f64,
    /// Name of the process-global microkernel variant that compute ran
    /// on ([`sesr_tensor::simd::kernel_variant`]); serve pins one
    /// variant process-wide (Detect policy), so a single field suffices.
    pub kernel_variant: &'static str,
    /// Distinct GEMM shapes with a cached autotuned blocking choice
    /// ([`sesr_tensor::autotune::cached_gemm_choices`]).
    pub gemm_shapes_tuned: u64,
}

impl Snapshot {
    /// Completed requests per second since the epoch.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_ms <= 0.0 {
            return 0.0;
        }
        self.counters.completed as f64 / (self.elapsed_ms / 1e3)
    }

    /// Serializes the snapshot as a JSON object.
    pub fn to_json(&self) -> String {
        let c = self.counters;
        let counters = JsonObject::new()
            .int("submitted", c.submitted)
            .int("completed", c.completed)
            .int("rejected_queue_full", c.rejected_queue_full)
            .int("rejected_deadline", c.rejected_deadline)
            .int("rejected_shutdown", c.rejected_shutdown)
            .int("rejected_invalid", c.rejected_invalid)
            .int("rejected_draining", c.rejected_draining)
            .int("model_load_failures", c.model_load_failures)
            .int("worker_crashes", c.worker_crashes)
            .int("worker_restarts", c.worker_restarts)
            .int("requests_retried", c.requests_retried)
            .int("requests_quarantined", c.requests_quarantined)
            .int("dropped_in_drain", c.dropped_in_drain)
            .int("faults_injected", c.faults_injected)
            .int("faults_panic", c.faults_panic)
            .int("faults_slow", c.faults_slow)
            .int("faults_load", c.faults_load)
            .int("faults_skew", c.faults_skew)
            .int("batches", c.batches)
            .int("batched_requests", c.batched_requests)
            .int("max_batch", c.max_batch)
            .int("tiled_requests", c.tiled_requests)
            .int("tiles_run", c.tiles_run)
            .int("plan_cache_hits", c.plan_cache_hits)
            .int("plan_cache_misses", c.plan_cache_misses)
            .int("peak_arena_bytes", c.peak_arena_bytes)
            .int("int8_plans_active", c.int8_plans_active)
            .int("int8_plan_cache_hits", c.int8_plan_cache_hits)
            .int("precision_fallbacks", c.precision_fallbacks)
            .int("video_sessions_opened", c.video_sessions_opened)
            .int("video_sessions_closed", c.video_sessions_closed)
            .int("video_frames_in", c.video_frames_in)
            .int("video_frames_completed", c.video_frames_completed)
            .int("video_frames_duplicate", c.video_frames_duplicate)
            .int("video_tiles_skipped", c.video_tiles_skipped)
            .int("video_tiles_recomputed", c.video_tiles_recomputed)
            .int("video_tiles_degraded", c.video_tiles_degraded)
            .int("video_rung_0", c.video_rung_0)
            .int("video_rung_1", c.video_rung_1)
            .int("video_rung_2", c.video_rung_2)
            .int("video_rung_3", c.video_rung_3)
            .int("video_deadline_misses", c.video_deadline_misses)
            .finish();
        JsonObject::new()
            .num("elapsed_ms", self.elapsed_ms)
            .num("throughput_rps", self.throughput_rps())
            .str("kernel_variant", self.kernel_variant)
            .int("gemm_shapes_tuned", self.gemm_shapes_tuned)
            .raw(
                "stages",
                &array(self.stages.iter().map(|(n, s)| s.to_json(n))),
            )
            .raw("counters", &counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_monotonic_and_tight() {
        let mut prev = 0;
        for v in [0u64, 1, 7, 8, 9, 100, 1_000, 65_535, 1 << 30, u64::MAX / 2] {
            let idx = bucket_index(v);
            assert!(idx >= prev || v < 8, "indices must not decrease");
            prev = idx;
            let ub = bucket_upper(idx);
            assert!(ub >= v, "upper bound {ub} must cover {v}");
            // ≤ 12.5% relative error beyond the exact range.
            if v >= 8 && idx < BUCKETS - 1 {
                assert!((ub - v) as f64 <= v as f64 / 8.0 + 1.0, "v={v} ub={ub}");
            }
        }
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for ms in 1..=1000u64 {
            h.record_ns(ms * 1_000_000);
        }
        let p50 = h.quantile_ms(0.5);
        let p99 = h.quantile_ms(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50={p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99={p99}");
        assert!(p50 <= p99);
        assert_eq!(h.count(), 1000);
        assert!((h.mean_ms() - 500.5).abs() < 0.01);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
        assert_eq!(h.max_ms(), 0.0);
    }

    #[test]
    fn concurrent_snapshots_are_never_torn() {
        // A writer settles requests through the single-lock `complete`
        // path while a reader snapshots continuously: in every snapshot
        // the `completed` counter and the total-stage sample count must
        // agree exactly — the satellite guarantee that drain-time
        // snapshots are internally consistent.
        let t = std::sync::Arc::new(Telemetry::new());
        let writer = {
            let t = std::sync::Arc::clone(&t);
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    t.complete(Duration::from_nanos(i));
                }
            })
        };
        let total_count = |s: &Snapshot| {
            s.stages
                .iter()
                .find(|(n, _)| *n == "total")
                .map(|(_, st)| st.count)
                .unwrap()
        };
        while !writer.is_finished() {
            let s = t.snapshot();
            assert_eq!(
                s.counters.completed,
                total_count(&s),
                "torn snapshot: completed != total-stage count"
            );
        }
        writer.join().unwrap();
        let s = t.snapshot();
        assert_eq!(s.counters.completed, 20_000);
        assert_eq!(total_count(&s), 20_000);
    }

    #[test]
    fn snapshot_serializes_to_valid_json() {
        let t = Telemetry::new();
        t.record(Stage::Compute, Duration::from_millis(3));
        t.record(Stage::Total, Duration::from_millis(5));
        t.counters(|c| {
            c.submitted = 2;
            c.completed = 1;
            c.rejected_queue_full = 1;
            c.plan_cache_hits = 3;
            c.plan_cache_misses = 1;
            c.peak_arena_bytes = 4096;
            c.int8_plans_active = 2;
            c.int8_plan_cache_hits = 1;
            c.precision_fallbacks = 1;
        });
        let snap = t.snapshot();
        let json = snap.to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"queue_wait\""));
        assert!(json.contains("\"p99_ms\""));
        // The active microkernel variant is serialized by its stable name.
        let variant = sesr_tensor::simd::kernel_variant().name();
        assert!(json.contains(&format!("\"kernel_variant\":\"{variant}\"")));
        assert!(json.contains("\"gemm_shapes_tuned\""));
        assert!(json.contains("\"rejected_queue_full\":1"));
        for fault_counter in [
            "\"worker_restarts\":0",
            "\"requests_retried\":0",
            "\"faults_injected\":0",
            "\"rejected_draining\":0",
        ] {
            assert!(json.contains(fault_counter), "missing {fault_counter}");
        }
        for plan_counter in [
            "\"plan_cache_hits\":3",
            "\"plan_cache_misses\":1",
            "\"peak_arena_bytes\":4096",
            "\"int8_plans_active\":2",
            "\"int8_plan_cache_hits\":1",
            "\"precision_fallbacks\":1",
        ] {
            assert!(json.contains(plan_counter), "missing {plan_counter}");
        }
    }

    #[test]
    fn video_counters_round_trip_through_json() {
        let t = Telemetry::new();
        t.counters(|c| {
            c.video_sessions_opened = 2;
            c.video_sessions_closed = 1;
            c.video_frames_in = 30;
            c.video_frames_completed = 29;
            c.video_frames_duplicate = 3;
            c.video_tiles_skipped = 500;
            c.video_tiles_recomputed = 77;
            c.video_tiles_degraded = 12;
            c.bump_video_rung(0);
            c.bump_video_rung(1);
            c.bump_video_rung(1);
            c.bump_video_rung(3);
            c.bump_video_rung(9); // clamps into the last bucket
            c.video_deadline_misses = 1;
        });
        let json = t.snapshot().to_json();
        crate::json::validate(&json).unwrap();
        let v = crate::json::JsonValue::parse(&json).unwrap();
        let counter = |name: &str| {
            v.get(&["counters", name])
                .and_then(crate::json::JsonValue::as_f64)
                .unwrap_or(-1.0)
        };
        assert_eq!(counter("video_sessions_opened"), 2.0);
        assert_eq!(counter("video_sessions_closed"), 1.0);
        assert_eq!(counter("video_frames_in"), 30.0);
        assert_eq!(counter("video_frames_completed"), 29.0);
        assert_eq!(counter("video_frames_duplicate"), 3.0);
        assert_eq!(counter("video_tiles_skipped"), 500.0);
        assert_eq!(counter("video_tiles_recomputed"), 77.0);
        assert_eq!(counter("video_tiles_degraded"), 12.0);
        assert_eq!(counter("video_rung_0"), 1.0);
        assert_eq!(counter("video_rung_1"), 2.0);
        assert_eq!(counter("video_rung_2"), 0.0);
        assert_eq!(counter("video_rung_3"), 2.0);
        assert_eq!(counter("video_deadline_misses"), 1.0);
    }
}
