//! Deterministic, seed-driven fault injection for the serving engine.
//!
//! Chaos engineering for an in-process engine: the fault points a real
//! deployment fears — a panicking forward pass, a model that suddenly
//! runs slow, a registry artifact that fails to load, a skewed clock
//! making deadlines fire early — are threaded through the engine behind
//! an optional [`ChaosConfig`]. Every *decision* is a pure function of
//! `(seed, fault point, per-point decision index)`, so a given seed
//! yields the same fault pattern for the same sequence of decisions,
//! independent of wall-clock time. Thread scheduling can interleave
//! which request draws which index, but the *set* of indices drawn (and
//! therefore the number of injected faults after N decisions) is fixed —
//! which is what the soak test's reconciliation arithmetic needs.
//!
//! The engine, not this module, performs the effects (panicking,
//! sleeping, failing a load) and counts each injection into telemetry,
//! so `faults_injected` can be reconciled against observed restarts,
//! retries, and rejections.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Rates (per mille) and magnitudes for each fault point. All rates
/// default to 0, so a default config injects nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Per-mille probability that a forward pass panics.
    pub panic_per_mille: u32,
    /// Per-mille probability that a forward pass is slowed by `slow`.
    pub slow_per_mille: u32,
    /// Per-mille probability that a registry load fails transiently.
    pub load_fail_per_mille: u32,
    /// Per-mille probability that a batch's deadline check runs with the
    /// clock skewed forward by `skew` (deadlines fire early).
    pub skew_per_mille: u32,
    /// Injected compute delay for slow-model faults.
    pub slow: Duration,
    /// Injected clock skew for skewed-deadline faults.
    pub skew: Duration,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            panic_per_mille: 0,
            slow_per_mille: 0,
            load_fail_per_mille: 0,
            skew_per_mille: 0,
            slow: Duration::from_millis(2),
            skew: Duration::from_millis(50),
        }
    }
}

/// The four fault points threaded through the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The forward pass (batched or tiled) panics.
    PanicInForward,
    /// The forward pass is artificially delayed.
    SlowModel,
    /// The registry reports a transient load failure.
    RegistryLoad,
    /// The deadline check observes a clock skewed forward.
    ClockSkew,
}

impl FaultPoint {
    fn index(self) -> usize {
        match self {
            FaultPoint::PanicInForward => 0,
            FaultPoint::SlowModel => 1,
            FaultPoint::RegistryLoad => 2,
            FaultPoint::ClockSkew => 3,
        }
    }

    fn salt(self) -> u64 {
        // Arbitrary distinct constants so the four decision streams are
        // independent even though they share one seed.
        [
            0x9E37_79B9_7F4A_7C15,
            0xD1B5_4A32_D192_ED03,
            0x8CB9_2BA7_2F3D_8DD7,
            0xA24B_AED4_963E_E407,
        ][self.index()]
    }
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Runtime state of the injector: the config plus one decision counter
/// per fault point.
pub struct Chaos {
    cfg: ChaosConfig,
    draws: [AtomicU64; 4],
}

impl Chaos {
    /// An injector over `cfg`.
    pub fn new(cfg: ChaosConfig) -> Self {
        Self {
            cfg,
            draws: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Draws the next decision for `point`: true means "inject".
    fn draw(&self, point: FaultPoint, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        let i = self.draws[point.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.cfg.seed ^ point.salt() ^ i.wrapping_mul(0x2545_F491_4F6C_DD1D));
        (h % 1000) < u64::from(per_mille.min(1000))
    }

    /// Should this forward pass panic?
    pub fn panic_in_forward(&self) -> bool {
        self.draw(FaultPoint::PanicInForward, self.cfg.panic_per_mille)
    }

    /// Delay to inject into this forward pass, if any.
    pub fn slow_model(&self) -> Option<Duration> {
        self.draw(FaultPoint::SlowModel, self.cfg.slow_per_mille)
            .then_some(self.cfg.slow)
    }

    /// Should this registry load fail transiently?
    pub fn fail_registry_load(&self) -> bool {
        self.draw(FaultPoint::RegistryLoad, self.cfg.load_fail_per_mille)
    }

    /// Clock skew to apply to this batch's deadline check, if any.
    pub fn deadline_skew(&self) -> Option<Duration> {
        self.draw(FaultPoint::ClockSkew, self.cfg.skew_per_mille)
            .then_some(self.cfg.skew)
    }

    /// Decisions drawn so far per fault point (panic, slow, load, skew).
    pub fn draws(&self) -> [u64; 4] {
        [
            self.draws[0].load(Ordering::Relaxed),
            self.draws[1].load(Ordering::Relaxed),
            self.draws[2].load(Ordering::Relaxed),
            self.draws[3].load(Ordering::Relaxed),
        ]
    }
}

/// Shard-level fault points driven by the router's supervisor tick.
///
/// These model whole-process failures rather than per-request ones: a
/// shard that dies outright, a shard that wedges (stops consuming while
/// staying alive), and a respawn attempt that itself fails — the three
/// ways a fleet member disappoints a load balancer — plus their
/// scaling-transition variants (killed right after scale-up, wedged
/// mid-drain, respawn failure with the fleet already at minimum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFaultPoint {
    /// The shard's engine is killed outright (hard crash).
    Kill,
    /// The shard stops consuming its queue but stays alive.
    Wedge,
    /// A scheduled respawn of a dead shard fails.
    RespawnFail,
    /// A freshly scaled-up shard is killed right after joining the ring
    /// (the worst moment: keys just moved to it).
    SpawnKill,
    /// A shard wedges mid-drain during scale-down (the drain grace
    /// period must expire and reroute, not hang the controller).
    DrainWedge,
    /// A respawn fails while the fleet sits at minimum capacity (no
    /// slack shard to absorb the loss).
    MinRespawnFail,
}

impl ShardFaultPoint {
    fn index(self) -> usize {
        match self {
            ShardFaultPoint::Kill => 0,
            ShardFaultPoint::Wedge => 1,
            ShardFaultPoint::RespawnFail => 2,
            ShardFaultPoint::SpawnKill => 3,
            ShardFaultPoint::DrainWedge => 4,
            ShardFaultPoint::MinRespawnFail => 5,
        }
    }

    fn salt(self) -> u64 {
        [
            0xC1A0_5F1E_E7B4_D001,
            0xC1A0_5F1E_E7B4_D002,
            0xC1A0_5F1E_E7B4_D003,
            0xC1A0_5F1E_E7B4_D004,
            0xC1A0_5F1E_E7B4_D005,
            0xC1A0_5F1E_E7B4_D006,
        ][self.index()]
    }
}

/// Rates (per mille, drawn once per shard per supervisor tick) and caps
/// for shard-level fault injection. All rates default to 0.
///
/// The caps bound the *total* number of injections per fault point over
/// the run, so a soak can demand "exactly one whole-shard kill" without
/// the fleet degenerating into permanent chaos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardChaosConfig {
    /// Seed for the deterministic decision stream (independent of any
    /// engine-level [`ChaosConfig`] seed).
    pub seed: u64,
    /// Per-mille probability (per shard-tick) that a live shard is killed.
    pub kill_per_mille: u32,
    /// Per-mille probability (per shard-tick) that a live shard wedges.
    pub wedge_per_mille: u32,
    /// Per-mille probability that a due respawn attempt fails.
    pub respawn_fail_per_mille: u32,
    /// Per-mille probability that a freshly scaled-up shard is killed
    /// right after joining the ring.
    pub spawn_kill_per_mille: u32,
    /// Per-mille probability that a shard draining for scale-down wedges.
    pub drain_wedge_per_mille: u32,
    /// Per-mille probability that a due respawn fails while the fleet is
    /// at minimum capacity.
    pub min_respawn_fail_per_mille: u32,
    /// Most kills to inject over the whole run.
    pub max_kills: u64,
    /// Most wedges to inject over the whole run.
    pub max_wedges: u64,
    /// Most respawn failures to inject over the whole run.
    pub max_respawn_fails: u64,
    /// Most scale-up kills to inject over the whole run.
    pub max_spawn_kills: u64,
    /// Most drain wedges to inject over the whole run.
    pub max_drain_wedges: u64,
    /// Most at-minimum respawn failures to inject over the whole run.
    pub max_min_respawn_fails: u64,
    /// How long a wedged shard stays paused if the supervisor's stall
    /// detector does not replace it first.
    pub wedge: Duration,
}

impl Default for ShardChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            kill_per_mille: 0,
            wedge_per_mille: 0,
            respawn_fail_per_mille: 0,
            spawn_kill_per_mille: 0,
            drain_wedge_per_mille: 0,
            min_respawn_fail_per_mille: 0,
            max_kills: u64::MAX,
            max_wedges: u64::MAX,
            max_respawn_fails: u64::MAX,
            max_spawn_kills: u64::MAX,
            max_drain_wedges: u64::MAX,
            max_min_respawn_fails: u64::MAX,
            wedge: Duration::from_millis(200),
        }
    }
}

/// Runtime state of the shard-fault injector: per-point decision
/// counters plus per-point injection tallies (for the caps).
pub struct ShardChaos {
    cfg: ShardChaosConfig,
    draws: [AtomicU64; 6],
    fired: [AtomicU64; 6],
}

impl ShardChaos {
    /// An injector over `cfg`.
    pub fn new(cfg: ShardChaosConfig) -> Self {
        Self {
            cfg,
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &ShardChaosConfig {
        &self.cfg
    }

    fn draw(&self, point: ShardFaultPoint, per_mille: u32, cap: u64) -> bool {
        if per_mille == 0 {
            return false;
        }
        let i = self.draws[point.index()].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(self.cfg.seed ^ point.salt() ^ i.wrapping_mul(0x2545_F491_4F6C_DD1D));
        if (h % 1000) >= u64::from(per_mille.min(1000)) {
            return false;
        }
        // The decision fired; honor the cap by un-counting overflow.
        if self.fired[point.index()].fetch_add(1, Ordering::Relaxed) >= cap {
            self.fired[point.index()].fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Should this live shard be killed now?
    pub fn kill_shard(&self) -> bool {
        self.draw(
            ShardFaultPoint::Kill,
            self.cfg.kill_per_mille,
            self.cfg.max_kills,
        )
    }

    /// Should this live shard wedge now?
    pub fn wedge_shard(&self) -> bool {
        self.draw(
            ShardFaultPoint::Wedge,
            self.cfg.wedge_per_mille,
            self.cfg.max_wedges,
        )
    }

    /// Should this due respawn attempt fail?
    pub fn fail_respawn(&self) -> bool {
        self.draw(
            ShardFaultPoint::RespawnFail,
            self.cfg.respawn_fail_per_mille,
            self.cfg.max_respawn_fails,
        )
    }

    /// Should this freshly scaled-up shard be killed as it joins?
    pub fn kill_on_spawn(&self) -> bool {
        self.draw(
            ShardFaultPoint::SpawnKill,
            self.cfg.spawn_kill_per_mille,
            self.cfg.max_spawn_kills,
        )
    }

    /// Should this draining shard wedge mid-drain?
    pub fn wedge_on_drain(&self) -> bool {
        self.draw(
            ShardFaultPoint::DrainWedge,
            self.cfg.drain_wedge_per_mille,
            self.cfg.max_drain_wedges,
        )
    }

    /// Should this respawn fail given the fleet is at minimum capacity?
    pub fn fail_respawn_at_min(&self) -> bool {
        self.draw(
            ShardFaultPoint::MinRespawnFail,
            self.cfg.min_respawn_fail_per_mille,
            self.cfg.max_min_respawn_fails,
        )
    }

    /// Injections so far per fault point (kill, wedge, respawn-fail,
    /// spawn-kill, drain-wedge, min-respawn-fail).
    pub fn fired(&self) -> [u64; 6] {
        std::array::from_fn(|i| self.fired[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_on(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            panic_per_mille: 100,
            slow_per_mille: 100,
            load_fail_per_mille: 100,
            skew_per_mille: 100,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn default_config_injects_nothing() {
        let c = Chaos::new(ChaosConfig::default());
        for _ in 0..100 {
            assert!(!c.panic_in_forward());
            assert!(c.slow_model().is_none());
            assert!(!c.fail_registry_load());
            assert!(c.deadline_skew().is_none());
        }
        // Disabled points must not even consume decision indices.
        assert_eq!(c.draws(), [0, 0, 0, 0]);
    }

    #[test]
    fn same_seed_same_decision_sequence() {
        let a = Chaos::new(all_on(7));
        let b = Chaos::new(all_on(7));
        for _ in 0..500 {
            assert_eq!(a.panic_in_forward(), b.panic_in_forward());
            assert_eq!(a.fail_registry_load(), b.fail_registry_load());
            assert_eq!(a.slow_model(), b.slow_model());
            assert_eq!(a.deadline_skew(), b.deadline_skew());
        }
    }

    #[test]
    fn rate_is_respected_within_tolerance() {
        let c = Chaos::new(ChaosConfig {
            seed: 3,
            panic_per_mille: 100,
            ..ChaosConfig::default()
        });
        let hits = (0..10_000).filter(|_| c.panic_in_forward()).count();
        // 10% ± 3% absolute over 10k draws.
        assert!((700..=1300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn per_mille_1000_always_fires() {
        let c = Chaos::new(ChaosConfig {
            seed: 1,
            panic_per_mille: 1000,
            ..ChaosConfig::default()
        });
        assert!((0..64).all(|_| c.panic_in_forward()));
    }

    #[test]
    fn fault_points_have_independent_streams() {
        let c = Chaos::new(all_on(11));
        let panics: Vec<bool> = (0..200).map(|_| c.panic_in_forward()).collect();
        let loads: Vec<bool> = (0..200).map(|_| c.fail_registry_load()).collect();
        assert_ne!(panics, loads, "streams must differ under one seed");
    }

    #[test]
    fn shard_chaos_is_deterministic_and_capped() {
        let cfg = ShardChaosConfig {
            seed: 42,
            kill_per_mille: 500,
            wedge_per_mille: 500,
            respawn_fail_per_mille: 1000,
            max_kills: 2,
            max_wedges: 1,
            max_respawn_fails: 3,
            ..ShardChaosConfig::default()
        };
        let a = ShardChaos::new(cfg.clone());
        let b = ShardChaos::new(cfg);
        let seq_a: Vec<(bool, bool, bool)> = (0..100)
            .map(|_| (a.kill_shard(), a.wedge_shard(), a.fail_respawn()))
            .collect();
        let seq_b: Vec<(bool, bool, bool)> = (0..100)
            .map(|_| (b.kill_shard(), b.wedge_shard(), b.fail_respawn()))
            .collect();
        assert_eq!(seq_a, seq_b, "same seed must give the same schedule");
        assert_eq!(a.fired(), [2, 1, 3, 0, 0, 0], "caps must bound injections");
    }

    #[test]
    fn shard_chaos_zero_rates_inject_nothing() {
        let c = ShardChaos::new(ShardChaosConfig::default());
        for _ in 0..50 {
            assert!(!c.kill_shard());
            assert!(!c.wedge_shard());
            assert!(!c.fail_respawn());
            assert!(!c.kill_on_spawn());
            assert!(!c.wedge_on_drain());
            assert!(!c.fail_respawn_at_min());
        }
        assert_eq!(c.fired(), [0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn scaling_fault_points_are_deterministic_capped_and_independent() {
        let cfg = ShardChaosConfig {
            seed: 77,
            spawn_kill_per_mille: 600,
            drain_wedge_per_mille: 600,
            min_respawn_fail_per_mille: 1000,
            max_spawn_kills: 1,
            max_drain_wedges: 2,
            max_min_respawn_fails: 1,
            ..ShardChaosConfig::default()
        };
        let a = ShardChaos::new(cfg.clone());
        let b = ShardChaos::new(cfg);
        let seq_a: Vec<_> = (0..100)
            .map(|_| {
                (
                    a.kill_on_spawn(),
                    a.wedge_on_drain(),
                    a.fail_respawn_at_min(),
                )
            })
            .collect();
        let seq_b: Vec<_> = (0..100)
            .map(|_| {
                (
                    b.kill_on_spawn(),
                    b.wedge_on_drain(),
                    b.fail_respawn_at_min(),
                )
            })
            .collect();
        assert_eq!(seq_a, seq_b, "same seed must give the same schedule");
        assert_eq!(a.fired(), [0, 0, 0, 1, 2, 1]);
        // The legacy points share the injector but kept their own streams.
        assert!(!a.kill_shard(), "zero-rate legacy point stays silent");
    }
}
