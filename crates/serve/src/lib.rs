//! `sesr-serve` — an in-process, multi-threaded batched inference engine
//! for collapsed SESR models.
//!
//! The training-time story of this workspace ends with
//! [`CollapsedSesr`](sesr_core::CollapsedSesr): a short stack of plain
//! convolutions cheap enough to run anywhere. This crate answers the next
//! question — how those models behave *as a service* under concurrent
//! load — without any network stack, so every queueing and batching
//! effect measured is the engine's own.
//!
//! Architecture (request path, left to right):
//!
//! ```text
//! submit() ──► BoundedQueue ──► worker pool ──► micro-batch / tiles ──► Ticket
//!   │             │                 │                  │
//!   reject     deadline          registry           telemetry
//!   (full)     (expired at      (LRU, lazy       (per-stage latency
//!              dequeue)          load)            histograms)
//! ```
//!
//! * [`queue`] — bounded MPSC queue; `push` fails fast with a typed
//!   reason (explicit backpressure), `pop_group` batches same-key
//!   requests under one lock.
//! * [`engine`] — supervised worker pool; same-shape requests run as one
//!   `run_batch` forward pass, oversized single images take the
//!   halo-tiled path (bit-identical to whole-image inference). Worker
//!   panics are caught and converted to per-request typed errors; crashed
//!   workers are respawned with backoff under a restart budget; requests
//!   retry retryable failures; `shutdown(deadline)` drains gracefully.
//! * [`registry`] — models keyed by `(arch, scale)`, lazily loaded from
//!   `model_io` artifacts, LRU-bounded residency.
//! * [`telemetry`] — log-scale latency histograms per pipeline stage
//!   (queue wait, batch assembly, compute, reassembly) plus throughput
//!   and rejection counters; exportable as JSON.
//! * [`loadgen`] — deterministic closed/open-loop load generation and a
//!   paused-engine burst that demonstrates the rejection path.
//! * [`bench`] — the `serve-bench` harness emitting `BENCH_serve.json`.
//! * [`chaos`] — deterministic seed-driven fault injection (panics, slow
//!   models, load failures, clock skew) for the `serve-chaos` harness and
//!   the chaos soak test, plus shard-level faults (kill / wedge / failed
//!   respawn) for the router's fleet-scope chaos.
//! * [`router`] — the fleet front door: N supervised engine shards
//!   behind consistent-hash routing, per-tenant token buckets,
//!   two-priority weighted-fair queues, and priority-ordered load
//!   shedding (shed batch, degrade interactive, reject last).
//! * [`supervisor`] — per-shard health probing, circuit breaking with
//!   half-open probing, wedge detection, and budgeted respawn.
//! * [`autoscale`] — consistent-hash ring with bounded rebalancing and
//!   the hysteresis/cooldown controller that drives elastic scale-up /
//!   scale-down of the router's shard fleet.
//! * [`router_bench`] — the `router-bench` harness emitting
//!   `BENCH_router.json` (multi-tenant open-loop mix, shard scaling, and
//!   the overload/shedding phase).
//! * [`json`] — minimal JSON emission + strict validation (the offline
//!   workspace has no real serde).
//! * [`video`] — stateful streaming-SR sessions: per-tile CRC32 content
//!   hashes skip unchanged tiles (cached HR bits blitted back), dirty
//!   rects expand by the halo radius so composites stay bit-identical
//!   to whole-frame runs, and an any-time M3/M5/M7/M11 ladder degrades
//!   PSNR instead of latency under deadline pressure.
//! * [`video_bench`] — the `video-bench` harness emitting
//!   `BENCH_video.json` (frames/sec and PSNR-vs-deadline on synthetic
//!   static/pan/scene-cut sequences).

pub mod autoscale;
pub mod bench;
pub mod chaos;
pub mod engine;
pub mod json;
pub mod loadgen;
pub mod plan_cache;
pub mod queue;
pub mod registry;
pub mod router;
pub mod router_bench;
pub mod supervisor;
pub mod telemetry;
pub mod video;
pub mod video_bench;

pub use autoscale::{AutoscaleConfig, AutoscaleController, HashRing, ScaleSignal};
pub use bench::{bench_report_json, run_bench, BenchConfig, BenchOutcome};
pub use chaos::{Chaos, ChaosConfig, FaultPoint, ShardChaos, ShardChaosConfig, ShardFaultPoint};
pub use engine::{
    Completion, Engine, EngineConfig, Health, ServeError, ShutdownReport, SubmitError, Ticket,
};
pub use loadgen::{run_load, LoadMode, LoadReport, LoadSpec};
pub use plan_cache::{
    AnyPlan, AnyTilePlanner, DecisionSource, PlanCache, Precision, PrecisionDecision,
    PrecisionPolicy, SharedPlanCache,
};
pub use queue::{BoundedQueue, PushError};
pub use registry::{ModelKey, ModelRegistry, RegistryError, RegistryStats};
pub use router::{
    BreakerState, Priority, RateLimit, Router, RouterConfig, RouterCounters, RouterServeError,
    RouterShutdownReport, RouterSnapshot, RouterSubmitError, RouterTelemetry, RouterTicket,
    ShardStatus, TenantPolicy, TenantSummary,
};
pub use telemetry::{Snapshot, Stage, StageSummary, Telemetry};
pub use video::{
    FrameResult, FrameStats, SessionStats, VideoError, VideoSession, VideoSessionSpec,
};
pub use video_bench::{
    run_video_bench, video_bench_report_json, VideoBenchConfig, VideoBenchReport,
};
