//! The serving engine: supervised worker pool + bounded queue + batcher.
//!
//! Requests enter through [`Engine::submit`], which validates the input
//! at the boundary (NaN/Inf/zero-dim tensors are rejected with typed
//! errors before touching the queue) and returns a [`Ticket`]
//! immediately — or a typed [`SubmitError`] when the queue is full, the
//! model unknown, or the engine draining. Worker threads pull *groups*
//! of same-model, same-shape requests from the queue and execute them as
//! one batched forward pass; oversized single requests instead take the
//! tiled path, fanning halo tiles across the intra-op thread pool. Each
//! request's journey is timed per stage (queue wait → batch assembly →
//! compute → reassembly) into the shared
//! [`Telemetry`](crate::telemetry::Telemetry).
//!
//! **Fault model.** A panicking forward pass no longer aborts the
//! process: batched-path panics are caught per group, the in-flight
//! requests are retried (bounded, with exponential backoff, honoring
//! their deadlines) or answered with [`ServeError::WorkerCrashed`], and
//! the dead worker thread is respawned by a supervisor under an
//! exponential-backoff restart budget. Tiled-path panics are contained
//! inside the scoped tile pool and surface the same way without killing
//! the worker. Transient model-load failures follow the same retry
//! path. A request that crashes every attempt exhausts its retries and
//! is quarantined — a poison-pill input cannot crash-loop the pool
//! beyond its retry budget. Result delivery is idempotent: a ticket's
//! slot accepts only the first terminal outcome, so a late duplicate
//! fulfillment (e.g. after a shutdown-deadline race) is a no-op.
//!
//! **Shutdown** is drain-based and explicit: [`Engine::shutdown`] stops
//! admissions (submitters get [`SubmitError::Draining`]), flushes the
//! queue, joins the supervisor and workers within a deadline, and
//! answers anything left with typed errors so no caller ever hangs.
//! Dropping the engine without calling `shutdown` performs the same
//! drain. [`Engine::health`] reports `Healthy`/`Degraded`/`Draining`
//! derived from restart-budget consumption and queue depth.
//!
//! Deterministic fault injection for all of the above lives in
//! [`crate::chaos`] and is enabled through [`EngineConfig::chaos`].

use crate::chaos::{Chaos, ChaosConfig, FaultPoint};
use crate::plan_cache::{
    AnyTilePlanner, DecisionSource, PlanCache, Precision, PrecisionDecision, PrecisionPolicy,
};
use crate::queue::{BoundedQueue, PushError};
use crate::registry::{ModelKey, ModelRegistry};
use crate::telemetry::{Stage, Telemetry};
use crate::video::{SessionStats, VideoError, VideoSession, VideoSessionSpec};
use sesr_core::{CollapsedSesr, TilePlanner};
use sesr_quant::QuantTilePlanner;
use sesr_tensor::Tensor;
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing, batching, and fault-tolerance policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads consuming the queue.
    pub workers: usize,
    /// Bound on admitted-but-unstarted requests.
    pub queue_capacity: usize,
    /// Largest micro-batch a worker will assemble.
    pub max_batch: usize,
    /// Inputs with more than this many pixels take the tiled path.
    pub tile_threshold_px: usize,
    /// Interior tile side used by the tiled path.
    pub tile: usize,
    /// Re-enqueue attempts per request after a retryable failure
    /// (worker crash, transient model-load failure).
    pub max_retries: u32,
    /// Total worker respawns the supervisor will perform before giving
    /// up on a crashed slot.
    pub restart_budget: u32,
    /// First retry/respawn backoff; doubles per consecutive failure.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Seed for backoff jitter. Each backoff sleeps a deterministic
    /// fraction in `[0.5, 1.0)` of its exponential value, so retries and
    /// respawns de-synchronize instead of stampeding a recovering shard
    /// in lockstep. Same seed → same jitter sequence.
    pub jitter_seed: u64,
    /// Deterministic fault injection (`None` = no faults).
    pub chaos: Option<ChaosConfig>,
    /// Process-wide collapsed-kernel store worker plan caches consult on
    /// a local miss (and publish compilations to). `None` keeps every
    /// worker fully independent; the router injects one store across its
    /// whole fleet so freshly spawned shards start warm.
    pub shared_plans: Option<Arc<crate::plan_cache::SharedPlanCache>>,
    /// Autotuner-choice file (written by `sesr_tensor::autotune::
    /// save_choices`) loaded once per process when the engine starts, so
    /// replacement and scaled-up shards skip re-measurement. Load
    /// failures are non-fatal: the engine runs with baseline blocking.
    pub tuner_path: Option<std::path::PathBuf>,
    /// Serving-precision policy. Under `Int8 { psnr_budget }` every
    /// model is graded once at first use (calibrate → quantize → ΔPSNR
    /// vs f32 on a fixed synthetic scene) and served from planned int8
    /// kernels when the loss fits the budget; models that exceed it
    /// silently fall back to f32 (`precision_fallbacks` counts them).
    /// Video sessions always serve f32: temporal tile reuse composites
    /// cached tiles across frames, and mixing precisions there would
    /// break the session's bit-consistency guarantees.
    pub precision: PrecisionPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            tile_threshold_px: 256 * 256,
            tile: 128,
            max_retries: 2,
            restart_budget: 16,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(100),
            jitter_seed: 0x5E5E_B0FF,
            chaos: None,
            shared_plans: None,
            tuner_path: None,
            precision: PrecisionPolicy::F32,
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its bound; shed load or retry later.
    QueueFull {
        /// The configured bound.
        capacity: usize,
    },
    /// No model is registered under this key.
    UnknownModel(ModelKey),
    /// The input failed boundary validation (shape or non-finite data).
    InvalidInput {
        /// What the validator objected to.
        reason: String,
    },
    /// The engine is draining: shutdown has begun (or completed) and no
    /// new work is admitted.
    Draining,
    /// The engine is shutting down.
    ShuttingDown,
    /// No open video session with this id (never opened, or closed).
    UnknownSession(u64),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "rejected: queue full (capacity {capacity})")
            }
            SubmitError::UnknownModel(k) => write!(f, "rejected: model {k} is not registered"),
            SubmitError::InvalidInput { reason } => {
                write!(f, "rejected: invalid input: {reason}")
            }
            SubmitError::Draining => write!(f, "rejected: engine draining"),
            SubmitError::ShuttingDown => write!(f, "rejected: engine shutting down"),
            SubmitError::UnknownSession(id) => {
                write!(f, "rejected: no open video session with id {id}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted request did not produce an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The deadline passed before a worker started the request.
    DeadlineExpired,
    /// The model failed to load from its registered artifact.
    ModelLoad(String),
    /// The forward pass panicked on every attempt; the request was
    /// quarantined after exhausting its retry budget.
    WorkerCrashed(String),
    /// The engine shut down before the request ran.
    ShuttingDown,
    /// The request was rejected at admission. Only produced on the
    /// [`Engine::submit_with`] path, where rejections are delivered
    /// through the completion hook so every submission settles exactly
    /// once through one channel.
    Rejected(SubmitError),
    /// A video-session frame failed with a typed session error (stale
    /// sequence, closed session, shape mismatch discovered at compute).
    Video(VideoError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExpired => write!(f, "deadline expired before compute started"),
            ServeError::ModelLoad(m) => write!(f, "model load failed: {m}"),
            ServeError::WorkerCrashed(m) => {
                write!(f, "worker crashed while serving this request: {m}")
            }
            ServeError::ShuttingDown => write!(f, "engine shut down before the request ran"),
            ServeError::Rejected(e) => write!(f, "rejected at admission: {e}"),
            ServeError::Video(e) => write!(f, "video session: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Engine liveness as seen by a load balancer or health probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Serving normally.
    Healthy,
    /// Still serving, but the restart budget is half spent or the queue
    /// is ≥ 80% full — route new traffic elsewhere if possible.
    Degraded,
    /// Not admitting work: shutdown has begun (or the worker pool died).
    Draining,
}

/// What [`Engine::shutdown`] accomplished within its deadline.
#[derive(Debug, Clone, Copy)]
pub struct ShutdownReport {
    /// Queued requests answered with [`ServeError::ShuttingDown`]
    /// because they could not be flushed in time.
    pub dropped: u64,
    /// Queued requests whose deadline had already expired at drain time,
    /// answered with [`ServeError::DeadlineExpired`].
    pub expired: u64,
    /// True when the supervisor and every worker joined in time; false
    /// when the deadline passed first (threads are left detached and the
    /// remaining queue was answered with typed errors regardless).
    pub joined: bool,
    /// Wall-clock time the shutdown took.
    pub elapsed: Duration,
}

/// Terminal-outcome callback for [`Engine::submit_with`]. Invoked exactly
/// once per submission, outside any engine lock, on whichever thread
/// produces the outcome (a worker, the supervisor, or — for synchronous
/// admission rejections — the submitting thread itself).
pub type Completion = Box<dyn FnOnce(Result<Tensor, ServeError>) + Send + 'static>;

enum SlotState {
    /// No outcome yet; a [`Ticket::wait`] will collect it.
    Pending,
    /// Outcome stored, waiting for the ticket.
    Done(Result<Tensor, ServeError>),
    /// No outcome yet; deliver it to this hook instead of storing it.
    /// (`Option` so the hook can be taken under the lock and run after
    /// releasing it.)
    Hooked(Option<Completion>),
    /// Outcome already delivered (waited on, or handed to the hook).
    Delivered,
}

/// One-shot response slot shared between a worker and a waiting caller
/// (or a completion hook). Fulfillment is idempotent: only the first
/// terminal outcome is delivered; late duplicates are dropped.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        })
    }

    fn hooked(done: Completion) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SlotState::Hooked(Some(done))),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, result: Result<Tensor, ServeError>) {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match &mut *g {
            SlotState::Pending => {
                *g = SlotState::Done(result);
                drop(g);
                self.ready.notify_all();
            }
            SlotState::Hooked(hook) => {
                let hook = hook.take();
                *g = SlotState::Delivered;
                // The hook runs without the slot lock: it may be slow or
                // re-enter the engine (e.g. a router rerouting the job).
                drop(g);
                if let Some(hook) = hook {
                    hook(result);
                }
            }
            // Duplicate fulfillment (shutdown races a worker): first wins.
            SlotState::Done(_) | SlotState::Delivered => {}
        }
    }

    fn wait(&self) -> Result<Tensor, ServeError> {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if matches!(*g, SlotState::Done(_)) {
                let SlotState::Done(v) = std::mem::replace(&mut *g, SlotState::Delivered) else {
                    unreachable!("matched Done above");
                };
                return v;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Handle to an admitted request. Obtain the result with [`Ticket::wait`].
pub struct Ticket {
    /// Engine-unique request id (submission order).
    pub id: u64,
    slot: Arc<Slot>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

impl Ticket {
    /// Blocks until the request completes, returning the upscaled tensor
    /// or the typed reason it was dropped.
    ///
    /// # Errors
    ///
    /// See [`ServeError`].
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.slot.wait()
    }
}

/// Shared handle to one open video session. Workers lock `state` only
/// while settling a frame; admission reads the immutable geometry
/// (`ladder`, `height`, `width`) without touching the lock.
struct SessionHandle {
    id: u64,
    /// Ladder keys, cheapest first — re-resolved per group so registry
    /// reloads take effect mid-session.
    ladder: Vec<ModelKey>,
    height: usize,
    width: usize,
    /// Set by `close_video_session`; queued frames observing it settle
    /// as [`VideoError::UnknownSession`] instead of computing.
    closed: AtomicBool,
    state: Mutex<VideoSession>,
}

enum JobKind {
    /// A stateless single-image request (the original engine path).
    Image,
    /// One frame of an open video session.
    Frame {
        session: Arc<SessionHandle>,
        seq: u64,
    },
}

struct Job {
    key: ModelKey,
    input: Tensor,
    deadline: Option<Instant>,
    enqueued: Instant,
    slot: Arc<Slot>,
    /// Re-enqueues consumed so far (0 on first admission).
    retries: u32,
    /// Retry backoff: not eligible for execution before this instant.
    not_before: Option<Instant>,
    kind: JobKind,
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_STOPPED: u8 = 2;

struct Shared {
    queue: BoundedQueue<Job>,
    registry: Arc<ModelRegistry>,
    telemetry: Arc<Telemetry>,
    cfg: EngineConfig,
    ids: AtomicU64,
    chaos: Option<Chaos>,
    state: AtomicU8,
    restarts_used: AtomicU64,
    jitter_draws: AtomicU64,
    /// Open video sessions by id. Ids start at 1; 0 is the batch-key
    /// sentinel for stateless image requests.
    videos: Mutex<HashMap<u64, Arc<SessionHandle>>>,
    session_ids: AtomicU64,
}

impl Shared {
    fn count_fault(&self, point: FaultPoint) {
        self.telemetry.counters(|c| {
            c.faults_injected += 1;
            match point {
                FaultPoint::PanicInForward => c.faults_panic += 1,
                FaultPoint::SlowModel => c.faults_slow += 1,
                FaultPoint::RegistryLoad => c.faults_load += 1,
                FaultPoint::ClockSkew => c.faults_skew += 1,
            }
        });
    }

    fn backoff(&self, consecutive: u32) -> Duration {
        let draw = self.jitter_draws.fetch_add(1, Ordering::Relaxed);
        jittered_backoff(
            self.cfg.backoff_base,
            self.cfg.backoff_cap,
            consecutive,
            self.cfg.jitter_seed,
            draw,
        )
    }
}

/// Exponential backoff with deterministic decorrelation jitter: the
/// `consecutive`-th failure sleeps a seeded fraction in `[0.5, 1.0)` of
/// `min(base * 2^(consecutive-1), cap)`. Jitter keeps simultaneous
/// retriers (or a fleet of respawning shards) from hammering a
/// recovering dependency in lockstep, while the seed keeps tests and
/// chaos runs reproducible: the `draw` index selects the position in the
/// seed's jitter stream.
pub(crate) fn jittered_backoff(
    base: Duration,
    cap: Duration,
    consecutive: u32,
    seed: u64,
    draw: u64,
) -> Duration {
    let exp = consecutive.saturating_sub(1).min(16);
    let full = base.saturating_mul(1 << exp).min(cap);
    let h = crate::chaos::splitmix64(seed ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Top 53 bits → uniform in [0, 1), mapped to a factor in [0.5, 1.0).
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    full.mul_f64(0.5 + 0.5 * unit)
}

/// Multi-threaded batched inference engine over a [`ModelRegistry`],
/// with supervised (crash-respawning) workers.
pub struct Engine {
    shared: Arc<Shared>,
    /// The supervisor thread handle; taken (under the lock) by the first
    /// `shutdown`, which also serializes concurrent shutdown calls.
    supervisor: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads over `registry`, supervised
    /// for crash recovery.
    ///
    /// `workers == 0` is allowed (useful in tests: requests queue but
    /// nothing consumes them until the engine shuts down).
    pub fn new(cfg: EngineConfig, registry: Arc<ModelRegistry>) -> Self {
        if let Some(path) = &cfg.tuner_path {
            // Warm the process-wide GEMM blocking cache from persisted
            // autotuner choices (once per path per process, so respawns
            // and scale-ups cost nothing). A stale/corrupt/mismatched
            // file is survivable: baseline blocking, not a dead shard.
            let _ = sesr_tensor::autotune::load_choices_once(path);
        }
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            registry,
            telemetry: Arc::new(Telemetry::new()),
            chaos: cfg.chaos.clone().map(Chaos::new),
            cfg,
            ids: AtomicU64::new(0),
            state: AtomicU8::new(STATE_RUNNING),
            restarts_used: AtomicU64::new(0),
            jitter_draws: AtomicU64::new(0),
            videos: Mutex::new(HashMap::new()),
            session_ids: AtomicU64::new(1),
        });
        let supervisor = (shared.cfg.workers > 0).then(|| {
            let (tx, rx) = channel();
            let handles: Vec<Option<JoinHandle<()>>> = (0..shared.cfg.workers)
                .map(|i| Some(spawn_worker(&shared, i, 0, &tx)))
                .collect();
            let sup_shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sesr-serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&sup_shared, &rx, &tx, handles))
                .expect("spawn serve supervisor")
        });
        Self {
            shared,
            supervisor: Mutex::new(supervisor),
        }
    }

    /// Admits a `[1, H, W]` request for `key`, to be answered within
    /// `deadline` of now (if given). Returns immediately.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Draining`] once shutdown began,
    /// [`SubmitError::InvalidInput`] for malformed tensors,
    /// [`SubmitError::UnknownModel`] before touching the queue,
    /// [`SubmitError::QueueFull`] at the bound, and
    /// [`SubmitError::ShuttingDown`] when the queue closed mid-submit.
    pub fn submit(
        &self,
        key: &ModelKey,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            self.shared.telemetry.counters(|c| c.rejected_draining += 1);
            return Err(SubmitError::Draining);
        }
        if let Err(reason) = validate_input(&input) {
            self.shared.telemetry.counters(|c| c.rejected_invalid += 1);
            return Err(SubmitError::InvalidInput { reason });
        }
        if !self.shared.registry.contains(key) {
            return Err(SubmitError::UnknownModel(key.clone()));
        }
        let now = Instant::now();
        let slot = Slot::new();
        let id = self.shared.ids.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            key: key.clone(),
            input,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            slot: Arc::clone(&slot),
            retries: 0,
            not_before: None,
            kind: JobKind::Image,
        };
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.telemetry.counters(|c| c.submitted += 1);
                Ok(Ticket { id, slot })
            }
            Err(PushError::Full { capacity }) => {
                self.shared
                    .telemetry
                    .counters(|c| c.rejected_queue_full += 1);
                Err(SubmitError::QueueFull { capacity })
            }
            Err(PushError::Closed) => {
                self.shared.telemetry.counters(|c| c.rejected_shutdown += 1);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Lifecycle-hook submission: like [`Engine::submit`], but the
    /// terminal outcome is delivered to `done` (exactly once, outside any
    /// engine lock) instead of through a [`Ticket`]. Admission rejections
    /// are delivered synchronously on the calling thread as
    /// [`ServeError::Rejected`], so every call settles through the same
    /// single channel — the property the router's fleet-level
    /// exactly-one-outcome ledger is built on. `deadline` is absolute;
    /// an already-expired deadline settles as
    /// [`ServeError::DeadlineExpired`] without touching the queue.
    pub fn submit_with(
        &self,
        key: &ModelKey,
        input: Tensor,
        deadline: Option<Instant>,
        done: Completion,
    ) {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            self.shared.telemetry.counters(|c| c.rejected_draining += 1);
            done(Err(ServeError::Rejected(SubmitError::Draining)));
            return;
        }
        let now = Instant::now();
        if deadline.is_some_and(|d| now >= d) {
            self.shared.telemetry.counters(|c| c.rejected_deadline += 1);
            done(Err(ServeError::DeadlineExpired));
            return;
        }
        if let Err(reason) = validate_input(&input) {
            self.shared.telemetry.counters(|c| c.rejected_invalid += 1);
            done(Err(ServeError::Rejected(SubmitError::InvalidInput {
                reason,
            })));
            return;
        }
        if !self.shared.registry.contains(key) {
            done(Err(ServeError::Rejected(SubmitError::UnknownModel(
                key.clone(),
            ))));
            return;
        }
        let slot = Slot::hooked(done);
        self.shared.ids.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            key: key.clone(),
            input,
            deadline,
            enqueued: now,
            slot: Arc::clone(&slot),
            retries: 0,
            not_before: None,
            kind: JobKind::Image,
        };
        match self.shared.queue.offer(job) {
            Ok(()) => {
                self.shared.telemetry.counters(|c| c.submitted += 1);
            }
            Err((PushError::Full { capacity }, job)) => {
                self.shared
                    .telemetry
                    .counters(|c| c.rejected_queue_full += 1);
                job.slot
                    .fulfill(Err(ServeError::Rejected(SubmitError::QueueFull {
                        capacity,
                    })));
            }
            Err((PushError::Closed, job)) => {
                self.shared.telemetry.counters(|c| c.rejected_shutdown += 1);
                job.slot
                    .fulfill(Err(ServeError::Rejected(SubmitError::ShuttingDown)));
            }
        }
    }

    /// Opens a streaming video session over `spec` and returns its id.
    /// The ladder is resolved once here to validate geometry (uniform
    /// scale, halo radius); the per-frame path re-resolves models so
    /// registry reloads take effect mid-session.
    ///
    /// # Errors
    ///
    /// [`VideoError::Draining`] once shutdown began,
    /// [`VideoError::ModelLoad`] for unknown or unloadable ladder keys,
    /// and the [`VideoSession::new`] geometry errors.
    pub fn open_video_session(&self, spec: VideoSessionSpec) -> Result<u64, VideoError> {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            return Err(VideoError::Draining);
        }
        let mut models = Vec::with_capacity(spec.ladder.len());
        for key in &spec.ladder {
            if !self.shared.registry.contains(key) {
                return Err(VideoError::ModelLoad(format!(
                    "model {key} is not registered"
                )));
            }
            models.push(
                self.shared
                    .registry
                    .get(key)
                    .map_err(|e| VideoError::ModelLoad(e.to_string()))?,
            );
        }
        let session = VideoSession::new(spec, &models)?;
        let id = self.shared.session_ids.fetch_add(1, Ordering::Relaxed);
        let handle = Arc::new(SessionHandle {
            id,
            ladder: session.spec().ladder.clone(),
            height: session.spec().height,
            width: session.spec().width,
            closed: AtomicBool::new(false),
            state: Mutex::new(session),
        });
        self.shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, handle);
        self.shared
            .telemetry
            .counters(|c| c.video_sessions_opened += 1);
        Ok(id)
    }

    /// Feeds frame `seq` to session `session_id`, to be settled within
    /// `deadline` of now (if given). Returns a [`Ticket`] immediately;
    /// waiting on it yields the composited HR frame. Settlement is
    /// idempotent per `seq` — re-feeding a settled frame returns the
    /// cached output, and an older `seq` settles as a typed
    /// [`VideoError::StaleFrame`] through the ticket.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownSession`] for closed or never-opened ids,
    /// plus every rejection [`Engine::submit`] can produce.
    pub fn feed_video_frame(
        &self,
        session_id: u64,
        seq: u64,
        frame: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            self.shared.telemetry.counters(|c| c.rejected_draining += 1);
            return Err(SubmitError::Draining);
        }
        if let Err(reason) = validate_input(&frame) {
            self.shared.telemetry.counters(|c| c.rejected_invalid += 1);
            return Err(SubmitError::InvalidInput { reason });
        }
        let handle = self
            .shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&session_id)
            .cloned()
            .ok_or(SubmitError::UnknownSession(session_id))?;
        let shape = frame.shape();
        if shape[1] != handle.height || shape[2] != handle.width {
            self.shared.telemetry.counters(|c| c.rejected_invalid += 1);
            return Err(SubmitError::InvalidInput {
                reason: format!(
                    "frame shape {shape:?} does not match session shape [1, {}, {}]",
                    handle.height, handle.width
                ),
            });
        }
        // Grouped under the top rung: the queue batches frames per
        // session (the id is in the batch key), and the key only has to
        // be a registered model for admission.
        let key = handle
            .ladder
            .last()
            .cloned()
            .expect("open session has a non-empty ladder");
        let now = Instant::now();
        let slot = Slot::new();
        let id = self.shared.ids.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            key,
            input: frame,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            slot: Arc::clone(&slot),
            retries: 0,
            not_before: None,
            kind: JobKind::Frame {
                session: handle,
                seq,
            },
        };
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.telemetry.counters(|c| {
                    c.submitted += 1;
                    c.video_frames_in += 1;
                });
                Ok(Ticket { id, slot })
            }
            Err(PushError::Full { capacity }) => {
                self.shared
                    .telemetry
                    .counters(|c| c.rejected_queue_full += 1);
                Err(SubmitError::QueueFull { capacity })
            }
            Err(PushError::Closed) => {
                self.shared.telemetry.counters(|c| c.rejected_shutdown += 1);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Closes a video session, returning its lifetime stats. Frames
    /// still queued settle as [`VideoError::UnknownSession`] when a
    /// worker reaches them. Closing twice is a typed error, not a hang.
    ///
    /// # Errors
    ///
    /// [`VideoError::UnknownSession`] when no session has this id.
    pub fn close_video_session(&self, session_id: u64) -> Result<SessionStats, VideoError> {
        let handle = self
            .shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&session_id)
            .ok_or(VideoError::UnknownSession(session_id))?;
        handle.closed.store(true, Ordering::Release);
        self.shared
            .telemetry
            .counters(|c| c.video_sessions_closed += 1);
        let stats = handle
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats();
        Ok(stats)
    }

    /// Removes session `session_id` and hands its state (tile hashes,
    /// cached HR plane, stats) to the caller, for migration onto another
    /// engine via [`Engine::import_video_session`]. Frames still queued
    /// for it settle as [`VideoError::UnknownSession`], exactly like a
    /// close. The extraction only succeeds when no worker holds the
    /// session mid-frame; a contended handle is a typed error (the
    /// migrator settles the session as lost instead of stalling a
    /// scale-down on a busy session).
    ///
    /// # Errors
    ///
    /// [`VideoError::UnknownSession`] when no session has this id;
    /// [`VideoError::SessionLost`] when the state is pinned by an
    /// in-flight frame.
    pub fn export_video_session(&self, session_id: u64) -> Result<VideoSession, VideoError> {
        let handle = self
            .shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&session_id)
            .ok_or(VideoError::UnknownSession(session_id))?;
        handle.closed.store(true, Ordering::Release);
        self.shared
            .telemetry
            .counters(|c| c.video_sessions_closed += 1);
        match Arc::try_unwrap(handle) {
            Ok(h) => Ok(h.state.into_inner().unwrap_or_else(PoisonError::into_inner)),
            // A queued frame still holds the handle; its worker will see
            // `closed` and settle it typed. The state itself cannot be
            // moved out, so the migration reports the session lost.
            Err(_) => Err(VideoError::SessionLost),
        }
    }

    /// Installs a migrated [`VideoSession`] (from another engine's
    /// [`Engine::export_video_session`]) under a fresh id, preserving
    /// its temporal-reuse state and lifetime stats.
    ///
    /// # Errors
    ///
    /// [`VideoError::Draining`] once shutdown began.
    pub fn import_video_session(&self, session: VideoSession) -> Result<u64, VideoError> {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            return Err(VideoError::Draining);
        }
        let id = self.shared.session_ids.fetch_add(1, Ordering::Relaxed);
        let handle = Arc::new(SessionHandle {
            id,
            ladder: session.spec().ladder.clone(),
            height: session.spec().height,
            width: session.spec().width,
            closed: AtomicBool::new(false),
            state: Mutex::new(session),
        });
        self.shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, handle);
        self.shared
            .telemetry
            .counters(|c| c.video_sessions_opened += 1);
        Ok(id)
    }

    /// Lifetime stats of an open session.
    ///
    /// # Errors
    ///
    /// [`VideoError::UnknownSession`] when no session has this id.
    pub fn video_session_stats(&self, session_id: u64) -> Result<SessionStats, VideoError> {
        let handle = self
            .shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&session_id)
            .cloned()
            .ok_or(VideoError::UnknownSession(session_id))?;
        let stats = handle
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .stats();
        Ok(stats)
    }

    /// Number of currently open video sessions.
    pub fn open_video_sessions(&self) -> usize {
        self.shared
            .videos
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Stops workers from consuming (producers still admit up to the
    /// bound) — used to demonstrate backpressure deterministically.
    pub fn pause(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Resumes consumption after [`Engine::pause`].
    pub fn resume(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Requests currently admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The engine's telemetry sink.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// The model registry this engine serves from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Worker respawns performed so far (bounded by the restart budget).
    pub fn restarts_used(&self) -> u64 {
        self.shared.restarts_used.load(Ordering::Relaxed)
    }

    /// Readiness derived from restart-budget consumption and queue
    /// depth; `Draining` once shutdown began or the worker pool died.
    pub fn health(&self) -> Health {
        if self.shared.state.load(Ordering::Acquire) != STATE_RUNNING {
            return Health::Draining;
        }
        let used = self.shared.restarts_used.load(Ordering::Relaxed);
        let budget = u64::from(self.shared.cfg.restart_budget);
        let budget_strained =
            (budget == 0 && used > 0) || (budget > 0 && used.saturating_mul(2) >= budget);
        let queue_strained = self.shared.queue.len().saturating_mul(5)
            >= self.shared.cfg.queue_capacity.saturating_mul(4);
        if budget_strained || queue_strained {
            Health::Degraded
        } else {
            Health::Healthy
        }
    }

    /// Graceful drain: stops admissions (submitters see
    /// [`SubmitError::Draining`]), flushes already-admitted work, and
    /// joins the supervisor and workers. If `deadline` passes first, the
    /// remaining queue is answered with typed errors (expired deadlines
    /// as [`ServeError::DeadlineExpired`], the rest as
    /// [`ServeError::ShuttingDown`]) so no caller hangs, and the still
    /// busy threads are left detached. Idempotent; concurrent callers
    /// serialize and later ones observe an already-drained engine.
    pub fn shutdown(&self, deadline: Duration) -> ShutdownReport {
        let start = Instant::now();
        let mut guard = self
            .supervisor
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = self.shared.state.compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.shared.queue.close();
        let mut joined = true;
        if let Some(h) = guard.take() {
            loop {
                if h.is_finished() {
                    let _ = h.join();
                    break;
                }
                if start.elapsed() >= deadline {
                    joined = false;
                    drop(h); // detach: threads cannot be killed
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        // Anything still queued (zero workers, or the deadline cut the
        // drain short) is answered here so no ticket waits forever.
        let (mut dropped, mut expired) = (0u64, 0u64);
        let now = Instant::now();
        while let Some(group) = self.shared.queue.pop_group(usize::MAX, |_| 0u8) {
            for job in group {
                if job.deadline.is_some_and(|d| now >= d) {
                    expired += 1;
                    self.shared.telemetry.counters(|c| c.rejected_deadline += 1);
                    job.slot.fulfill(Err(ServeError::DeadlineExpired));
                } else {
                    dropped += 1;
                    self.shared.telemetry.counters(|c| c.dropped_in_drain += 1);
                    job.slot.fulfill(Err(ServeError::ShuttingDown));
                }
            }
        }
        self.shared.state.store(STATE_STOPPED, Ordering::Release);
        drop(guard);
        ShutdownReport {
            dropped,
            expired,
            joined,
            elapsed: start.elapsed(),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        if self.shared.state.load(Ordering::Acquire) != STATE_STOPPED {
            let _ = self.shutdown(Duration::from_secs(60));
        }
    }
}

/// Boundary validation: shape `[1, H, W]` with H, W ≥ 1 and finite data.
/// Shared with the router, which validates at *its* admission edge so a
/// malformed tensor is rejected before it costs a routing decision.
pub(crate) fn validate_input(t: &Tensor) -> Result<(), String> {
    let s = t.shape();
    if s.len() != 3 || s[0] != 1 {
        return Err(format!("expected input shape [1, H, W], got {s:?}"));
    }
    if s[1] == 0 || s[2] == 0 {
        return Err(format!("zero-sized input dimension: {s:?}"));
    }
    if let Some(bad) = t.data().iter().find(|v| !v.is_finite()) {
        return Err(format!("non-finite input value {bad}"));
    }
    Ok(())
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How a worker announced its exit to the supervisor.
struct WorkerExit {
    index: usize,
    crashed: bool,
}

fn spawn_worker(
    shared: &Arc<Shared>,
    index: usize,
    generation: u64,
    tx: &Sender<WorkerExit>,
) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    let tx = tx.clone();
    std::thread::Builder::new()
        .name(format!("sesr-serve-{index}-g{generation}"))
        .spawn(move || {
            let crashed = matches!(worker_loop(&shared), LoopEnd::Crashed);
            let _ = tx.send(WorkerExit { index, crashed });
        })
        .expect("spawn serve worker")
}

/// The supervisor: joins exiting workers, respawns crashed ones with
/// exponential backoff while the restart budget lasts, and — if the
/// whole pool dies with the budget spent — fails everything still
/// queued so no caller hangs on a ticket.
fn supervisor_loop(
    shared: &Arc<Shared>,
    rx: &Receiver<WorkerExit>,
    tx: &Sender<WorkerExit>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    let mut live = handles.iter().filter(|h| h.is_some()).count();
    let mut consecutive = vec![0u32; handles.len()];
    let mut generation = 0u64;
    while live > 0 {
        let Ok(exit) = rx.recv() else { break };
        if let Some(h) = handles[exit.index].take() {
            let _ = h.join();
        }
        if !exit.crashed {
            live -= 1;
            continue;
        }
        let used = shared.restarts_used.load(Ordering::Relaxed);
        if used >= u64::from(shared.cfg.restart_budget) {
            live -= 1;
            if live == 0 {
                fail_pending_after_pool_death(shared);
            }
            continue;
        }
        shared.restarts_used.store(used + 1, Ordering::Relaxed);
        consecutive[exit.index] += 1;
        // While draining, respawn immediately: queued work still needs a
        // consumer, and the backoff only protects a live engine from a
        // hot crash loop.
        if shared.state.load(Ordering::Acquire) == STATE_RUNNING {
            std::thread::sleep(shared.backoff(consecutive[exit.index]));
        }
        shared.telemetry.counters(|c| c.worker_restarts += 1);
        generation += 1;
        handles[exit.index] = Some(spawn_worker(shared, exit.index, generation, tx));
    }
}

/// Terminal path for a dead pool: close the queue and answer everything
/// still in it. The engine stops admitting (submitters see `Draining`).
fn fail_pending_after_pool_death(shared: &Shared) {
    let _ = shared.state.compare_exchange(
        STATE_RUNNING,
        STATE_DRAINING,
        Ordering::AcqRel,
        Ordering::Acquire,
    );
    shared.queue.close();
    while let Some(group) = shared.queue.pop_group(usize::MAX, |_| 0u8) {
        for job in group {
            shared.telemetry.counters(|c| c.requests_quarantined += 1);
            job.slot.fulfill(Err(ServeError::WorkerCrashed(
                "worker pool dead: restart budget exhausted".to_string(),
            )));
        }
    }
}

enum LoopEnd {
    Clean,
    Crashed,
}

enum GroupOutcome {
    Done,
    WorkerCrashed,
}

fn worker_loop(shared: &Shared) -> LoopEnd {
    // Session id joins the batch key (0 = stateless image) so frames of
    // one session form their own groups, in FIFO (= sequence) order, and
    // never mix with image batches.
    let batch_key = |j: &Job| -> (ModelKey, Vec<usize>, u64) {
        let sid = match &j.kind {
            JobKind::Image => 0,
            JobKind::Frame { session, .. } => session.id,
        };
        (j.key.clone(), j.input.shape().to_vec(), sid)
    };
    // Worker-local: plans survive across groups, die with the worker.
    // Kernel compilations are drawn from (and published to) the shared
    // per-process store when the engine has one, so a respawned worker
    // or a freshly scaled-up shard starts from warm kernels; the plan
    // arenas themselves stay worker-local (sharing them would serialize
    // compute on a lock).
    let mut plans = PlanCache::with_shared(shared.cfg.shared_plans.clone());
    while let Some(group) = shared.queue.pop_group(shared.cfg.max_batch, batch_key) {
        let outcome = if matches!(group[0].kind, JobKind::Frame { .. }) {
            process_video_group(shared, &mut plans, group)
        } else {
            process_group(shared, &mut plans, group)
        };
        if matches!(outcome, GroupOutcome::WorkerCrashed) {
            return LoopEnd::Crashed;
        }
    }
    LoopEnd::Clean
}

fn process_group(shared: &Shared, plans: &mut PlanCache, group: Vec<Job>) -> GroupOutcome {
    let dequeued = Instant::now();
    // Queue wait is per-request: admission to first worker attention.
    for job in &group {
        shared
            .telemetry
            .record(Stage::QueueWait, dequeued.duration_since(job.enqueued));
    }
    // Honor retry backoff: the group waits for its latest eligible time
    // (bounded by backoff_cap, so this is a short sleep).
    if let Some(nb) = group.iter().filter_map(|j| j.not_before).max() {
        if let Some(d) = nb.checked_duration_since(dequeued) {
            std::thread::sleep(d);
        }
    }
    // Deadline check happens at dequeue: a request that waited past its
    // deadline is dropped *before* spending compute on it. Chaos can
    // skew the observed clock forward, making deadlines fire early.
    let mut now = Instant::now();
    if let Some(skew) = shared.chaos.as_ref().and_then(|c| c.deadline_skew()) {
        shared.count_fault(FaultPoint::ClockSkew);
        now += skew;
    }
    let (live, expired): (Vec<Job>, Vec<Job>) = group
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| now < d));
    for job in expired {
        shared.telemetry.counters(|c| c.rejected_deadline += 1);
        job.slot.fulfill(Err(ServeError::DeadlineExpired));
    }
    if live.is_empty() {
        return GroupOutcome::Done;
    }
    // Model resolution. Chaos-injected load failures are transient and
    // retryable; real registry errors retry too (a second attempt may
    // hit a repaired artifact), terminal after the budget.
    let loaded = if shared.chaos.as_ref().is_some_and(Chaos::fail_registry_load) {
        shared.count_fault(FaultPoint::RegistryLoad);
        Err("chaos: injected transient registry load failure".to_string())
    } else {
        shared.registry.get(&live[0].key).map_err(|e| e.to_string())
    };
    let model = match loaded {
        Ok(m) => m,
        Err(msg) => {
            shared.telemetry.counters(|c| c.model_load_failures += 1);
            retry_or_fail(shared, live, &FailureKind::ModelLoad, &msg);
            return GroupOutcome::Done;
        }
    };
    if let Some(delay) = shared.chaos.as_ref().and_then(Chaos::slow_model) {
        shared.count_fault(FaultPoint::SlowModel);
        std::thread::sleep(delay);
    }
    // Resolve the serving precision once per group. Under the f32 policy
    // this is free; under int8 the first group for a model pays the
    // grading (calibrate → quantize → ΔPSNR) or warms it from the shared
    // store, and every later group hits the worker-local decision cache.
    let resolved;
    let (decision, decision_warm): (&PrecisionDecision, bool) = match shared.cfg.precision {
        PrecisionPolicy::F32 => (&PrecisionDecision::F32, false),
        PrecisionPolicy::Int8 { psnr_budget } => {
            let (d, source) = plans.decision_for(&live[0].key, &model, psnr_budget);
            if source == DecisionSource::Computed && d.precision == Precision::F32 {
                // Graded here and the budget lost: one fallback per fresh
                // measurement, not per request.
                shared.telemetry.counters(|c| c.precision_fallbacks += 1);
            }
            resolved = d;
            (&*resolved, source != DecisionSource::Computed)
        }
    };
    let shape = live[0].input.shape();
    let px = shape[1] * shape[2];
    if live.len() == 1 && px > shared.cfg.tile_threshold_px {
        if let Some(job) = live.into_iter().next() {
            run_tiled_request(shared, plans, &model, job, decision, decision_warm);
        }
        GroupOutcome::Done
    } else {
        run_batch_jobs(shared, plans, &model, live, decision)
    }
}

/// Video-session group: frames of one session, dequeued in FIFO (=
/// sequence) order. Each frame locks the session state machine and
/// settles independently. Panics are contained per frame — like the
/// tiled path, a crash fails (retryably) only that frame, never the
/// worker thread — and because the session commits state only after a
/// frame fully computes, the retry replays against unchanged state.
fn process_video_group(shared: &Shared, plans: &mut PlanCache, group: Vec<Job>) -> GroupOutcome {
    let dequeued = Instant::now();
    for job in &group {
        shared
            .telemetry
            .record(Stage::QueueWait, dequeued.duration_since(job.enqueued));
    }
    if let Some(nb) = group.iter().filter_map(|j| j.not_before).max() {
        if let Some(d) = nb.checked_duration_since(dequeued) {
            std::thread::sleep(d);
        }
    }
    // Frames whose deadline already passed at dequeue are dropped before
    // compute, exactly like image requests; the any-time ladder governs
    // frames that are *near* their deadline, passed through below.
    let mut now = Instant::now();
    if let Some(skew) = shared.chaos.as_ref().and_then(|c| c.deadline_skew()) {
        shared.count_fault(FaultPoint::ClockSkew);
        now += skew;
    }
    let (live, expired): (Vec<Job>, Vec<Job>) = group
        .into_iter()
        .partition(|j| j.deadline.is_none_or(|d| now < d));
    for job in expired {
        shared.telemetry.counters(|c| c.rejected_deadline += 1);
        job.slot.fulfill(Err(ServeError::DeadlineExpired));
    }
    if live.is_empty() {
        return GroupOutcome::Done;
    }
    let JobKind::Frame { session, .. } = &live[0].kind else {
        unreachable!("video groups hold only frame jobs");
    };
    let session = Arc::clone(session);
    if session.closed.load(Ordering::Acquire) {
        for job in live {
            job.slot
                .fulfill(Err(ServeError::Video(VideoError::UnknownSession(
                    session.id,
                ))));
        }
        return GroupOutcome::Done;
    }
    // Resolve the whole ladder fresh (registry reloads take effect
    // mid-session). Transient failures retry the frames with backoff.
    let loaded: Result<Vec<Arc<CollapsedSesr>>, String> =
        if shared.chaos.as_ref().is_some_and(Chaos::fail_registry_load) {
            shared.count_fault(FaultPoint::RegistryLoad);
            Err("chaos: injected transient registry load failure".to_string())
        } else {
            session
                .ladder
                .iter()
                .map(|k| shared.registry.get(k).map_err(|e| e.to_string()))
                .collect()
        };
    let models = match loaded {
        Ok(m) => m,
        Err(msg) => {
            shared.telemetry.counters(|c| c.model_load_failures += 1);
            retry_or_fail(shared, live, &FailureKind::ModelLoad, &msg);
            return GroupOutcome::Done;
        }
    };
    if let Some(delay) = shared.chaos.as_ref().and_then(Chaos::slow_model) {
        shared.count_fault(FaultPoint::SlowModel);
        std::thread::sleep(delay);
    }
    for job in live {
        let seq = match &job.kind {
            JobKind::Frame { seq, .. } => *seq,
            JobKind::Image => unreachable!("video groups hold only frame jobs"),
        };
        let t0 = Instant::now();
        let outcome = {
            let mut state = session.state.lock().unwrap_or_else(PoisonError::into_inner);
            // The panic is caught *inside* the block holding the lock,
            // so the guard drops normally and the mutex is not poisoned.
            catch_unwind(AssertUnwindSafe(|| {
                if shared.chaos.as_ref().is_some_and(Chaos::panic_in_forward) {
                    shared.count_fault(FaultPoint::PanicInForward);
                    panic!("chaos: injected panic in frame settle");
                }
                state.process_frame(seq, &job.input, job.deadline, &models, plans)
            }))
        };
        match outcome {
            Ok(Ok(res)) => {
                shared.telemetry.record(Stage::Compute, t0.elapsed());
                let fs = res.stats;
                shared.telemetry.complete(job.enqueued.elapsed());
                shared.telemetry.counters(|c| {
                    if fs.duplicate {
                        c.video_frames_duplicate += 1;
                    } else {
                        c.video_frames_completed += 1;
                    }
                    c.video_tiles_skipped += fs.tiles_skipped;
                    c.video_tiles_recomputed += fs.tiles_recomputed;
                    c.video_tiles_degraded += fs.tiles_degraded;
                    c.video_rung_0 += fs.rungs[0];
                    c.video_rung_1 += fs.rungs[1];
                    c.video_rung_2 += fs.rungs[2];
                    c.video_rung_3 += fs.rungs[3];
                    if fs.deadline_missed {
                        c.video_deadline_misses += 1;
                    }
                });
                job.slot.fulfill(Ok(res.output));
            }
            // Typed session errors (stale seq, shape drift) are terminal
            // for the frame, not for the session or the worker.
            Ok(Err(e)) => job.slot.fulfill(Err(ServeError::Video(e))),
            Err(p) => {
                let msg = panic_message(p.as_ref());
                shared.telemetry.counters(|c| c.worker_crashes += 1);
                retry_or_fail(shared, vec![job], &FailureKind::Crash, &msg);
            }
        }
    }
    GroupOutcome::Done
}

/// Retryable-failure settlement: each job is re-enqueued with backoff
/// (if its deadline and retry budget allow, and the queue accepts it) or
/// answered with the terminal typed error for `kind`.
fn retry_or_fail(shared: &Shared, jobs: Vec<Job>, kind: &FailureKind, msg: &str) {
    let now = Instant::now();
    for mut job in jobs {
        let retryable =
            job.retries < shared.cfg.max_retries && job.deadline.is_none_or(|d| now < d);
        if retryable {
            job.retries += 1;
            job.not_before = Some(now + shared.backoff(job.retries));
            match shared.queue.offer(job) {
                Ok(()) => {
                    shared.telemetry.counters(|c| c.requests_retried += 1);
                }
                Err((_, returned)) => terminal_failure(shared, &returned, kind, msg),
            }
        } else {
            terminal_failure(shared, &job, kind, msg);
        }
    }
}

enum FailureKind {
    /// The forward pass panicked.
    Crash,
    /// The model failed to load.
    ModelLoad,
}

fn terminal_failure(shared: &Shared, job: &Job, kind: &FailureKind, msg: &str) {
    match kind {
        FailureKind::Crash => {
            shared.telemetry.counters(|c| c.requests_quarantined += 1);
            job.slot.fulfill(Err(ServeError::WorkerCrashed(format!(
                "{msg} (after {} attempt(s))",
                job.retries + 1
            ))));
        }
        FailureKind::ModelLoad => {
            job.slot
                .fulfill(Err(ServeError::ModelLoad(msg.to_string())));
        }
    }
}

/// Large single request: halo tiles fan across the intra-op thread pool
/// (compute), then tile interiors are pasted into the output
/// (reassembly). Tile-worker panics are contained: they fail this
/// request (retryably), never the worker thread or the process.
fn run_tiled_request(
    shared: &Shared,
    plans: &mut PlanCache,
    model: &Arc<CollapsedSesr>,
    job: Job,
    decision: &PrecisionDecision,
    decision_warm: bool,
) {
    match run_tiled_compute(shared, plans, model, &job, decision, decision_warm) {
        Ok(out) => {
            // Single-lock completion: `completed` and the Total histogram
            // move together, so concurrent snapshots are never torn.
            shared.telemetry.complete(job.enqueued.elapsed());
            job.slot.fulfill(Ok(out));
        }
        Err(TiledFailure::Plan(msg)) => {
            // Only reachable with a degenerate config (tile = 0); surface
            // it rather than panicking a worker.
            job.slot.fulfill(Err(ServeError::ModelLoad(msg)));
        }
        Err(TiledFailure::Crash(msg)) => {
            shared.telemetry.counters(|c| c.worker_crashes += 1);
            retry_or_fail(shared, vec![job], &FailureKind::Crash, &msg);
        }
    }
}

enum TiledFailure {
    /// Tile planning rejected the geometry.
    Plan(String),
    /// A tile worker panicked (captured, not propagated).
    Crash(String),
}

fn run_tiled_compute(
    shared: &Shared,
    plans: &mut PlanCache,
    model: &Arc<CollapsedSesr>,
    job: &Job,
    decision: &PrecisionDecision,
    decision_warm: bool,
) -> Result<Tensor, TiledFailure> {
    let dims = job.input.shape();
    let (h, w) = (dims[1], dims[2]);
    let overlap = model.receptive_field_radius();
    let plan = model
        .plan_tiles(h, w, shared.cfg.tile, overlap)
        .map_err(|e| TiledFailure::Plan(e.to_string()))?;
    let t0 = Instant::now();
    let specs = plan.tiles();
    // Kernels come from the worker's plan cache (f32) or ride inside the
    // precision decision (int8) and are shared by every tile thread
    // below; each thread builds its own (cheap) per-shape tile plans
    // over them.
    let (fkernels, qkernels, kernels_hit) = match decision.precision {
        Precision::F32 => {
            let (k, hit) = plans.kernels_for(&job.key, model);
            (Some(k), None, hit)
        }
        Precision::Int8 => {
            let qk = decision
                .qkernels
                .clone()
                .expect("an int8 decision always carries packed kernels");
            // The packed kernels were compiled with the decision, so
            // "hit" means the decision itself was already warm.
            (None, Some(qk), decision_warm)
        }
    };
    let peak_arena = AtomicU64::new(0);
    // Chaos draws once per tiled attempt; the panic detonates inside a
    // tile worker so the containment path is the one exercised.
    let inject = shared.chaos.as_ref().is_some_and(Chaos::panic_in_forward);
    if inject {
        shared.count_fault(FaultPoint::PanicInForward);
    }
    let armed = AtomicBool::new(inject);
    let crash: Mutex<Option<String>> = Mutex::new(None);
    let mut tiles: Vec<Option<Tensor>> = (0..specs.len()).map(|_| None).collect();
    {
        let threads = sesr_tensor::parallel::num_threads().clamp(1, specs.len().max(1));
        let chunk = specs.len().div_ceil(threads);
        let mut rest: &mut [Option<Tensor>] = &mut tiles;
        let scope_result = crossbeam::scope(|s| {
            for chunk_specs in specs.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(chunk_specs.len());
                rest = tail;
                let input = &job.input;
                let (armed, crash, peak_arena) = (&armed, &crash, &peak_arena);
                let (fkernels, qkernels) = (&fkernels, &qkernels);
                s.spawn(move |_| {
                    let mut planner = match qkernels {
                        Some(qk) => AnyTilePlanner::Int8(QuantTilePlanner::new(qk.clone())),
                        None => {
                            let k = fkernels.as_ref().expect("f32 path resolved kernels");
                            AnyTilePlanner::F32(TilePlanner::new(k.clone()))
                        }
                    };
                    for (slot, spec) in head.iter_mut().zip(chunk_specs) {
                        let tile = catch_unwind(AssertUnwindSafe(|| {
                            if armed.swap(false, Ordering::Relaxed) {
                                panic!("chaos: injected panic in tile worker");
                            }
                            planner.run_tile(input, spec)
                        }));
                        match tile {
                            Ok(t) => *slot = Some(t),
                            Err(p) => {
                                let mut g = crash.lock().unwrap_or_else(PoisonError::into_inner);
                                g.get_or_insert_with(|| panic_message(p.as_ref()));
                                return; // the request fails as a unit
                            }
                        }
                    }
                    peak_arena.fetch_max(planner.max_arena_bytes() as u64, Ordering::Relaxed);
                });
            }
        });
        if scope_result.is_err() {
            // Unreachable in practice (tile bodies catch their own
            // panics), but a scope error must never abort the worker.
            let mut g = crash.lock().unwrap_or_else(PoisonError::into_inner);
            g.get_or_insert_with(|| "tile scope failed".to_string());
        }
    }
    if let Some(msg) = crash.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(TiledFailure::Crash(msg));
    }
    let t1 = Instant::now();
    shared.telemetry.record(Stage::Compute, t1 - t0);
    let s = model.scale();
    let mut out = Tensor::zeros(&[1, h * s, w * s]);
    let out_w = w * s;
    for (spec, sr) in specs.iter().zip(&tiles) {
        let Some(sr) = sr.as_ref() else {
            return Err(TiledFailure::Crash("tile result missing".to_string()));
        };
        let sr_w = spec.patch_w() * s;
        for y in spec.y0 * s..spec.y1 * s {
            let py = y - spec.ey0 * s;
            for x in spec.x0 * s..spec.x1 * s {
                let px = x - spec.ex0 * s;
                out.data_mut()[y * out_w + x] = sr.data()[py * sr_w + px];
            }
        }
    }
    shared.telemetry.record(Stage::Reassembly, t1.elapsed());
    let arena = peak_arena.load(Ordering::Relaxed);
    let is_int8 = decision.precision == Precision::Int8;
    shared.telemetry.counters(|c| {
        c.tiled_requests += 1;
        c.tiles_run += specs.len() as u64;
        if kernels_hit {
            c.plan_cache_hits += 1;
            if is_int8 {
                c.int8_plan_cache_hits += 1;
            }
        } else {
            c.plan_cache_misses += 1;
            if is_int8 {
                c.int8_plans_active += 1;
            }
        }
        c.peak_arena_bytes = c.peak_arena_bytes.max(arena);
    });
    Ok(out)
}

/// Same-shape batch: stack → one `run_batch` forward → unstack. A panic
/// anywhere in the pass is caught; the batch's requests are retried or
/// answered with [`ServeError::WorkerCrashed`], and the worker thread
/// exits to be respawned by the supervisor.
fn run_batch_jobs(
    shared: &Shared,
    plans: &mut PlanCache,
    model: &Arc<CollapsedSesr>,
    jobs: Vec<Job>,
    decision: &PrecisionDecision,
) -> GroupOutcome {
    let t0 = Instant::now();
    // The queue groups same-key same-shape requests, so one cached plan
    // serves the whole batch (its arena is reused image by image).
    let shape = jobs[0].input.shape();
    let (plan, plan_hit) = plans.plan_for(&jobs[0].key, model, shape[1], shape[2], decision);
    let arena = plan.arena_bytes() as u64;
    let is_int8 = plan.precision() == Precision::Int8;
    shared.telemetry.counters(|c| {
        if plan_hit {
            c.plan_cache_hits += 1;
            if is_int8 {
                c.int8_plan_cache_hits += 1;
            }
        } else {
            c.plan_cache_misses += 1;
            if is_int8 {
                c.int8_plans_active += 1;
            }
        }
        c.peak_arena_bytes = c.peak_arena_bytes.max(arena);
    });
    let compute = {
        let inputs: Vec<&Tensor> = jobs.iter().map(|j| &j.input).collect();
        catch_unwind(AssertUnwindSafe(|| {
            if shared.chaos.as_ref().is_some_and(Chaos::panic_in_forward) {
                shared.count_fault(FaultPoint::PanicInForward);
                panic!("chaos: injected panic in forward");
            }
            let batch = Tensor::stack(&inputs);
            let t1 = Instant::now();
            let sr = plan.run_batch(&batch);
            let t2 = Instant::now();
            (t1, t2, sr.unstack())
        }))
    };
    let (t1, t2, outputs) = match compute {
        Ok(parts) => parts,
        Err(p) => {
            let msg = panic_message(p.as_ref());
            shared.telemetry.counters(|c| c.worker_crashes += 1);
            retry_or_fail(shared, jobs, &FailureKind::Crash, &msg);
            return GroupOutcome::WorkerCrashed;
        }
    };
    shared.telemetry.record(Stage::BatchAssembly, t1 - t0);
    shared.telemetry.record(Stage::Compute, t2 - t1);
    shared.telemetry.counters(|c| {
        c.batches += 1;
        c.batched_requests += jobs.len() as u64;
        c.max_batch = c.max_batch.max(jobs.len() as u64);
    });
    for (job, out) in jobs.into_iter().zip(outputs) {
        // Single-lock completion per request (counter + Total histogram
        // together), so a snapshot taken mid-batch never sees them torn.
        shared.telemetry.complete(job.enqueued.elapsed());
        job.slot.fulfill(Ok(out));
    }
    shared.telemetry.record(Stage::Reassembly, t2.elapsed());
    GroupOutcome::Done
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_core::model::{Sesr, SesrConfig};
    use std::sync::mpsc::channel as mpsc_channel;

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let base = Duration::from_millis(5);
        let cap = Duration::from_millis(100);
        for consecutive in 1..=8u32 {
            let exp = consecutive.saturating_sub(1).min(16);
            let full = base.saturating_mul(1 << exp).min(cap);
            for draw in 0..64u64 {
                let a = jittered_backoff(base, cap, consecutive, 0xBEEF, draw);
                let b = jittered_backoff(base, cap, consecutive, 0xBEEF, draw);
                assert_eq!(a, b, "same (seed, draw) must give the same sleep");
                assert!(a >= full.mul_f64(0.5), "below jitter floor: {a:?}");
                assert!(a < full, "at or above the un-jittered value: {a:?}");
            }
        }
    }

    #[test]
    fn jitter_streams_differ_by_seed_and_draw() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let stream = |seed: u64| -> Vec<Duration> {
            (0..32)
                .map(|d| jittered_backoff(base, cap, 3, seed, d))
                .collect()
        };
        assert_ne!(stream(1), stream(2), "different seeds must decorrelate");
        let s = stream(7);
        assert!(
            s.windows(2).any(|w| w[0] != w[1]),
            "draw index must advance the stream"
        );
    }

    fn tiny_engine(workers: usize) -> (Engine, ModelKey) {
        let model = Sesr::new(SesrConfig::m(1).with_expanded(4).with_seed(1)).collapse();
        let key = ModelKey::new("m1", 2);
        let registry = Arc::new(ModelRegistry::new(2));
        registry.insert(key.clone(), model);
        let cfg = EngineConfig {
            workers,
            queue_capacity: 8,
            ..EngineConfig::default()
        };
        (Engine::new(cfg, registry), key)
    }

    #[test]
    fn submit_with_delivers_success_through_the_hook() {
        let (engine, key) = tiny_engine(1);
        let (tx, rx) = mpsc_channel();
        let input = Tensor::rand_uniform(&[1, 8, 8], 0.0, 1.0, 3);
        engine.submit_with(&key, input, None, Box::new(move |r| tx.send(r).unwrap()));
        let out = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("hook must fire")
            .expect("tiny model must serve");
        assert_eq!(out.shape(), &[1, 16, 16]);
    }

    #[test]
    fn submit_with_rejections_settle_synchronously() {
        let (engine, key) = tiny_engine(1);
        // Unknown model: rejected before touching the queue.
        let (tx, rx) = mpsc_channel();
        engine.submit_with(
            &ModelKey::new("ghost", 2),
            Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, 0),
            None,
            Box::new(move |r| tx.send(r).unwrap()),
        );
        let r = rx.try_recv().expect("rejection must be synchronous");
        assert!(matches!(
            r,
            Err(ServeError::Rejected(SubmitError::UnknownModel(_)))
        ));
        // Expired deadline: settles typed without queueing.
        let (tx, rx) = mpsc_channel();
        engine.submit_with(
            &key,
            Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, 1),
            Some(Instant::now() - Duration::from_millis(1)),
            Box::new(move |r| tx.send(r).unwrap()),
        );
        assert!(matches!(
            rx.try_recv().unwrap(),
            Err(ServeError::DeadlineExpired)
        ));
        // After shutdown: Draining, synchronously.
        engine.shutdown(Duration::from_secs(5));
        let (tx, rx) = mpsc_channel();
        engine.submit_with(
            &key,
            Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, 2),
            None,
            Box::new(move |r| tx.send(r).unwrap()),
        );
        assert!(matches!(
            rx.try_recv().unwrap(),
            Err(ServeError::Rejected(SubmitError::Draining))
        ));
    }

    #[test]
    fn hooked_jobs_settle_as_shutting_down_in_drain() {
        // Zero workers: the job sits in the queue until shutdown answers
        // it through the hook — the exactly-once channel under drain.
        let (engine, key) = tiny_engine(0);
        let (tx, rx) = mpsc_channel();
        engine.submit_with(
            &key,
            Tensor::rand_uniform(&[1, 4, 4], 0.0, 1.0, 5),
            None,
            Box::new(move |r| tx.send(r).unwrap()),
        );
        assert!(rx.try_recv().is_err(), "must not settle before drain");
        let report = engine.shutdown(Duration::from_secs(5));
        assert_eq!(report.dropped, 1);
        assert!(matches!(
            rx.try_recv().unwrap(),
            Err(ServeError::ShuttingDown)
        ));
    }
}
