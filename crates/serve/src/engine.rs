//! The serving engine: worker pool + bounded queue + batcher.
//!
//! Requests enter through [`Engine::submit`], which returns a [`Ticket`]
//! immediately (or a typed [`SubmitError`] when the queue is full or the
//! model unknown — explicit backpressure, never silent blocking). Worker
//! threads pull *groups* of same-model, same-shape requests from the
//! queue and execute them as one batched forward pass; oversized single
//! requests instead take the tiled path, fanning halo tiles across the
//! intra-op thread pool. Each request's journey is timed per stage
//! (queue wait → batch assembly → compute → reassembly) into the shared
//! [`Telemetry`](crate::telemetry::Telemetry).
//!
//! Shutdown is drain-based: dropping the engine closes the queue, the
//! workers finish everything already admitted, and late `submit`s fail
//! with [`SubmitError::ShuttingDown`].

use crate::queue::{BoundedQueue, PushError};
use crate::registry::{ModelKey, ModelRegistry};
use crate::telemetry::{Stage, Telemetry};
use sesr_core::CollapsedSesr;
use sesr_tensor::Tensor;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing and batching policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads consuming the queue.
    pub workers: usize,
    /// Bound on admitted-but-unstarted requests.
    pub queue_capacity: usize,
    /// Largest micro-batch a worker will assemble.
    pub max_batch: usize,
    /// Inputs with more than this many pixels take the tiled path.
    pub tile_threshold_px: usize,
    /// Interior tile side used by the tiled path.
    pub tile: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            tile_threshold_px: 256 * 256,
            tile: 128,
        }
    }
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its bound; shed load or retry later.
    QueueFull {
        /// The configured bound.
        capacity: usize,
    },
    /// No model is registered under this key.
    UnknownModel(ModelKey),
    /// The engine is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "rejected: queue full (capacity {capacity})")
            }
            SubmitError::UnknownModel(k) => write!(f, "rejected: model {k} is not registered"),
            SubmitError::ShuttingDown => write!(f, "rejected: engine shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an admitted request did not produce an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The deadline passed before a worker started the request.
    DeadlineExpired,
    /// The model failed to load from its registered artifact.
    ModelLoad(String),
    /// The engine shut down before the request ran.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExpired => write!(f, "deadline expired before compute started"),
            ServeError::ModelLoad(m) => write!(f, "model load failed: {m}"),
            ServeError::ShuttingDown => write!(f, "engine shut down before the request ran"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One-shot response slot shared between a worker and a waiting caller.
struct Slot {
    value: Mutex<Option<Result<Tensor, ServeError>>>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            value: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, result: Result<Tensor, ServeError>) {
        let mut g = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        if g.is_none() {
            *g = Some(result);
        }
        drop(g);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Tensor, ServeError> {
        let mut g = self.value.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = g.take() {
                return v;
            }
            g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Handle to an admitted request. Obtain the result with [`Ticket::wait`].
pub struct Ticket {
    /// Engine-unique request id (submission order).
    pub id: u64,
    slot: Arc<Slot>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

impl Ticket {
    /// Blocks until the request completes, returning the upscaled tensor
    /// or the typed reason it was dropped.
    ///
    /// # Errors
    ///
    /// See [`ServeError`].
    pub fn wait(self) -> Result<Tensor, ServeError> {
        self.slot.wait()
    }
}

struct Job {
    key: ModelKey,
    input: Tensor,
    deadline: Option<Instant>,
    enqueued: Instant,
    slot: Arc<Slot>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    registry: Arc<ModelRegistry>,
    telemetry: Arc<Telemetry>,
    cfg: EngineConfig,
    ids: AtomicU64,
}

/// Multi-threaded batched inference engine over a [`ModelRegistry`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts `cfg.workers` worker threads over `registry`.
    ///
    /// `workers == 0` is allowed (useful in tests: requests queue but
    /// nothing consumes them until the engine is dropped).
    pub fn new(cfg: EngineConfig, registry: Arc<ModelRegistry>) -> Self {
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            registry,
            telemetry: Arc::new(Telemetry::new()),
            cfg: cfg.clone(),
            ids: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sesr-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Admits a `[1, H, W]` request for `key`, to be answered within
    /// `deadline` of now (if given). Returns immediately.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] before touching the queue,
    /// [`SubmitError::QueueFull`] at the bound, and
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn submit(
        &self,
        key: &ModelKey,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        if !self.shared.registry.contains(key) {
            return Err(SubmitError::UnknownModel(key.clone()));
        }
        let now = Instant::now();
        let slot = Slot::new();
        let id = self.shared.ids.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            key: key.clone(),
            input,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            slot: Arc::clone(&slot),
        };
        match self.shared.queue.push(job) {
            Ok(()) => {
                self.shared.telemetry.counters(|c| c.submitted += 1);
                Ok(Ticket { id, slot })
            }
            Err(PushError::Full { capacity }) => {
                self.shared
                    .telemetry
                    .counters(|c| c.rejected_queue_full += 1);
                Err(SubmitError::QueueFull { capacity })
            }
            Err(PushError::Closed) => {
                self.shared.telemetry.counters(|c| c.rejected_shutdown += 1);
                Err(SubmitError::ShuttingDown)
            }
        }
    }

    /// Stops workers from consuming (producers still admit up to the
    /// bound) — used to demonstrate backpressure deterministically.
    pub fn pause(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Resumes consumption after [`Engine::pause`].
    pub fn resume(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Requests currently admitted but not yet claimed by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The engine's telemetry sink.
    pub fn telemetry(&self) -> Arc<Telemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// The model registry this engine serves from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.shared.registry)
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // With zero workers (or after joins) anything left in the queue is
        // drained here so no caller blocks forever on a ticket.
        while let Some(group) = self.shared.queue.pop_group(usize::MAX, |_| 0u8) {
            for job in group {
                job.slot.fulfill(Err(ServeError::ShuttingDown));
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    let batch_key =
        |j: &Job| -> (ModelKey, Vec<usize>) { (j.key.clone(), j.input.shape().to_vec()) };
    while let Some(group) = shared.queue.pop_group(shared.cfg.max_batch, batch_key) {
        let dequeued = Instant::now();
        // Queue wait is per-request: admission to first worker attention.
        for job in &group {
            shared
                .telemetry
                .record(Stage::QueueWait, dequeued.duration_since(job.enqueued));
        }
        // Deadline check happens at dequeue: a request that waited past
        // its deadline is dropped *before* spending compute on it.
        let (live, expired): (Vec<Job>, Vec<Job>) = group
            .into_iter()
            .partition(|j| j.deadline.is_none_or(|d| dequeued < d));
        for job in expired {
            shared.telemetry.counters(|c| c.rejected_deadline += 1);
            job.slot.fulfill(Err(ServeError::DeadlineExpired));
        }
        if live.is_empty() {
            continue;
        }
        let model = match shared.registry.get(&live[0].key) {
            Ok(m) => m,
            Err(e) => {
                let msg = e.to_string();
                shared.telemetry.counters(|c| c.model_load_failures += 1);
                for job in live {
                    job.slot.fulfill(Err(ServeError::ModelLoad(msg.clone())));
                }
                continue;
            }
        };
        let shape = live[0].input.shape();
        let px = shape[1] * shape[2];
        if live.len() == 1 && px > shared.cfg.tile_threshold_px {
            run_tiled_job(shared, &model, live.into_iter().next().expect("one job"));
        } else {
            run_batch_jobs(shared, &model, live);
        }
    }
}

/// Large single request: halo tiles fan across the intra-op thread pool
/// (compute), then tile interiors are pasted into the output (reassembly).
fn run_tiled_job(shared: &Shared, model: &CollapsedSesr, job: Job) {
    let dims = job.input.shape();
    let (h, w) = (dims[1], dims[2]);
    let overlap = model.receptive_field_radius();
    let plan = match model.plan_tiles(h, w, shared.cfg.tile, overlap) {
        Ok(p) => p,
        Err(e) => {
            // Only reachable with a degenerate config (tile = 0); surface
            // it rather than panicking a worker.
            job.slot.fulfill(Err(ServeError::ModelLoad(e.to_string())));
            return;
        }
    };
    let t0 = Instant::now();
    let specs = plan.tiles();
    let mut tiles: Vec<Option<Tensor>> = (0..specs.len()).map(|_| None).collect();
    {
        let threads = sesr_tensor::parallel::num_threads().clamp(1, specs.len().max(1));
        let chunk = specs.len().div_ceil(threads);
        let mut rest: &mut [Option<Tensor>] = &mut tiles;
        crossbeam::scope(|s| {
            for chunk_specs in specs.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(chunk_specs.len());
                rest = tail;
                let input = &job.input;
                s.spawn(move |_| {
                    for (slot, spec) in head.iter_mut().zip(chunk_specs) {
                        *slot = Some(model.run_tile(input, spec));
                    }
                });
            }
        })
        .expect("tile workers must not panic");
    }
    let t1 = Instant::now();
    shared.telemetry.record(Stage::Compute, t1 - t0);
    let s = model.scale();
    let mut out = Tensor::zeros(&[1, h * s, w * s]);
    let out_w = w * s;
    for (spec, sr) in specs.iter().zip(&tiles) {
        let sr = sr.as_ref().expect("tile computed");
        let sr_w = spec.patch_w() * s;
        for y in spec.y0 * s..spec.y1 * s {
            let py = y - spec.ey0 * s;
            for x in spec.x0 * s..spec.x1 * s {
                let px = x - spec.ex0 * s;
                out.data_mut()[y * out_w + x] = sr.data()[py * sr_w + px];
            }
        }
    }
    shared.telemetry.record(Stage::Reassembly, t1.elapsed());
    shared.telemetry.counters(|c| {
        c.tiled_requests += 1;
        c.tiles_run += specs.len() as u64;
    });
    shared
        .telemetry
        .record(Stage::Total, job.enqueued.elapsed());
    shared.telemetry.counters(|c| c.completed += 1);
    job.slot.fulfill(Ok(out));
}

/// Same-shape batch: stack → one `run_batch` forward → unstack.
fn run_batch_jobs(shared: &Shared, model: &CollapsedSesr, jobs: Vec<Job>) {
    let t0 = Instant::now();
    let inputs: Vec<&Tensor> = jobs.iter().map(|j| &j.input).collect();
    let batch = Tensor::stack(&inputs);
    let t1 = Instant::now();
    shared.telemetry.record(Stage::BatchAssembly, t1 - t0);
    let sr = model.run_batch(&batch);
    let t2 = Instant::now();
    shared.telemetry.record(Stage::Compute, t2 - t1);
    let outputs = sr.unstack();
    shared.telemetry.counters(|c| {
        c.batches += 1;
        c.batched_requests += jobs.len() as u64;
        c.max_batch = c.max_batch.max(jobs.len() as u64);
        c.completed += jobs.len() as u64;
    });
    for (job, out) in jobs.into_iter().zip(outputs) {
        shared
            .telemetry
            .record(Stage::Total, job.enqueued.elapsed());
        job.slot.fulfill(Ok(out));
    }
    shared.telemetry.record(Stage::Reassembly, t2.elapsed());
}
