//! Sharded multi-tenant front door for a fleet of [`Engine`] shards.
//!
//! One engine is one queue and one worker pool: a stuck or crashed engine
//! takes its whole front door with it. The [`Router`] makes the *fleet*
//! fault-tolerant. It owns N supervised shards and is the only public
//! entry point:
//!
//! ```text
//! submit(tenant, class, key) ──► admission ──► shard queue ──► dispatcher ──► Engine
//!        │                         │              │                │
//!     validate              token bucket      two-band DRR      completion
//!     + registry            + shed/degrade    (weighted fair)   hook settles
//!                                                               or reroutes
//! ```
//!
//! * **Routing** — consistent hash of `(tenant, model)` over a ring of
//!   virtual nodes picks the primary shard; when its circuit breaker is
//!   open, a rendezvous (highest-random-weight) draw over the remaining
//!   live shards picks a stable fallback, so only the failed shard's keys
//!   move.
//! * **Admission** — per-tenant token buckets, separately for the
//!   interactive and batch priority classes. Overload is shed by
//!   priority: batch is rejected once the target shard's router queue is
//!   half full; interactive work is *degraded* to a cheaper architecture
//!   (M11 → M5 → M3, the any-time move — lower quality beats a timeout)
//!   once it is three-quarters full; interactive is rejected only at the
//!   hard bound.
//! * **Fairness** — each shard queue is a two-band deficit-round-robin:
//!   the interactive band drains strictly before the batch band, and
//!   within a band tenants are served in proportion to their configured
//!   weight, so one flooding tenant cannot starve another.
//! * **Exactly one outcome** — every admitted request is settled exactly
//!   once through an idempotent slot: served, or failed with a typed
//!   [`RouterServeError`]. Engine-side outcomes arrive through
//!   [`Engine::submit_with`] completion hooks; a shard death turns into a
//!   reroute (bounded by `reroute_budget`), not a lost request. The
//!   router's own counters are incremented only by the slot transition
//!   that wins, so `admitted == completed + Σ failed` is checkable after
//!   any chaos schedule.
//!
//! Supervision (health probes, circuit breaking, budgeted respawn, wedge
//! detection, shard-level chaos) lives in [`crate::supervisor`].

use crate::autoscale::{AutoscaleConfig, HashRing};
use crate::chaos::{splitmix64, ShardChaos, ShardChaosConfig};
use crate::engine::{
    jittered_backoff, validate_input, Completion, Engine, EngineConfig, Health, ServeError,
    ShutdownReport, SubmitError, Ticket,
};
use crate::plan_cache::SharedPlanCache;
use crate::registry::{ModelKey, ModelRegistry};
use crate::supervisor::supervisor_loop;
use crate::telemetry::Histogram;
use crate::video::{SessionStats, VideoError, VideoSessionSpec};
use sesr_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Policy types
// ---------------------------------------------------------------------------

/// Request priority class. Interactive traffic is dequeued strictly
/// before batch traffic and is degraded rather than rejected under
/// overload; batch traffic is the first to be shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: a user is waiting on the result.
    Interactive,
    /// Throughput work: bulk upscaling, re-encodes, backfills.
    Batch,
}

impl Priority {
    fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }
}

/// Token-bucket rate limit. The default is unlimited (`rate_per_sec`
/// infinite), which admits everything.
#[derive(Debug, Clone, Copy)]
pub struct RateLimit {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest burst admitted at once.
    pub burst: f64,
}

impl Default for RateLimit {
    fn default() -> Self {
        Self {
            rate_per_sec: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }
}

/// Per-tenant admission and fairness policy.
#[derive(Debug, Clone)]
pub struct TenantPolicy {
    /// Deficit-round-robin weight within a priority band (≥ 1; larger is
    /// a larger share of dequeues when the shard is contended).
    pub weight: u32,
    /// Token bucket for the interactive class.
    pub interactive: RateLimit,
    /// Token bucket for the batch class.
    pub batch: RateLimit,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        Self {
            weight: 1,
            interactive: RateLimit::default(),
            batch: RateLimit::default(),
        }
    }
}

/// Router sizing and overload policy.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of engine shards the router owns.
    pub shards: usize,
    /// Configuration applied to every shard's engine (and to respawned
    /// replacements).
    pub engine: EngineConfig,
    /// Bound on each shard's *router-side* queue (ahead of the engine's
    /// own bounded queue).
    pub shard_queue_capacity: usize,
    /// Router-queue fill fraction at which batch admissions are shed.
    pub batch_shed_at: f64,
    /// Router-queue fill fraction at which interactive admissions start
    /// degrading down `degrade_chain`.
    pub degrade_at: f64,
    /// Architectures from most to least expensive; an interactive
    /// request for a chain member is stepped down it under overload
    /// (deeper into the degrade band steps further).
    pub degrade_chain: Vec<String>,
    /// Policy applied to tenants without an explicit entry.
    pub default_policy: TenantPolicy,
    /// Per-tenant policy overrides.
    pub policies: Vec<(String, TenantPolicy)>,
    /// How many times a request may be rerouted to another shard after
    /// its current shard dies under it before it fails as
    /// [`RouterServeError::ShardLost`].
    pub reroute_budget: u32,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub virtual_nodes: usize,
    /// Supervisor probe cadence.
    pub probe_interval: Duration,
    /// Consecutive probes with queued work and no completions before a
    /// shard is declared wedged and drain-and-replaced. Size this well
    /// above the longest legitimate single-request compute time divided
    /// by `probe_interval`, or slow-but-healthy shards will be replaced.
    pub stall_ticks: u32,
    /// Total shard respawns the supervisor will perform per shard.
    pub respawn_budget: u32,
    /// First respawn backoff; doubles per consecutive failed attempt,
    /// with deterministic jitter off `engine.jitter_seed`.
    pub respawn_backoff: Duration,
    /// Upper bound on any single respawn backoff.
    pub respawn_backoff_cap: Duration,
    /// Completions a respawned (half-open) shard must serve before its
    /// breaker closes and it rejoins the ring.
    pub half_open_successes: u64,
    /// Concurrent open video sessions allowed per tenant; the cap
    /// behind [`VideoError::SessionLimit`].
    pub max_sessions_per_tenant: usize,
    /// Shard-level fault injection (`None` = no faults).
    pub shard_chaos: Option<ShardChaosConfig>,
    /// Elastic fleet sizing (`None` = the fixed-`shards` fleet). When
    /// set, the router allocates `max_shards` slots up front, starts
    /// `shards` of them (clamped into `[min_shards, max_shards]`), and
    /// the supervisor grows or shrinks the active set under the
    /// [`AutoscaleConfig`]'s hysteresis/cooldown policy.
    pub autoscale: Option<AutoscaleConfig>,
}

impl RouterConfig {
    /// How long an injected wedge lasts before it auto-releases (if the
    /// stall detector has not replaced the shard first).
    pub(crate) fn shard_chaos_wedge(&self) -> Duration {
        self.shard_chaos
            .as_ref()
            .map(|c| c.wedge)
            .unwrap_or(Duration::from_millis(200))
    }
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            engine: EngineConfig::default(),
            shard_queue_capacity: 128,
            batch_shed_at: 0.5,
            degrade_at: 0.75,
            degrade_chain: vec!["m11".to_string(), "m5".to_string(), "m3".to_string()],
            default_policy: TenantPolicy::default(),
            policies: Vec::new(),
            reroute_budget: 3,
            virtual_nodes: 32,
            probe_interval: Duration::from_millis(5),
            stall_ticks: 400,
            respawn_budget: 8,
            respawn_backoff: Duration::from_millis(5),
            respawn_backoff_cap: Duration::from_millis(200),
            half_open_successes: 1,
            max_sessions_per_tenant: 4,
            shard_chaos: None,
            autoscale: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Error types
// ---------------------------------------------------------------------------

/// Why the router refused a request at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterSubmitError {
    /// The router is draining: shutdown has begun and no shard admits
    /// new work.
    Draining,
    /// The tenant's token bucket for this class is empty.
    Throttled {
        /// The throttled tenant.
        tenant: String,
    },
    /// Batch-class request shed because the target shard is past
    /// `batch_shed_at` (or its queue is full).
    ShedBatch,
    /// Interactive-class request rejected because the target shard's
    /// queue is at its hard bound — the last resort after degrading.
    Overloaded,
    /// No model is registered under this key.
    UnknownModel(ModelKey),
    /// The input failed boundary validation.
    InvalidInput {
        /// What the validator objected to.
        reason: String,
    },
    /// Every shard's circuit breaker is open.
    NoHealthyShard,
    /// A video-session request failed with a typed session error
    /// (unknown or lost session, per-tenant cap, bad ladder geometry).
    Video(VideoError),
}

impl fmt::Display for RouterSubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterSubmitError::Draining => write!(f, "rejected: router draining"),
            RouterSubmitError::Throttled { tenant } => {
                write!(f, "rejected: tenant {tenant} over its rate limit")
            }
            RouterSubmitError::ShedBatch => {
                write!(f, "rejected: batch load shed (shard over threshold)")
            }
            RouterSubmitError::Overloaded => {
                write!(f, "rejected: shard queue full (after degrade)")
            }
            RouterSubmitError::UnknownModel(k) => {
                write!(f, "rejected: model {k} is not registered")
            }
            RouterSubmitError::InvalidInput { reason } => {
                write!(f, "rejected: invalid input: {reason}")
            }
            RouterSubmitError::NoHealthyShard => {
                write!(f, "rejected: no healthy shard (all breakers open)")
            }
            RouterSubmitError::Video(e) => write!(f, "rejected: video session: {e}"),
        }
    }
}

impl std::error::Error for RouterSubmitError {}

/// Why an admitted request did not produce an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterServeError {
    /// The deadline passed before a worker started the request.
    DeadlineExpired,
    /// The model failed to load on the serving shard.
    ModelLoad(String),
    /// The forward pass crashed on every attempt on the serving shard.
    WorkerCrashed(String),
    /// The serving shard died and the reroute budget (or the supply of
    /// live shards) ran out before another shard could take the request.
    ShardLost(String),
    /// The router shut down before the request ran.
    ShuttingDown,
}

impl fmt::Display for RouterServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterServeError::DeadlineExpired => {
                write!(f, "deadline expired before compute started")
            }
            RouterServeError::ModelLoad(m) => write!(f, "model load failed: {m}"),
            RouterServeError::WorkerCrashed(m) => write!(f, "worker crashed: {m}"),
            RouterServeError::ShardLost(m) => write!(f, "shard lost: {m}"),
            RouterServeError::ShuttingDown => {
                write!(f, "router shut down before the request ran")
            }
        }
    }
}

impl std::error::Error for RouterServeError {}

// ---------------------------------------------------------------------------
// Slot / ticket
// ---------------------------------------------------------------------------

enum RSlotState {
    Pending,
    Done(Result<Tensor, RouterServeError>),
    Taken,
}

/// Idempotent outcome slot: the first `claim` wins, later settles are
/// dropped. The winner updates the fleet counters *before* publishing
/// the outcome, so a waiter that returns can immediately read a
/// telemetry snapshot that already includes its own request — which is
/// what makes the fleet ledger exact at every observation point.
pub(crate) struct RouterSlot {
    claimed: std::sync::atomic::AtomicBool,
    state: Mutex<RSlotState>,
    ready: Condvar,
}

impl RouterSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            claimed: std::sync::atomic::AtomicBool::new(false),
            state: Mutex::new(RSlotState::Pending),
            ready: Condvar::new(),
        })
    }

    /// Atomically claims the right to settle this request. Exactly one
    /// caller ever gets `true`.
    fn claim(&self) -> bool {
        !self.claimed.swap(true, Ordering::AcqRel)
    }

    /// Publishes the outcome. Must only be called by the claim winner.
    fn publish(&self, res: Result<Tensor, RouterServeError>) {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        debug_assert!(matches!(*g, RSlotState::Pending), "publish without claim");
        *g = RSlotState::Done(res);
        drop(g);
        self.ready.notify_all();
    }

    fn wait(&self) -> Result<Tensor, RouterServeError> {
        let mut g = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match std::mem::replace(&mut *g, RSlotState::Taken) {
                RSlotState::Done(res) => return res,
                prev @ RSlotState::Pending => {
                    *g = prev;
                    g = self.ready.wait(g).unwrap_or_else(PoisonError::into_inner);
                }
                RSlotState::Taken => unreachable!("RouterTicket::wait consumed twice"),
            }
        }
    }
}

/// Handle for one admitted request; `wait` blocks for its single
/// terminal outcome.
pub struct RouterTicket {
    id: u64,
    slot: Arc<RouterSlot>,
}

impl fmt::Debug for RouterTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RouterTicket")
            .field("id", &self.id)
            .finish()
    }
}

impl RouterTicket {
    /// The router-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request settles.
    pub fn wait(self) -> Result<Tensor, RouterServeError> {
        self.slot.wait()
    }
}

// ---------------------------------------------------------------------------
// Router job + shard queue (two-band weighted-fair)
// ---------------------------------------------------------------------------

pub(crate) struct RouterJob {
    pub(crate) tenant: Arc<str>,
    pub(crate) class: Priority,
    /// Effective key after any admission-time degrade.
    pub(crate) key: ModelKey,
    pub(crate) degraded: bool,
    /// Kept by the router (the engine gets a clone) so a shard death can
    /// reroute the request instead of losing it.
    pub(crate) input: Tensor,
    pub(crate) deadline: Option<Instant>,
    pub(crate) submitted: Instant,
    pub(crate) point: u64,
    pub(crate) reroutes: u32,
    pub(crate) slot: Arc<RouterSlot>,
}

struct TenantLanes {
    weight: u32,
    lanes: [VecDeque<RouterJob>; 2],
    credit: [f64; 2],
}

struct SqInner {
    tenants: HashMap<Arc<str>, TenantLanes>,
    /// Per band: tenants with a non-empty lane in that band, in DRR
    /// order. Invariant (under the queue lock): a tenant is in `ring[b]`
    /// iff its `lanes[b]` is non-empty.
    rings: [VecDeque<Arc<str>>; 2],
    len: usize,
    closed: bool,
}

pub(crate) enum Popped {
    Job(Box<RouterJob>),
    Empty,
    Closed,
}

/// Outcome of a bounded push.
pub(crate) enum SqPush {
    Full,
    Closed,
}

/// Two-band (interactive strictly before batch) deficit-round-robin
/// queue, bounded, with a capacity-exempt `push_front` for requeues and
/// reroutes (bounded externally by the reroute budget).
pub(crate) struct ShardQueue {
    inner: Mutex<SqInner>,
    ready: Condvar,
    capacity: usize,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(SqInner {
                tenants: HashMap::new(),
                rings: [VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SqInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn len(&self) -> usize {
        self.lock().len
    }

    fn enqueue(g: &mut SqInner, job: RouterJob, weight: u32, front: bool) {
        let band = job.class.index();
        let tenant = Arc::clone(&job.tenant);
        let lanes = g
            .tenants
            .entry(Arc::clone(&tenant))
            .or_insert_with(|| TenantLanes {
                weight: weight.max(1),
                lanes: [VecDeque::new(), VecDeque::new()],
                credit: [0.0, 0.0],
            });
        let was_empty = lanes.lanes[band].is_empty();
        if front {
            lanes.lanes[band].push_front(job);
        } else {
            lanes.lanes[band].push_back(job);
        }
        if was_empty {
            if front {
                g.rings[band].push_front(tenant);
            } else {
                g.rings[band].push_back(tenant);
            }
        }
        g.len += 1;
    }

    /// Bounded admission-side push. On failure the job is handed back
    /// (boxed, to keep the `Err` variant pointer-sized) so the caller
    /// can settle or reject it.
    fn push(&self, job: Box<RouterJob>, weight: u32) -> Result<(), (SqPush, Box<RouterJob>)> {
        let mut g = self.lock();
        if g.closed {
            return Err((SqPush::Closed, job));
        }
        if g.len >= self.capacity {
            return Err((SqPush::Full, job));
        }
        Self::enqueue(&mut g, *job, weight, false);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Capacity-exempt head-of-line requeue, used for backpressure
    /// requeues and reroutes of already-admitted work (which must not be
    /// double-penalized by the admission bound). Fails only when the
    /// queue is closed.
    fn push_front(&self, job: Box<RouterJob>, weight: u32) -> Result<(), Box<RouterJob>> {
        let mut g = self.lock();
        if g.closed {
            return Err(job);
        }
        Self::enqueue(&mut g, *job, weight, true);
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Pops the next job by two-band DRR: the interactive band drains
    /// strictly first; within a band, tenants are served round-robin
    /// with per-visit credit proportional to their weight. Once closed,
    /// remaining jobs are still handed out; `Closed` is returned only
    /// when closed *and* empty.
    pub(crate) fn pop(&self, timeout: Duration) -> Popped {
        let start = Instant::now();
        let mut g = self.lock();
        loop {
            for band in 0..2 {
                let SqInner {
                    tenants,
                    rings,
                    len,
                    ..
                } = &mut *g;
                if let Some(job) = Self::take_band(tenants, &mut rings[band], band) {
                    *len -= 1;
                    return Popped::Job(Box::new(job));
                }
            }
            if g.closed {
                return Popped::Closed;
            }
            let waited = start.elapsed();
            if waited >= timeout {
                return Popped::Empty;
            }
            let (ng, _) = self
                .ready
                .wait_timeout(g, timeout - waited)
                .unwrap_or_else(PoisonError::into_inner);
            g = ng;
        }
    }

    fn take_band(
        tenants: &mut HashMap<Arc<str>, TenantLanes>,
        ring: &mut VecDeque<Arc<str>>,
        band: usize,
    ) -> Option<RouterJob> {
        loop {
            let head = ring.front()?.clone();
            let Some(l) = tenants.get_mut(&head) else {
                ring.pop_front();
                continue;
            };
            if l.lanes[band].is_empty() {
                l.credit[band] = 0.0;
                ring.pop_front();
                continue;
            }
            let w = f64::from(l.weight.max(1));
            if l.credit[band] < 1.0 {
                l.credit[band] += w;
            }
            l.credit[band] -= 1.0;
            let job = l.lanes[band].pop_front().expect("lane checked non-empty");
            if l.lanes[band].is_empty() {
                l.credit[band] = 0.0;
                ring.pop_front();
            } else if l.credit[band] < 1.0 {
                let t = ring.pop_front().expect("ring checked non-empty");
                ring.push_back(t);
            }
            return Some(job);
        }
    }

    fn close(&self) {
        let mut g = self.lock();
        g.closed = true;
        drop(g);
        self.ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Fleet-scope event counters. The ledger invariant —
/// `admitted_interactive + admitted_batch == completed + Σ failed_*` —
/// holds after any chaos schedule because every admitted request settles
/// its idempotent slot exactly once and only the winning transition
/// counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterCounters {
    /// Interactive requests admitted (queued on a shard).
    pub admitted_interactive: u64,
    /// Batch requests admitted.
    pub admitted_batch: u64,
    /// Rejections because the router was draining.
    pub rejected_draining: u64,
    /// Rejections by a tenant token bucket.
    pub throttled: u64,
    /// Batch requests shed by the overload policy.
    pub shed_batch: u64,
    /// Interactive requests rejected at the hard queue bound.
    pub rejected_interactive: u64,
    /// Rejections because every breaker was open.
    pub rejected_no_shard: u64,
    /// Rejections by input validation.
    pub rejected_invalid: u64,
    /// Rejections for unregistered models.
    pub rejected_unknown_model: u64,
    /// Interactive admissions degraded to a cheaper architecture.
    pub degraded: u64,
    /// Requests served (including degraded ones).
    pub completed: u64,
    /// Served requests that had been degraded at admission.
    pub degraded_completed: u64,
    /// Admitted requests whose deadline expired before compute.
    pub failed_deadline: u64,
    /// Admitted requests that failed on model load.
    pub failed_model_load: u64,
    /// Admitted requests that crashed workers past the retry budget.
    pub failed_crashed: u64,
    /// Admitted requests that ran out of shards or reroute budget.
    pub failed_shard_lost: u64,
    /// Admitted requests overtaken by router shutdown.
    pub failed_shutdown: u64,
    /// Requests moved to another shard after their shard died.
    pub rerouted: u64,
    /// Head-of-line requeues after an engine-side queue-full race.
    pub requeued_backpressure: u64,
    /// Whole-shard kills injected by chaos.
    pub shard_kills: u64,
    /// Shard wedges injected by chaos.
    pub shard_wedges: u64,
    /// Wedges detected by the stall probe (drain-and-replace).
    pub wedges_detected: u64,
    /// Respawn attempts that failed (chaos-injected).
    pub respawn_failures: u64,
    /// Successful shard respawns.
    pub shard_respawns: u64,
    /// Breaker transitions to open.
    pub breaker_opens: u64,
    /// Breaker transitions to half-open (respawn completed).
    pub breaker_half_opens: u64,
    /// Breaker transitions back to closed (half-open probe succeeded).
    pub breaker_closes: u64,
    /// Autoscale scale-up transitions executed (a dormant slot spawned
    /// and joined the ring).
    pub scale_up_events: u64,
    /// Autoscale scale-down transitions completed (a drained slot
    /// retired off the ring).
    pub scale_down_events: u64,
    /// Keys (out of a fixed deterministic sample) observed to change
    /// owner across ring edits — the measured bounded-rebalance cost.
    pub keys_rebalanced: u64,
    /// Plan-cache kernel compilations avoided because the shared
    /// per-process store already held the collapsed kernels (how warm
    /// replication made fresh shards).
    pub replication_warm_hits: u64,
    /// Sustained-pressure windows that wanted one more shard while the
    /// fleet was already at `max_shards`.
    pub autoscale_blocked_at_max: u64,
}

impl RouterCounters {
    /// Admissions (terminal outcomes owed).
    pub fn admitted(&self) -> u64 {
        self.admitted_interactive + self.admitted_batch
    }

    /// Terminal outcomes delivered.
    pub fn settled(&self) -> u64 {
        self.completed
            + self.failed_deadline
            + self.failed_model_load
            + self.failed_crashed
            + self.failed_shard_lost
            + self.failed_shutdown
    }
}

struct TenantStats {
    latency: Histogram,
    completed: u64,
    failed: u64,
}

struct RtInner {
    counters: RouterCounters,
    tenants: HashMap<Arc<str>, TenantStats>,
    started: Instant,
}

/// Single-lock fleet telemetry: every snapshot reads all counters and
/// per-tenant stats in one pass, so concurrent snapshots are never torn.
pub struct RouterTelemetry {
    inner: Mutex<RtInner>,
}

impl RouterTelemetry {
    fn new() -> Self {
        Self {
            inner: Mutex::new(RtInner {
                counters: RouterCounters::default(),
                tenants: HashMap::new(),
                started: Instant::now(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RtInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` with the counters under the lock.
    pub fn counters<R>(&self, f: impl FnOnce(&mut RouterCounters) -> R) -> R {
        f(&mut self.lock().counters)
    }

    /// Records a terminal outcome (counters + per-tenant stats) in one
    /// locked pass. Called only by the winning slot transition.
    fn settle_outcome(
        &self,
        tenant: &Arc<str>,
        outcome: &SettleKind,
        latency: Duration,
        degraded: bool,
    ) {
        let mut g = self.lock();
        let t = g
            .tenants
            .entry(Arc::clone(tenant))
            .or_insert_with(|| TenantStats {
                latency: Histogram::new(),
                completed: 0,
                failed: 0,
            });
        match outcome {
            SettleKind::Ok => {
                t.completed += 1;
                t.latency.record(latency);
            }
            _ => t.failed += 1,
        }
        match outcome {
            SettleKind::Ok => {
                g.counters.completed += 1;
                if degraded {
                    g.counters.degraded_completed += 1;
                }
            }
            SettleKind::Deadline => g.counters.failed_deadline += 1,
            SettleKind::ModelLoad => g.counters.failed_model_load += 1,
            SettleKind::Crashed => g.counters.failed_crashed += 1,
            SettleKind::ShardLost => g.counters.failed_shard_lost += 1,
            SettleKind::Shutdown => g.counters.failed_shutdown += 1,
        }
    }

    /// One consistent read of everything.
    pub fn snapshot(&self) -> RouterSnapshot {
        let g = self.lock();
        let mut tenants: Vec<TenantSummary> = g
            .tenants
            .iter()
            .map(|(name, s)| TenantSummary {
                tenant: name.to_string(),
                completed: s.completed,
                failed: s.failed,
                mean_ms: s.latency.mean_ms(),
                p50_ms: s.latency.quantile_ms(0.50),
                p95_ms: s.latency.quantile_ms(0.95),
                p99_ms: s.latency.quantile_ms(0.99),
            })
            .collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        RouterSnapshot {
            elapsed: g.started.elapsed(),
            counters: g.counters,
            tenants,
        }
    }
}

enum SettleKind {
    Ok,
    Deadline,
    ModelLoad,
    Crashed,
    ShardLost,
    Shutdown,
}

/// Per-tenant latency/outcome summary inside a [`RouterSnapshot`].
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Tenant name.
    pub tenant: String,
    /// Requests served for this tenant.
    pub completed: u64,
    /// Requests failed for this tenant.
    pub failed: u64,
    /// Mean end-to-end latency of completions, ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th percentile latency, ms.
    pub p95_ms: f64,
    /// 99th percentile latency, ms.
    pub p99_ms: f64,
}

/// A consistent point-in-time read of the router's telemetry.
#[derive(Debug, Clone)]
pub struct RouterSnapshot {
    /// Time since the router started.
    pub elapsed: Duration,
    /// Fleet counters.
    pub counters: RouterCounters,
    /// Per-tenant summaries, sorted by tenant name.
    pub tenants: Vec<TenantSummary>,
}

impl RouterSnapshot {
    /// Checks the fleet ledger: every admission settled exactly once.
    /// Returns human-readable problems (empty = consistent).
    pub fn reconcile(&self) -> Vec<String> {
        let c = &self.counters;
        let mut problems = Vec::new();
        if c.admitted() != c.settled() {
            problems.push(format!(
                "admitted {} != settled {} (completed {} + deadline {} + model_load {} + crashed {} + shard_lost {} + shutdown {})",
                c.admitted(),
                c.settled(),
                c.completed,
                c.failed_deadline,
                c.failed_model_load,
                c.failed_crashed,
                c.failed_shard_lost,
                c.failed_shutdown,
            ));
        }
        if c.degraded_completed > c.completed {
            problems.push(format!(
                "degraded_completed {} > completed {}",
                c.degraded_completed, c.completed
            ));
        }
        let tenant_completed: u64 = self.tenants.iter().map(|t| t.completed).sum();
        if tenant_completed != c.completed {
            problems.push(format!(
                "per-tenant completed {} != fleet completed {}",
                tenant_completed, c.completed
            ));
        }
        problems
    }

    /// Serializes counters and per-tenant summaries as JSON.
    pub fn to_json(&self) -> String {
        let c = &self.counters;
        let counters = crate::json::JsonObject::new()
            .int("admitted_interactive", c.admitted_interactive)
            .int("admitted_batch", c.admitted_batch)
            .int("rejected_draining", c.rejected_draining)
            .int("throttled", c.throttled)
            .int("shed_batch", c.shed_batch)
            .int("rejected_interactive", c.rejected_interactive)
            .int("rejected_no_shard", c.rejected_no_shard)
            .int("rejected_invalid", c.rejected_invalid)
            .int("rejected_unknown_model", c.rejected_unknown_model)
            .int("degraded", c.degraded)
            .int("completed", c.completed)
            .int("degraded_completed", c.degraded_completed)
            .int("failed_deadline", c.failed_deadline)
            .int("failed_model_load", c.failed_model_load)
            .int("failed_crashed", c.failed_crashed)
            .int("failed_shard_lost", c.failed_shard_lost)
            .int("failed_shutdown", c.failed_shutdown)
            .int("rerouted", c.rerouted)
            .int("requeued_backpressure", c.requeued_backpressure)
            .int("shard_kills", c.shard_kills)
            .int("shard_wedges", c.shard_wedges)
            .int("wedges_detected", c.wedges_detected)
            .int("respawn_failures", c.respawn_failures)
            .int("shard_respawns", c.shard_respawns)
            .int("breaker_opens", c.breaker_opens)
            .int("breaker_half_opens", c.breaker_half_opens)
            .int("breaker_closes", c.breaker_closes)
            .int("scale_up_events", c.scale_up_events)
            .int("scale_down_events", c.scale_down_events)
            .int("keys_rebalanced", c.keys_rebalanced)
            .int("replication_warm_hits", c.replication_warm_hits)
            .int("autoscale_blocked_at_max", c.autoscale_blocked_at_max)
            .finish();
        let tenants: Vec<String> = self
            .tenants
            .iter()
            .map(|t| {
                crate::json::JsonObject::new()
                    .str("tenant", &t.tenant)
                    .int("completed", t.completed)
                    .int("failed", t.failed)
                    .num("mean_ms", t.mean_ms)
                    .num("p50_ms", t.p50_ms)
                    .num("p95_ms", t.p95_ms)
                    .num("p99_ms", t.p99_ms)
                    .finish()
            })
            .collect();
        crate::json::JsonObject::new()
            .num("elapsed_s", self.elapsed.as_secs_f64())
            .raw("counters", &counters)
            .raw("tenants", &crate::json::array(tenants))
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Shard + core
// ---------------------------------------------------------------------------

pub(crate) const BREAKER_CLOSED: u8 = 0;
pub(crate) const BREAKER_OPEN: u8 = 1;
pub(crate) const BREAKER_HALF_OPEN: u8 = 2;

/// Circuit-breaker state of one shard, for introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Serving; on the ring.
    Closed,
    /// Dead or dying; all its keys route elsewhere.
    Open,
    /// Freshly respawned; takes traffic, closes after
    /// `half_open_successes` completions.
    HalfOpen,
}

fn breaker_state(v: u8) -> BreakerState {
    match v {
        BREAKER_OPEN => BreakerState::Open,
        BREAKER_HALF_OPEN => BreakerState::HalfOpen,
        _ => BreakerState::Closed,
    }
}

/// Point-in-time view of one shard, for tests and operators.
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// Shard index.
    pub index: usize,
    /// Circuit-breaker state.
    pub breaker: BreakerState,
    /// Engine-reported health.
    pub health: Health,
    /// Jobs waiting in the router-side queue.
    pub queued: usize,
    /// Jobs waiting in the engine's own queue.
    pub engine_depth: usize,
    /// Respawns performed on this shard so far.
    pub respawns_used: u32,
    /// Engine generation (bumped on every replace).
    pub generation: u64,
    /// True while the autoscaler is draining this shard for retirement.
    pub draining: bool,
}

/// One fleet slot. `engine: None` means the slot is dormant — allocated
/// for elastic headroom but not running; its breaker is held open so no
/// routing path considers it. `draining` marks a scale-down victim that
/// is still flushing work: it stays off the ring and out of rendezvous
/// fallbacks, but its breaker stays closed so its own dispatcher keeps
/// feeding its engine.
pub(crate) struct Shard {
    pub(crate) engine: RwLock<Option<Arc<Engine>>>,
    pub(crate) queue: ShardQueue,
    pub(crate) breaker: AtomicU8,
    pub(crate) draining: AtomicBool,
    pub(crate) respawns_used: AtomicU64,
    pub(crate) generation: AtomicU64,
}

impl Shard {
    /// The slot's engine, if it is running one.
    pub(crate) fn engine(&self) -> Option<Arc<Engine>> {
        self.engine
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

impl Bucket {
    fn try_take(&mut self, limit: &RateLimit, now: Instant) -> bool {
        if limit.rate_per_sec.is_infinite() {
            return true;
        }
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * limit.rate_per_sec).min(limit.burst.max(1.0));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

const ROUTER_RUNNING: u8 = 0;
const ROUTER_DRAINING: u8 = 1;
const ROUTER_STOPPED: u8 = 2;

const RDV_SALT: u64 = 0xB01D_FACE_CAFE_D00D;

pub(crate) struct RouterCore {
    pub(crate) cfg: RouterConfig,
    pub(crate) registry: Arc<ModelRegistry>,
    pub(crate) shards: Vec<Shard>,
    /// The consistent-hash ring of *active* shards. Behind a lock so the
    /// autoscaler can edit membership; reads are lock-then-lookup.
    pub(crate) ring: RwLock<HashRing>,
    pub(crate) state: AtomicU8,
    drain_deadline: Mutex<Option<Instant>>,
    pub(crate) telemetry: RouterTelemetry,
    pub(crate) chaos: Option<ShardChaos>,
    pub(crate) jitter_draws: AtomicU64,
    /// The process-wide collapsed-kernel store every shard engine warms
    /// from (hot-plan replication; `replication_warm_hits`).
    pub(crate) shared_plans: Arc<SharedPlanCache>,
    buckets: Mutex<HashMap<(Arc<str>, usize), Bucket>>,
    policies: HashMap<String, TenantPolicy>,
    ids: AtomicU64,
    /// Open video sessions: router-level id → shard pin. Sessions are
    /// pinned to the shard (and engine generation) that opened them; a
    /// replaced shard loses its session state, surfaced as
    /// [`VideoError::SessionLost`] on next touch. A scale-down instead
    /// *migrates* pinned sessions (state and all) to a live shard before
    /// the victim retires — see `crate::supervisor`.
    pub(crate) video_sessions: Mutex<HashMap<u64, VideoPin>>,
    video_ids: AtomicU64,
}

/// Where one video session lives in the fleet.
pub(crate) struct VideoPin {
    pub(crate) tenant: Arc<str>,
    pub(crate) shard: usize,
    /// Shard generation at open; a mismatch means the engine (and the
    /// session state inside it) was replaced.
    pub(crate) generation: u64,
    /// The session's id inside that shard's engine.
    pub(crate) engine_session: u64,
}

impl RouterCore {
    pub(crate) fn running(&self) -> bool {
        self.state.load(Ordering::Acquire) == ROUTER_RUNNING
    }

    fn drain_deadline_passed(&self) -> bool {
        if self.running() {
            return false;
        }
        let g = self
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        g.is_some_and(|d| Instant::now() >= d)
    }

    fn policy_for(&self, tenant: &str) -> &TenantPolicy {
        self.policies
            .get(tenant)
            .unwrap_or(&self.cfg.default_policy)
    }

    /// Whether slot `i` may take *new* routing decisions: breaker not
    /// open and not a scale-down victim mid-drain.
    fn routable(&self, i: usize) -> bool {
        self.shards[i].breaker.load(Ordering::Acquire) != BREAKER_OPEN
            && !self.shards[i].draining.load(Ordering::Acquire)
    }

    /// Ring successor of `point` (the consistent-hash primary), or
    /// `None` on an empty ring.
    fn primary_shard(&self, point: u64) -> Option<usize> {
        self.ring
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .owner(point)
    }

    /// Rendezvous (highest-random-weight) draw over routable shards,
    /// optionally excluding one. Stable per `point`: the same request
    /// keys keep landing on the same fallback.
    pub(crate) fn rendezvous(&self, point: u64, exclude: Option<usize>) -> Option<usize> {
        (0..self.shards.len())
            .filter(|&i| Some(i) != exclude)
            .filter(|&i| self.routable(i))
            .max_by_key(|&i| splitmix64(point ^ splitmix64(RDV_SALT ^ i as u64)))
    }

    fn pick_shard(&self, point: u64) -> Option<usize> {
        let primary = self.primary_shard(point)?;
        if self.routable(primary) {
            return Some(primary);
        }
        self.rendezvous(point, Some(primary))
    }

    /// Resolves a video-session pin to `(shard, engine_session)`. A pin
    /// whose shard generation moved on is pruned here: the replacement
    /// engine never held the session's hashes or HR plane, so the
    /// session is typed-lost rather than silently restarted.
    fn resolve_video_pin(&self, id: u64) -> Result<(usize, u64), VideoError> {
        let mut sessions = self
            .video_sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let pin = sessions.get(&id).ok_or(VideoError::UnknownSession(id))?;
        let live = self.shards[pin.shard].generation.load(Ordering::Acquire) == pin.generation;
        if !live {
            sessions.remove(&id);
            return Err(VideoError::SessionLost);
        }
        Ok((pin.shard, pin.engine_session))
    }

    fn shard_engine(&self, idx: usize) -> Option<Arc<Engine>> {
        self.shards[idx].engine()
    }

    /// Steps `key` down the degrade chain in proportion to how deep into
    /// the degrade band the shard's queue is. Returns the first cheaper
    /// registered architecture, or `None` when the key is not on the
    /// chain (or nothing cheaper is registered).
    fn degrade_key(&self, key: &ModelKey, fill: f64) -> Option<ModelKey> {
        let chain = &self.cfg.degrade_chain;
        let pos = chain.iter().position(|a| *a == key.arch)?;
        let steps_available = chain.len() - 1 - pos;
        if steps_available == 0 {
            return None;
        }
        let span = (1.0 - self.cfg.degrade_at).max(f64::EPSILON);
        let frac = ((fill - self.cfg.degrade_at) / span).clamp(0.0, 1.0);
        let step = ((frac * steps_available as f64).ceil() as usize).clamp(1, steps_available);
        // Walk from the proportional target further down until a
        // registered architecture is found.
        for arch in &chain[pos + step..] {
            let candidate = ModelKey::new(arch, key.scale);
            if self.registry.contains(&candidate) {
                return Some(candidate);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Settle / dispatch / reroute
// ---------------------------------------------------------------------------

fn settle(core: &RouterCore, job: &RouterJob, res: Result<Tensor, RouterServeError>) {
    let kind = match &res {
        Ok(_) => SettleKind::Ok,
        Err(RouterServeError::DeadlineExpired) => SettleKind::Deadline,
        Err(RouterServeError::ModelLoad(_)) => SettleKind::ModelLoad,
        Err(RouterServeError::WorkerCrashed(_)) => SettleKind::Crashed,
        Err(RouterServeError::ShardLost(_)) => SettleKind::ShardLost,
        Err(RouterServeError::ShuttingDown) => SettleKind::Shutdown,
    };
    if !job.slot.claim() {
        return;
    }
    core.telemetry
        .settle_outcome(&job.tenant, &kind, job.submitted.elapsed(), job.degraded);
    job.slot.publish(res);
}

/// Moves a job whose shard died to a live shard, or fails it with a
/// typed error. Never called while the router is running normally and
/// the shard is healthy.
fn reroute_or_fail(core: &Arc<RouterCore>, from: usize, mut job: RouterJob) {
    if !core.running() {
        settle(core, &job, Err(RouterServeError::ShuttingDown));
        return;
    }
    if job.reroutes >= core.cfg.reroute_budget {
        settle(
            core,
            &job,
            Err(RouterServeError::ShardLost(format!(
                "reroute budget ({}) exhausted",
                core.cfg.reroute_budget
            ))),
        );
        return;
    }
    job.reroutes += 1;
    let target = core.rendezvous(job.point, Some(from)).or_else(|| {
        // Last resort: the original shard, if it came back.
        core.routable(from).then_some(from)
    });
    let Some(target) = target else {
        settle(
            core,
            &job,
            Err(RouterServeError::ShardLost(
                "no live shard to reroute to".to_string(),
            )),
        );
        return;
    };
    let weight = core.policy_for(&job.tenant).weight;
    core.telemetry.counters(|c| c.rerouted += 1);
    if let Err(job) = core.shards[target].queue.push_front(Box::new(job), weight) {
        settle(core, &job, Err(RouterServeError::ShuttingDown));
    }
}

/// Terminal-outcome hook invoked by the engine for every forwarded job.
fn on_engine_done(
    core: &Arc<RouterCore>,
    shard_idx: usize,
    job: RouterJob,
    res: Result<Tensor, ServeError>,
) {
    match res {
        Ok(t) => settle(core, &job, Ok(t)),
        Err(ServeError::DeadlineExpired) => {
            settle(core, &job, Err(RouterServeError::DeadlineExpired))
        }
        Err(ServeError::ModelLoad(m)) => settle(core, &job, Err(RouterServeError::ModelLoad(m))),
        Err(ServeError::WorkerCrashed(m)) => {
            settle(core, &job, Err(RouterServeError::WorkerCrashed(m)))
        }
        Err(
            ServeError::ShuttingDown
            | ServeError::Rejected(SubmitError::Draining | SubmitError::ShuttingDown),
        ) => {
            // The shard died (or was killed) under this request: move it,
            // don't lose it.
            reroute_or_fail(core, shard_idx, job);
        }
        Err(ServeError::Rejected(SubmitError::QueueFull { .. })) => {
            // Lost the depth-check race against other dispatch paths;
            // requeue at the head and let the dispatcher pace on depth.
            core.telemetry.counters(|c| c.requeued_backpressure += 1);
            let weight = core.policy_for(&job.tenant).weight;
            if let Err(job) = core.shards[shard_idx]
                .queue
                .push_front(Box::new(job), weight)
            {
                settle(core, &job, Err(RouterServeError::ShuttingDown));
            }
        }
        Err(ServeError::Rejected(
            e @ (SubmitError::UnknownModel(_)
            | SubmitError::InvalidInput { .. }
            | SubmitError::UnknownSession(_)),
        )) => {
            // All validated at router admission (and image jobs never
            // carry a session), so this is unreachable unless the
            // registry changed underneath; fail typed rather than panic
            // so no ticket ever hangs.
            settle(
                core,
                &job,
                Err(RouterServeError::ShardLost(format!("unroutable: {e}"))),
            );
        }
        Err(ServeError::Video(e)) => {
            // Image jobs never produce video-session errors; treat an
            // impossible outcome as a lost shard, typed.
            settle(
                core,
                &job,
                Err(RouterServeError::ShardLost(format!("unroutable: {e}"))),
            );
        }
    }
}

fn dispatch_one(core: &Arc<RouterCore>, shard_idx: usize, job: RouterJob) {
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        settle(core, &job, Err(RouterServeError::DeadlineExpired));
        return;
    }
    let shard = &core.shards[shard_idx];
    if shard.breaker.load(Ordering::Acquire) == BREAKER_OPEN {
        reroute_or_fail(core, shard_idx, job);
        return;
    }
    // Backpressure pacing: wait for engine-queue headroom instead of
    // hammering its admission edge.
    let engine = loop {
        let Some(engine) = shard.engine() else {
            // The slot retired (scale-down) with this job still queued.
            reroute_or_fail(core, shard_idx, job);
            return;
        };
        if engine.queue_depth() < core.cfg.engine.queue_capacity {
            break engine;
        }
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            settle(core, &job, Err(RouterServeError::DeadlineExpired));
            return;
        }
        if shard.breaker.load(Ordering::Acquire) == BREAKER_OPEN {
            reroute_or_fail(core, shard_idx, job);
            return;
        }
        if core.drain_deadline_passed() {
            settle(core, &job, Err(RouterServeError::ShuttingDown));
            return;
        }
        std::thread::sleep(Duration::from_micros(500));
    };
    if core.drain_deadline_passed() {
        settle(core, &job, Err(RouterServeError::ShuttingDown));
        return;
    }
    let key = job.key.clone();
    let input = job.input.clone();
    let deadline = job.deadline;
    let core2 = Arc::clone(core);
    let hook: Completion = Box::new(move |r| on_engine_done(&core2, shard_idx, job, r));
    engine.submit_with(&key, input, deadline, hook);
}

fn dispatcher_loop(core: Arc<RouterCore>, shard_idx: usize) {
    loop {
        match core.shards[shard_idx].queue.pop(Duration::from_millis(5)) {
            Popped::Empty => continue,
            Popped::Closed => break,
            Popped::Job(job) => dispatch_one(&core, shard_idx, *job),
        }
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// What [`Router::shutdown`] accomplished within its deadline.
#[derive(Debug, Clone, Copy)]
pub struct RouterShutdownReport {
    /// Router-queued jobs answered with [`RouterServeError::ShuttingDown`]
    /// by the shutdown path itself (drained dispatchers settle their own).
    pub dropped: u64,
    /// True when the supervisor and every dispatcher joined in time.
    pub joined: bool,
    /// Wall-clock time the shutdown took.
    pub elapsed: Duration,
}

struct RouterThreads {
    dispatchers: Vec<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

/// The fleet front door. See the module docs for the architecture.
pub struct Router {
    core: Arc<RouterCore>,
    threads: Mutex<Option<RouterThreads>>,
}

impl Router {
    /// Builds the shard fleet and starts one dispatcher per slot plus
    /// the shard supervisor. With `cfg.autoscale` set, `max_shards`
    /// slots are allocated (each with its queue and dispatcher, so
    /// scale-up never spawns threads) but only the initial `shards` run
    /// engines; the rest stay dormant behind open breakers.
    pub fn new(cfg: RouterConfig, registry: Arc<ModelRegistry>) -> Self {
        let mut cfg = cfg;
        cfg.shards = cfg.shards.max(1);
        cfg.virtual_nodes = cfg.virtual_nodes.max(1);
        cfg.batch_shed_at = cfg.batch_shed_at.clamp(0.0, 1.0);
        cfg.degrade_at = cfg.degrade_at.clamp(0.0, 1.0);
        cfg.autoscale = cfg.autoscale.map(|a| {
            crate::autoscale::AutoscaleController::new(a)
                .config()
                .clone()
        });
        let mut slots = cfg.shards;
        if let Some(a) = &cfg.autoscale {
            cfg.shards = cfg.shards.clamp(a.min_shards, a.max_shards);
            slots = a.max_shards.max(cfg.shards);
        }
        // Hot-plan replication: every shard engine (initial, respawned,
        // or scaled-up) warms its collapsed kernels from one shared
        // per-process store unless the caller injected their own.
        let shared_plans = cfg
            .engine
            .shared_plans
            .clone()
            .unwrap_or_else(|| Arc::new(SharedPlanCache::new()));
        cfg.engine.shared_plans = Some(Arc::clone(&shared_plans));
        let shards: Vec<Shard> =
            (0..slots)
                .map(|i| {
                    let active = i < cfg.shards;
                    Shard {
                        engine: RwLock::new(active.then(|| {
                            Arc::new(Engine::new(cfg.engine.clone(), Arc::clone(&registry)))
                        })),
                        queue: ShardQueue::new(cfg.shard_queue_capacity),
                        breaker: AtomicU8::new(if active { BREAKER_CLOSED } else { BREAKER_OPEN }),
                        draining: AtomicBool::new(false),
                        respawns_used: AtomicU64::new(0),
                        generation: AtomicU64::new(0),
                    }
                })
                .collect();
        let mut ring = HashRing::new(cfg.virtual_nodes);
        for s in 0..cfg.shards {
            ring.add_shard(s);
        }
        let policies = cfg
            .policies
            .iter()
            .map(|(t, p)| (t.clone(), p.clone()))
            .collect();
        let chaos = cfg.shard_chaos.clone().map(ShardChaos::new);
        let core = Arc::new(RouterCore {
            cfg,
            registry,
            shards,
            ring: RwLock::new(ring),
            state: AtomicU8::new(ROUTER_RUNNING),
            drain_deadline: Mutex::new(None),
            telemetry: RouterTelemetry::new(),
            chaos,
            jitter_draws: AtomicU64::new(0),
            shared_plans,
            buckets: Mutex::new(HashMap::new()),
            policies,
            ids: AtomicU64::new(0),
            video_sessions: Mutex::new(HashMap::new()),
            video_ids: AtomicU64::new(1),
        });
        let dispatchers = (0..core.shards.len())
            .map(|i| {
                let c = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("router-dispatch-{i}"))
                    .spawn(move || dispatcher_loop(c, i))
                    .expect("spawn dispatcher")
            })
            .collect();
        let sup = {
            let c = Arc::clone(&core);
            std::thread::Builder::new()
                .name("router-supervisor".to_string())
                .spawn(move || supervisor_loop(c))
                .expect("spawn supervisor")
        };
        Router {
            core,
            threads: Mutex::new(Some(RouterThreads {
                dispatchers,
                supervisor: Some(sup),
            })),
        }
    }

    /// Admits one request for `tenant` at priority `class`, or rejects
    /// it with a typed reason. `deadline` is relative to now. On success
    /// the returned ticket settles exactly once.
    pub fn submit(
        &self,
        tenant: &str,
        class: Priority,
        key: &ModelKey,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<RouterTicket, RouterSubmitError> {
        let core = &self.core;
        if !core.running() {
            core.telemetry.counters(|c| c.rejected_draining += 1);
            return Err(RouterSubmitError::Draining);
        }
        if let Err(reason) = validate_input(&input) {
            core.telemetry.counters(|c| c.rejected_invalid += 1);
            return Err(RouterSubmitError::InvalidInput { reason });
        }
        if !core.registry.contains(key) {
            core.telemetry.counters(|c| c.rejected_unknown_model += 1);
            return Err(RouterSubmitError::UnknownModel(key.clone()));
        }
        let tenant: Arc<str> = Arc::from(tenant);
        let policy = core.policy_for(&tenant).clone();
        let now = Instant::now();
        let limit = match class {
            Priority::Interactive => policy.interactive,
            Priority::Batch => policy.batch,
        };
        {
            let mut buckets = core.buckets.lock().unwrap_or_else(PoisonError::into_inner);
            let bucket = buckets
                .entry((Arc::clone(&tenant), class.index()))
                .or_insert_with(|| Bucket {
                    tokens: limit.burst,
                    last: now,
                });
            if !bucket.try_take(&limit, now) {
                drop(buckets);
                core.telemetry.counters(|c| c.throttled += 1);
                return Err(RouterSubmitError::Throttled {
                    tenant: tenant.to_string(),
                });
            }
        }
        let point = route_point(&tenant, key);
        let Some(shard_idx) = core.pick_shard(point) else {
            core.telemetry.counters(|c| c.rejected_no_shard += 1);
            return Err(RouterSubmitError::NoHealthyShard);
        };
        let shard = &core.shards[shard_idx];
        let fill = shard.queue.len() as f64 / core.cfg.shard_queue_capacity as f64;
        let mut effective = key.clone();
        let mut degraded = false;
        match class {
            Priority::Batch => {
                if fill >= core.cfg.batch_shed_at {
                    core.telemetry.counters(|c| c.shed_batch += 1);
                    return Err(RouterSubmitError::ShedBatch);
                }
            }
            Priority::Interactive => {
                if fill >= core.cfg.degrade_at {
                    if let Some(cheaper) = core.degrade_key(key, fill) {
                        effective = cheaper;
                        degraded = true;
                    }
                }
            }
        }
        let id = core.ids.fetch_add(1, Ordering::Relaxed);
        let slot = RouterSlot::new();
        let job = RouterJob {
            tenant: Arc::clone(&tenant),
            class,
            key: effective,
            degraded,
            input,
            deadline: deadline.map(|d| now + d),
            submitted: now,
            point,
            reroutes: 0,
            slot: Arc::clone(&slot),
        };
        match shard.queue.push(Box::new(job), policy.weight) {
            Ok(()) => {
                core.telemetry.counters(|c| {
                    match class {
                        Priority::Interactive => c.admitted_interactive += 1,
                        Priority::Batch => c.admitted_batch += 1,
                    }
                    if degraded {
                        c.degraded += 1;
                    }
                });
                Ok(RouterTicket { id, slot })
            }
            Err((SqPush::Closed, _)) => {
                core.telemetry.counters(|c| c.rejected_draining += 1);
                Err(RouterSubmitError::Draining)
            }
            Err((SqPush::Full, _)) => match class {
                Priority::Batch => {
                    core.telemetry.counters(|c| c.shed_batch += 1);
                    Err(RouterSubmitError::ShedBatch)
                }
                Priority::Interactive => {
                    core.telemetry.counters(|c| c.rejected_interactive += 1);
                    Err(RouterSubmitError::Overloaded)
                }
            },
        }
    }

    /// Opens a streaming video session for `tenant`, pinned to the shard
    /// its `(tenant, top rung)` pair routes to. Frames fed to the
    /// returned id land on that shard for the session's lifetime —
    /// temporal reuse state (tile hashes, the cached HR plane) lives in
    /// exactly one engine. If the shard is later replaced, the state is
    /// gone and the session settles as [`VideoError::SessionLost`] on
    /// its next touch; reopen to continue.
    ///
    /// # Errors
    ///
    /// [`RouterSubmitError::Video`] wrapping [`VideoError::SessionLimit`]
    /// at the per-tenant cap or the session geometry errors;
    /// [`RouterSubmitError::NoHealthyShard`] / `Draining` for fleet
    /// conditions.
    pub fn open_video_session(
        &self,
        tenant: &str,
        spec: VideoSessionSpec,
    ) -> Result<u64, RouterSubmitError> {
        let core = &self.core;
        if !core.running() {
            core.telemetry.counters(|c| c.rejected_draining += 1);
            return Err(RouterSubmitError::Draining);
        }
        let Some(top) = spec.ladder.last().cloned() else {
            return Err(RouterSubmitError::Video(VideoError::EmptyLadder));
        };
        let tenant: Arc<str> = Arc::from(tenant);
        {
            // Per-tenant cap. Pins whose shard was replaced are pruned
            // first — dead sessions must not hold cap space.
            let mut sessions = core
                .video_sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sessions.retain(|_, pin| {
                core.shards[pin.shard].generation.load(Ordering::Acquire) == pin.generation
            });
            let open = sessions.values().filter(|p| p.tenant == tenant).count();
            let limit = core.cfg.max_sessions_per_tenant;
            if open >= limit {
                return Err(RouterSubmitError::Video(VideoError::SessionLimit { limit }));
            }
        }
        let point = route_point(&tenant, &top);
        let Some(shard_idx) = core.pick_shard(point) else {
            core.telemetry.counters(|c| c.rejected_no_shard += 1);
            return Err(RouterSubmitError::NoHealthyShard);
        };
        let generation = core.shards[shard_idx].generation.load(Ordering::Acquire);
        let Some(engine) = core.shard_engine(shard_idx) else {
            // pick_shard only returns routable slots; losing the engine
            // between pick and open is a retire race.
            core.telemetry.counters(|c| c.rejected_no_shard += 1);
            return Err(RouterSubmitError::NoHealthyShard);
        };
        let engine_session = engine
            .open_video_session(spec)
            .map_err(RouterSubmitError::Video)?;
        let id = core.video_ids.fetch_add(1, Ordering::Relaxed);
        core.video_sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(
                id,
                VideoPin {
                    tenant,
                    shard: shard_idx,
                    generation,
                    engine_session,
                },
            );
        Ok(id)
    }

    /// Feeds frame `seq` to an open session. Frames bypass the weighted
    /// fair queue — they are pinned to one shard and settle through the
    /// engine's own bounded queue (backpressure surfaces as
    /// [`RouterSubmitError::Overloaded`]). The returned [`Ticket`]
    /// yields the composited HR frame; settlement is idempotent per
    /// `seq`.
    ///
    /// # Errors
    ///
    /// [`RouterSubmitError::Video`] wrapping
    /// [`VideoError::UnknownSession`] / [`VideoError::SessionLost`],
    /// plus the fleet-level rejections.
    pub fn feed_video_frame(
        &self,
        session_id: u64,
        seq: u64,
        frame: Tensor,
        deadline: Option<Duration>,
    ) -> Result<Ticket, RouterSubmitError> {
        let core = &self.core;
        if !core.running() {
            core.telemetry.counters(|c| c.rejected_draining += 1);
            return Err(RouterSubmitError::Draining);
        }
        let (shard_idx, engine_session) = core
            .resolve_video_pin(session_id)
            .map_err(RouterSubmitError::Video)?;
        let engine = core
            .shard_engine(shard_idx)
            .ok_or(RouterSubmitError::Video(VideoError::SessionLost))?;
        engine
            .feed_video_frame(engine_session, seq, frame, deadline)
            .map_err(|e| match e {
                SubmitError::QueueFull { .. } => RouterSubmitError::Overloaded,
                SubmitError::Draining | SubmitError::ShuttingDown => RouterSubmitError::Draining,
                SubmitError::InvalidInput { reason } => RouterSubmitError::InvalidInput { reason },
                SubmitError::UnknownModel(k) => RouterSubmitError::UnknownModel(k),
                // The pin resolved but the engine lost the session: only
                // possible across a replace race — typed, not hung.
                SubmitError::UnknownSession(_) => RouterSubmitError::Video(VideoError::SessionLost),
            })
    }

    /// Closes a video session and returns its lifetime stats. Closing a
    /// session whose shard was replaced returns
    /// [`VideoError::SessionLost`] (the pin is pruned either way).
    ///
    /// # Errors
    ///
    /// [`VideoError::UnknownSession`] / [`VideoError::SessionLost`].
    pub fn close_video_session(&self, session_id: u64) -> Result<SessionStats, VideoError> {
        let core = &self.core;
        let (shard_idx, engine_session) = core.resolve_video_pin(session_id)?;
        core.video_sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&session_id);
        core.shard_engine(shard_idx)
            .ok_or(VideoError::SessionLost)?
            .close_video_session(engine_session)
    }

    /// Lifetime stats of an open video session.
    ///
    /// # Errors
    ///
    /// [`VideoError::UnknownSession`] / [`VideoError::SessionLost`].
    pub fn video_session_stats(&self, session_id: u64) -> Result<SessionStats, VideoError> {
        let (shard_idx, engine_session) = self.core.resolve_video_pin(session_id)?;
        self.core
            .shard_engine(shard_idx)
            .ok_or(VideoError::SessionLost)?
            .video_session_stats(engine_session)
    }

    /// The fleet telemetry sink. Syncs the shared plan store's warm-hit
    /// count into the counters first, so every snapshot carries the
    /// current replication effectiveness.
    pub fn telemetry(&self) -> RouterSnapshot {
        let warm = self.core.shared_plans.warm_hits();
        self.core
            .telemetry
            .counters(|c| c.replication_warm_hits = warm);
        self.core.telemetry.snapshot()
    }

    /// The model registry all shards serve from.
    pub fn registry(&self) -> Arc<ModelRegistry> {
        Arc::clone(&self.core.registry)
    }

    /// Number of shards currently running an engine (active fleet size;
    /// includes draining scale-down victims until they retire).
    pub fn shard_count(&self) -> usize {
        self.core
            .shards
            .iter()
            .filter(|s| {
                s.engine
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
            })
            .count()
    }

    /// Total slots allocated (the elastic headroom ceiling).
    pub fn slot_count(&self) -> usize {
        self.core.shards.len()
    }

    /// Which shard the given (tenant, model) currently routes to, if any
    /// breaker admits it. Stable under a healthy fleet.
    pub fn route_of(&self, tenant: &str, key: &ModelKey) -> Option<usize> {
        self.core.pick_shard(route_point(tenant, key))
    }

    /// A point-in-time view of each *active* shard (dormant slots are
    /// omitted; `index` identifies the slot).
    pub fn shard_statuses(&self) -> Vec<ShardStatus> {
        self.core
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let engine = s.engine()?;
                Some(ShardStatus {
                    index: i,
                    breaker: breaker_state(s.breaker.load(Ordering::Acquire)),
                    health: engine.health(),
                    queued: s.queue.len(),
                    engine_depth: engine.queue_depth(),
                    respawns_used: s.respawns_used.load(Ordering::Relaxed) as u32,
                    generation: s.generation.load(Ordering::Relaxed),
                    draining: s.draining.load(Ordering::Acquire),
                })
            })
            .collect()
    }

    /// Graceful fleet drain: stops admissions (submitters see
    /// [`RouterSubmitError::Draining`] on every shard), flushes queued
    /// work through the engines, then drains each engine. If `deadline`
    /// passes first, remaining work is answered with
    /// [`RouterServeError::ShuttingDown`] so no ticket hangs. Idempotent.
    pub fn shutdown(&self, deadline: Duration) -> RouterShutdownReport {
        let start = Instant::now();
        let mut threads_guard = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = self.core.state.compare_exchange(
            ROUTER_RUNNING,
            ROUTER_DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        *self
            .core
            .drain_deadline
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(start + deadline);
        let mut joined = true;
        if let Some(threads) = threads_guard.take() {
            // Supervisor first, so no fault injection or respawn races
            // the drain.
            if let Some(sup) = threads.supervisor {
                joined &= join_within(sup, start, deadline);
            }
            for shard in &self.core.shards {
                shard.queue.close();
            }
            for d in threads.dispatchers {
                joined &= join_within(d, start, deadline);
            }
        } else {
            for shard in &self.core.shards {
                shard.queue.close();
            }
        }
        // Backstop: settle anything a detached dispatcher left queued.
        let mut dropped = 0u64;
        for shard in &self.core.shards {
            while let Popped::Job(job) = shard.queue.pop(Duration::ZERO) {
                dropped += 1;
                settle(&self.core, &job, Err(RouterServeError::ShuttingDown));
            }
        }
        // Drain the engines; their hooks settle every in-flight request.
        for shard in &self.core.shards {
            let Some(engine) = shard.engine() else {
                continue;
            };
            let remaining = deadline.saturating_sub(start.elapsed());
            let _report: ShutdownReport = engine.shutdown(remaining);
        }
        self.core.state.store(ROUTER_STOPPED, Ordering::Release);
        drop(threads_guard);
        RouterShutdownReport {
            dropped,
            joined,
            elapsed: start.elapsed(),
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.core.state.load(Ordering::Acquire) != ROUTER_STOPPED {
            let _ = self.shutdown(Duration::from_secs(60));
        }
    }
}

fn join_within(h: JoinHandle<()>, start: Instant, deadline: Duration) -> bool {
    loop {
        if h.is_finished() {
            let _ = h.join();
            return true;
        }
        if start.elapsed() >= deadline {
            drop(h); // detach: threads cannot be killed
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Consistent-hash point for a (tenant, model) pair.
fn route_point(tenant: &str, key: &ModelKey) -> u64 {
    let t = fnv1a(tenant.as_bytes());
    let m = fnv1a(key.to_string().as_bytes());
    splitmix64(t.wrapping_mul(3).wrapping_add(m))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Supervisor-facing respawn backoff: exponential with deterministic
/// jitter, sharing the engine's jitter machinery.
pub(crate) fn respawn_backoff(core: &RouterCore, consecutive_failures: u32) -> Duration {
    let draw = core.jitter_draws.fetch_add(1, Ordering::Relaxed);
    jittered_backoff(
        core.cfg.respawn_backoff,
        core.cfg.respawn_backoff_cap,
        consecutive_failures.max(1),
        core.cfg.engine.jitter_seed ^ 0x5A5A_0F0F_55AA_33CC,
        draw,
    )
}
