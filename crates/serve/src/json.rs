//! Minimal JSON emission and validation.
//!
//! The workspace builds offline against a no-op `serde` stand-in, so this
//! module provides the two things the serving layer actually needs: a
//! small builder that emits well-formed JSON objects/arrays, and a strict
//! recursive-descent validator used by `serve-bench` to check the
//! `BENCH_serve.json` it just wrote (and by the verify script's smoke
//! run).

use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `null`,
/// which JSON has no way to express as a number).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental JSON object builder. Consuming-builder style:
///
/// ```
/// use sesr_serve::json::JsonObject;
/// let j = JsonObject::new().str("name", "m5").int("scale", 2).finish();
/// assert_eq!(j, r#"{"name":"m5","scale":2}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(k));
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        let _ = write!(self.buf, "\"{}\"", escape(v));
        self
    }

    /// Adds an unsigned integer field.
    pub fn int(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a floating-point field (`null` if non-finite).
    pub fn num(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        self.buf.push_str(&number(v));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a pre-serialized JSON value (object, array, …) verbatim.
    pub fn raw(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Serializes pre-serialized JSON values into an array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut buf = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(&item);
    }
    buf.push(']');
    buf
}

/// Validates that `s` is one complete, well-formed JSON document.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with a
/// byte offset.
pub fn validate(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        None => Err(format!("unexpected end of input at byte {i}", i = *i)),
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        Some(c) => Err(format!("unexpected byte {c:?} at {i}", i = *i)),
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}", i = *i));
        }
        parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}", i = *i));
        }
        *i += 1;
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}", i = *i)),
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}", i = *i)),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '"'
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !b.get(*i + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {i}", i = *i));
                            }
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}", i = *i)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {i}", i = *i)),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}", i = *i))
    }
}

/// A parsed JSON document, for reading values back out of bench reports
/// (the gate in `scripts/bench_gate.sh` compares fresh runs against the
/// committed baselines without shelling out to python).
///
/// Object members keep their document order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error, with a byte
    /// offset.
    pub fn parse(s: &str) -> Result<JsonValue, String> {
        validate(s)?;
        let b = s.as_bytes();
        let mut i = 0usize;
        skip_ws(b, &mut i);
        Ok(read_value(b, &mut i))
    }

    /// Walks `path` through nested objects; `None` if any key is absent
    /// or an intermediate value is not an object.
    pub fn get(&self, path: &[&str]) -> Option<&JsonValue> {
        let mut cur = self;
        for key in path {
            let JsonValue::Object(members) = cur else {
                return None;
            };
            cur = members.iter().find(|(k, _)| k == key).map(|(_, v)| v)?;
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The member keys in document order, if this is an object.
    pub fn as_object_keys(&self) -> Option<Vec<String>> {
        match self {
            JsonValue::Object(members) => Some(members.iter().map(|(k, _)| k.clone()).collect()),
            _ => None,
        }
    }
}

// The readers below assume `validate` has already accepted the document,
// so they only have to materialize values, not diagnose errors.
fn read_value(b: &[u8], i: &mut usize) -> JsonValue {
    match b[*i] {
        b'{' => {
            *i += 1;
            let mut members = Vec::new();
            skip_ws(b, i);
            if b[*i] == b'}' {
                *i += 1;
                return JsonValue::Object(members);
            }
            loop {
                skip_ws(b, i);
                let key = read_string(b, i);
                skip_ws(b, i);
                *i += 1; // ':'
                skip_ws(b, i);
                members.push((key, read_value(b, i)));
                skip_ws(b, i);
                let sep = b[*i];
                *i += 1;
                if sep == b'}' {
                    return JsonValue::Object(members);
                }
            }
        }
        b'[' => {
            *i += 1;
            let mut items = Vec::new();
            skip_ws(b, i);
            if b[*i] == b']' {
                *i += 1;
                return JsonValue::Array(items);
            }
            loop {
                skip_ws(b, i);
                items.push(read_value(b, i));
                skip_ws(b, i);
                let sep = b[*i];
                *i += 1;
                if sep == b']' {
                    return JsonValue::Array(items);
                }
            }
        }
        b'"' => JsonValue::String(read_string(b, i)),
        b't' => {
            *i += 4;
            JsonValue::Bool(true)
        }
        b'f' => {
            *i += 5;
            JsonValue::Bool(false)
        }
        b'n' => {
            *i += 4;
            JsonValue::Null
        }
        _ => {
            let start = *i;
            while b.get(*i).is_some_and(|c| {
                matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') || c.is_ascii_digit()
            }) {
                *i += 1;
            }
            let text = std::str::from_utf8(&b[start..*i]).expect("validated number is ASCII");
            JsonValue::Number(text.parse().expect("validated number parses"))
        }
    }
}

fn read_string(b: &[u8], i: &mut usize) -> String {
    *i += 1; // opening '"'
    let mut out = String::new();
    loop {
        match b[*i] {
            b'"' => {
                *i += 1;
                return out;
            }
            b'\\' => {
                *i += 1;
                match b[*i] {
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*i + 1..*i + 5]).unwrap_or("");
                        let code = u32::from_str_radix(hex, 16).unwrap_or(0xFFFD);
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *i += 4;
                    }
                    c => out.push(c as char),
                }
                *i += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (multi-byte sequences arrive as
                // raw bytes; the document was already validated as &str).
                let start = *i;
                *i += 1;
                while b.get(*i).is_some_and(|c| c & 0xC0 == 0x80) {
                    *i += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*i]).expect("input was valid UTF-8"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_valid_json() {
        let inner = JsonObject::new().num("p50_ms", 1.25).finish();
        let doc = JsonObject::new()
            .str("name", "queue \"wait\"\n")
            .int("count", 42)
            .bool("ok", true)
            .num("nan_becomes_null", f64::NAN)
            .raw("stages", &array(vec![inner]))
            .finish();
        validate(&doc).unwrap();
        assert!(doc.contains("\\\"wait\\\"\\n"));
        assert!(doc.contains("null"));
    }

    #[test]
    fn validator_accepts_canonical_documents() {
        for ok in [
            "{}",
            "[]",
            "3",
            "-0.5e+10",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  [true, false]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn value_parser_reads_back_builder_output() {
        let doc = JsonObject::new()
            .str("bench", "sesr-train")
            .raw(
                "results",
                &JsonObject::new()
                    .raw("m5", &JsonObject::new().num("steps_per_sec", 12.5).finish())
                    .raw(
                        "m11",
                        &JsonObject::new().num("steps_per_sec", 7.25).finish(),
                    )
                    .finish(),
            )
            .finish();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(
            v.get(&["bench"]).and_then(JsonValue::as_str),
            Some("sesr-train")
        );
        assert_eq!(
            v.get(&["results", "m5", "steps_per_sec"])
                .and_then(JsonValue::as_f64),
            Some(12.5)
        );
        assert_eq!(
            v.get(&["results"]).and_then(JsonValue::as_object_keys),
            Some(vec!["m5".to_string(), "m11".to_string()])
        );
        assert!(v.get(&["results", "m7", "steps_per_sec"]).is_none());
    }

    #[test]
    fn value_parser_handles_escapes_arrays_and_literals() {
        let v = JsonValue::parse(r#"{"s":"a\"b\nA","a":[1,-2.5e1,true,null]}"#).unwrap();
        assert_eq!(v.get(&["s"]).and_then(JsonValue::as_str), Some("a\"b\nA"));
        let JsonValue::Array(items) = v.get(&["a"]).unwrap() else {
            panic!("expected array");
        };
        assert_eq!(items[0], JsonValue::Number(1.0));
        assert_eq!(items[1], JsonValue::Number(-25.0));
        assert_eq!(items[2], JsonValue::Bool(true));
        assert_eq!(items[3], JsonValue::Null);
        assert!(JsonValue::parse("{oops").is_err());
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{'a':1}",
            "1 2",
            "\"unterminated",
            "{\"a\":01e}",
            "nul",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
