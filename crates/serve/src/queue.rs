//! Bounded MPSC request queue with explicit backpressure.
//!
//! Producers `push` from any thread; the engine's workers `pop_group`.
//! When the queue is at capacity, `push` fails *immediately* with a typed
//! [`PushError::Full`] — callers get a reject-with-reason they can turn
//! into load shedding, never a silent block. `pop_group` performs the
//! batcher's job under a single lock: it removes the oldest request plus
//! up to `max - 1` further requests with the same batching key (model +
//! shape), preserving FIFO order within the group.
//!
//! A `paused` switch (used by tests and the load generator's backpressure
//! demonstration) stops consumers without stopping producers, so the
//! queue can be filled to its bound deterministically.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a `push` was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` requests; shed load or retry later.
    Full {
        /// The configured bound.
        capacity: usize,
    },
    /// The queue was closed (engine shutting down).
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full { capacity } => {
                write!(f, "queue full (capacity {capacity}); request rejected")
            }
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    paused: bool,
}

/// A bounded multi-producer queue with group-aware consumption.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    notify: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded at `capacity` (≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            notify: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues a request, failing fast when at capacity or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity; [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn push(&self, item: T) -> Result<(), PushError> {
        self.offer(item).map_err(|(e, _)| e)
    }

    /// Like [`BoundedQueue::push`], but hands the item back on failure so
    /// the caller can settle it (the engine's retry path must answer the
    /// request's ticket even when re-enqueueing is impossible).
    ///
    /// # Errors
    ///
    /// `(PushError, item)` — same reasons as [`BoundedQueue::push`].
    pub fn offer(&self, item: T) -> Result<(), (PushError, T)> {
        let mut g = self.lock();
        if g.closed {
            return Err((PushError::Closed, item));
        }
        if g.items.len() >= self.capacity {
            return Err((
                PushError::Full {
                    capacity: self.capacity,
                },
                item,
            ));
        }
        g.items.push_back(item);
        drop(g);
        self.notify.notify_one();
        Ok(())
    }

    /// Blocks until work is available, then removes the oldest request
    /// plus up to `max - 1` more with the same `key`, in FIFO order.
    /// Returns `None` once the queue is closed *and* drained. While
    /// paused, consumers wait even if items are queued (closing
    /// overrides pausing so shutdown always drains).
    pub fn pop_group<K: Eq>(&self, max: usize, key: impl Fn(&T) -> K) -> Option<Vec<T>> {
        let mut g = self.lock();
        loop {
            if g.closed && g.items.is_empty() {
                return None;
            }
            if !g.items.is_empty() && (!g.paused || g.closed) {
                break;
            }
            g = self.notify.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
        let first = g.items.pop_front()?;
        let k = key(&first);
        let mut group = vec![first];
        let mut i = 0;
        while group.len() < max.max(1) && i < g.items.len() {
            if key(&g.items[i]) == k {
                if let Some(item) = g.items.remove(i) {
                    group.push(item);
                }
            } else {
                i += 1;
            }
        }
        Some(group)
    }

    /// Closes the queue: future pushes fail, consumers drain what remains
    /// and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.notify.notify_all();
    }

    /// True once [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Pauses or resumes consumption (producers are unaffected).
    pub fn set_paused(&self, paused: bool) {
        self.lock().paused = paused;
        if !paused {
            self.notify.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn overflow_is_rejected_with_capacity() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full { capacity: 2 }));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(PushError::Closed));
        assert_eq!(q.pop_group(4, |_| 0), Some(vec![1]));
        assert_eq!(q.pop_group(4, |_| 0), None);
    }

    #[test]
    fn groups_same_key_in_fifo_order() {
        let q = BoundedQueue::new(8);
        for v in [10, 20, 11, 30, 12, 13] {
            q.push(v).unwrap();
        }
        // Key = tens digit; first item (10) groups with 11, 12, 13 but the
        // batch cap of 3 stops after 11 and 12.
        let group = q.pop_group(3, |v| v / 10);
        assert_eq!(group, Some(vec![10, 11, 12]));
        // Remaining items keep their relative order.
        assert_eq!(q.pop_group(3, |v| v / 10), Some(vec![20]));
        assert_eq!(q.pop_group(3, |v| v / 10), Some(vec![30]));
        assert_eq!(q.pop_group(3, |v| v / 10), Some(vec![13]));
    }

    #[test]
    fn paused_queue_holds_items_for_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        q.set_paused(true);
        q.push(7).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_group(1, |_| 0));
        // Give the consumer a moment to block, then release it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.set_paused(false);
        assert_eq!(h.join().unwrap(), Some(vec![7]));
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_group(2, |_| 0));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(vec![42]));
    }

    #[test]
    fn offer_returns_the_item_on_failure() {
        let q = BoundedQueue::new(1);
        q.push(1).unwrap();
        let (err, item) = q.offer(2).unwrap_err();
        assert_eq!((err, item), (PushError::Full { capacity: 1 }, 2));
        q.close();
        let (err, item) = q.offer(3).unwrap_err();
        assert_eq!((err, item), (PushError::Closed, 3));
        assert!(q.is_closed());
    }

    #[test]
    fn concurrent_push_vs_close_loses_nothing() {
        // Producers race close(): every push must either land (and later
        // drain) or fail typed — no item may vanish and no Ok may be lost.
        for round in 0..8 {
            let q = Arc::new(BoundedQueue::new(4096));
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut accepted = 0u64;
                        for i in 0..200 {
                            match q.push(p * 1000 + i) {
                                Ok(()) => accepted += 1,
                                Err(PushError::Closed) => break,
                                Err(PushError::Full { .. }) => {
                                    unreachable!("capacity covers all pushes")
                                }
                            }
                        }
                        accepted
                    })
                })
                .collect();
            // Close at a slightly different point each round to vary the
            // interleaving.
            std::thread::sleep(std::time::Duration::from_micros(50 * round));
            q.close();
            let accepted: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(q.push(9999), Err(PushError::Closed));
            let mut drained = 0u64;
            while let Some(group) = q.pop_group(64, |_| 0) {
                drained += group.len() as u64;
            }
            assert_eq!(drained, accepted, "accepted pushes must all drain");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_after_close_drains_remaining_in_fifo_order() {
        let q = BoundedQueue::new(8);
        for v in 0..5 {
            q.push(v).unwrap();
        }
        q.close();
        // Grouped draining still respects FIFO within the group key.
        assert_eq!(q.pop_group(2, |_| 0), Some(vec![0, 1]));
        assert_eq!(q.pop_group(2, |_| 0), Some(vec![2, 3]));
        assert_eq!(q.pop_group(2, |_| 0), Some(vec![4]));
        assert_eq!(q.pop_group(2, |_| 0), None);
        // Once drained, every further pop observes closure immediately.
        assert_eq!(q.pop_group(2, |_| 0), None);
    }

    #[test]
    fn close_overrides_pause_so_shutdown_always_drains() {
        let q = Arc::new(BoundedQueue::new(4));
        q.set_paused(true);
        q.push(5).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || (q2.pop_group(1, |_| 0), q2.pop_group(1, |_| 0)));
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close(); // never unpaused: close alone must release the consumer
        assert_eq!(h.join().unwrap(), (Some(vec![5]), None));
    }
}
