//! Elastic fleet sizing: the consistent-hash ring as a first-class
//! value, and the pure controller that decides when to grow or shrink
//! the shard fleet.
//!
//! Two pieces, both deliberately free of threads and clocks so they are
//! exhaustively testable:
//!
//! * [`HashRing`] — the virtual-node consistent-hash ring the router
//!   places `(tenant, model)` keys on. Every shard's vnode points are a
//!   pure function of its index (`splitmix64(RING_SALT ^ (shard << 32 |
//!   vnode))`), so adding or removing a shard only edits *that shard's*
//!   arcs: a key changes owner iff its successor arc belonged to (or now
//!   belongs to) the edited shard. That is the bounded-rebalancing
//!   property — ~K/N of K keys move on an N-shard edit, never a full
//!   reshuffle — and the proptest in `tests/autoscale.rs` pins it.
//! * [`AutoscaleController`] — a tick-driven hysteresis state machine:
//!   sustained pressure (router-queue fill, with deadline misses counted
//!   as full pressure) for `up_ticks` consecutive supervisor ticks asks
//!   for one more shard; sustained idleness for `down_ticks` asks for
//!   one fewer; every transition arms a cooldown so a chaos blip (a
//!   killed shard briefly backing the fleet up) cannot flap the fleet.
//!   The controller only *decides* — the router's supervisor executes
//!   (spawn into an empty slot, or drain-then-retire), which keeps the
//!   decision logic a pure function of `(tick, pressure, active)`.
//!
//! Scale-down goes through the same drain lifecycle a graceful shutdown
//! uses: the victim leaves the ring first (new keys route elsewhere,
//! bounded move), its queues flush through its engine, pinned video
//! sessions are migrated (or typed-lost) — only then does the slot
//! retire. See `crate::supervisor` for the execution side.

use crate::chaos::splitmix64;
use std::time::Duration;

/// Salt for the ring's vnode points. A shard's points depend only on
/// this salt and its `(shard, vnode)` index, never on fleet size — the
/// root of the bounded-rebalance guarantee.
pub(crate) const RING_SALT: u64 = 0x51E2_D00F_3C15_7EE1;

/// Salt for the synthetic key sample used to measure how many keys an
/// actual ring edit moved (the `keys_rebalanced` counter).
const SAMPLE_SALT: u64 = 0x0BAD_5EED_CAB1_E550;

/// Consistent-hash ring of virtual nodes over shard indices.
///
/// The ring is a sorted `(point, shard)` list; a key's owner is the
/// shard of the first point at or after the key's hash (wrapping).
/// Shards can be added and removed independently; membership is
/// whatever the caller has added so far.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted vnode points.
    points: Vec<(u64, usize)>,
    /// Vnodes per shard.
    virtual_nodes: usize,
}

impl HashRing {
    /// An empty ring placing `virtual_nodes` points per shard (min 1).
    pub fn new(virtual_nodes: usize) -> Self {
        Self {
            points: Vec::new(),
            virtual_nodes: virtual_nodes.max(1),
        }
    }

    /// The vnode points of shard `s` — a pure function of the index, so
    /// they are bit-identical no matter when the shard joins.
    fn shard_points(&self, s: usize) -> impl Iterator<Item = (u64, usize)> + '_ {
        (0..self.virtual_nodes)
            .map(move |v| (splitmix64(RING_SALT ^ (((s as u64) << 32) | v as u64)), s))
    }

    /// Adds shard `s`'s vnodes to the ring. Idempotent.
    pub fn add_shard(&mut self, s: usize) {
        if self.contains(s) {
            return;
        }
        let pts: Vec<(u64, usize)> = self.shard_points(s).collect();
        self.points.extend(pts);
        self.points.sort_unstable();
    }

    /// Removes shard `s`'s vnodes. Idempotent.
    pub fn remove_shard(&mut self, s: usize) {
        self.points.retain(|&(_, owner)| owner != s);
    }

    /// Whether shard `s` is on the ring.
    pub fn contains(&self, s: usize) -> bool {
        self.points.iter().any(|&(_, owner)| owner == s)
    }

    /// Number of shards with points on the ring.
    pub fn shard_count(&self) -> usize {
        let mut shards: Vec<usize> = self.points.iter().map(|&(_, s)| s).collect();
        shards.sort_unstable();
        shards.dedup();
        shards.len()
    }

    /// True when no shard is on the ring.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The owning shard of `point` (its successor on the ring), or
    /// `None` on an empty ring.
    pub fn owner(&self, point: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let i = self.points.partition_point(|&(p, _)| p < point);
        let i = if i == self.points.len() { 0 } else { i };
        Some(self.points[i].1)
    }

    /// Counts, over a fixed deterministic sample of `samples` synthetic
    /// keys, how many changed owner between `self` and `after`. This is
    /// what the router's `keys_rebalanced` counter records per ring
    /// edit: an observed measurement of the bounded-rebalance property,
    /// not a theoretical bound.
    pub fn sampled_moves(&self, after: &HashRing, samples: u64) -> u64 {
        (0..samples)
            .map(|i| splitmix64(SAMPLE_SALT ^ i))
            .filter(|&p| self.owner(p) != after.owner(p))
            .count() as u64
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// Elastic-fleet policy. All tick counts are in supervisor probe ticks
/// (`RouterConfig::probe_interval` apart).
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleConfig {
    /// Fewest active shards the controller will keep (≥ 1).
    pub min_shards: usize,
    /// Most active shards the controller will grow to.
    pub max_shards: usize,
    /// Mean router-queue fill at or above which a tick counts toward
    /// scale-up pressure. Deadline misses observed on a tick count as
    /// full pressure regardless of fill.
    pub scale_up_fill: f64,
    /// Mean router-queue fill at or below which a tick counts toward
    /// scale-down idleness.
    pub scale_down_fill: f64,
    /// Consecutive pressured ticks before one scale-up (hysteresis).
    pub up_ticks: u32,
    /// Consecutive idle ticks before one scale-down. Sized much larger
    /// than `up_ticks`: adding capacity late costs goodput, removing it
    /// late only costs a warm spare.
    pub down_ticks: u32,
    /// Ticks after any transition during which no new decision is made,
    /// so one burst (or one chaos kill) cannot flap the fleet.
    pub cooldown_ticks: u32,
    /// Longest a scale-down victim may spend draining before it is
    /// force-retired (remaining in-flight work reroutes through the
    /// shutdown hooks, exactly as a graceful router shutdown would).
    pub drain_grace: Duration,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_shards: 1,
            max_shards: 4,
            scale_up_fill: 0.75,
            scale_down_fill: 0.10,
            up_ticks: 4,
            down_ticks: 40,
            cooldown_ticks: 60,
            drain_grace: Duration::from_secs(1),
        }
    }
}

/// What the controller asks for after one observation tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleSignal {
    /// No change.
    Hold,
    /// Spawn one shard.
    Up,
    /// Drain and retire one shard.
    Down,
    /// Sustained pressure, but the fleet is already at `max_shards` —
    /// the overload policies (shed/degrade/reject) are the only lever
    /// left. Counted as `autoscale_blocked_at_max`.
    BlockedAtMax,
}

/// Pure hysteresis/cooldown state machine deciding fleet size. Feed it
/// one observation per supervisor tick; execute whatever it returns.
#[derive(Debug, Clone)]
pub struct AutoscaleController {
    cfg: AutoscaleConfig,
    /// Consecutive pressured ticks.
    hot: u32,
    /// Consecutive idle ticks.
    cold: u32,
    /// No decisions before this tick.
    cooldown_until: u64,
}

impl AutoscaleController {
    /// A controller over `cfg`, with the bounds sanitized
    /// (`1 <= min_shards <= max_shards`, thresholds clamped to [0, 1],
    /// `up_ticks`/`down_ticks` at least 1).
    pub fn new(cfg: AutoscaleConfig) -> Self {
        let mut cfg = cfg;
        cfg.min_shards = cfg.min_shards.max(1);
        cfg.max_shards = cfg.max_shards.max(cfg.min_shards);
        cfg.scale_up_fill = cfg.scale_up_fill.clamp(0.0, 1.0);
        cfg.scale_down_fill = cfg.scale_down_fill.clamp(0.0, cfg.scale_up_fill);
        cfg.up_ticks = cfg.up_ticks.max(1);
        cfg.down_ticks = cfg.down_ticks.max(1);
        Self {
            cfg,
            hot: 0,
            cold: 0,
            cooldown_until: 0,
        }
    }

    /// The sanitized configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// One observation: `pressure` is the mean router-queue fill over
    /// active shards (callers may saturate it to 1.0 when deadline
    /// misses were observed this tick), `active` the current active
    /// shard count. Returns the decision for this tick.
    pub fn observe(&mut self, tick: u64, pressure: f64, active: usize) -> ScaleSignal {
        if tick < self.cooldown_until {
            // Streaks do not accumulate under cooldown: the fleet just
            // changed shape and the pressure signal is still settling.
            self.hot = 0;
            self.cold = 0;
            return ScaleSignal::Hold;
        }
        if pressure >= self.cfg.scale_up_fill {
            self.hot += 1;
            self.cold = 0;
        } else if pressure <= self.cfg.scale_down_fill {
            self.cold += 1;
            self.hot = 0;
        } else {
            self.hot = 0;
            self.cold = 0;
        }
        if self.hot >= self.cfg.up_ticks {
            self.hot = 0;
            if active >= self.cfg.max_shards {
                // Not a transition: no cooldown, so the blocked
                // condition is re-reported after another full
                // hysteresis window if pressure persists.
                return ScaleSignal::BlockedAtMax;
            }
            self.cooldown_until = tick + u64::from(self.cfg.cooldown_ticks);
            return ScaleSignal::Up;
        }
        if self.cold >= self.cfg.down_ticks {
            self.cold = 0;
            if active <= self.cfg.min_shards {
                return ScaleSignal::Hold;
            }
            self.cooldown_until = tick + u64::from(self.cfg.cooldown_ticks);
            return ScaleSignal::Down;
        }
        ScaleSignal::Hold
    }

    /// Arms the cooldown without a decision — called by the executor
    /// when a transition *finishes* (e.g. a drain retires), so the next
    /// decision observes the settled fleet, not the transient.
    pub fn note_transition(&mut self, tick: u64) {
        self.cooldown_until = self
            .cooldown_until
            .max(tick + u64::from(self.cfg.cooldown_ticks));
        self.hot = 0;
        self.cold = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(
        up_ticks: u32,
        down_ticks: u32,
        cooldown: u32,
        min: usize,
        max: usize,
    ) -> AutoscaleController {
        AutoscaleController::new(AutoscaleConfig {
            min_shards: min,
            max_shards: max,
            scale_up_fill: 0.75,
            scale_down_fill: 0.10,
            up_ticks,
            down_ticks,
            cooldown_ticks: cooldown,
            drain_grace: Duration::from_millis(100),
        })
    }

    #[test]
    fn ring_owner_is_successor_and_stable() {
        let mut ring = HashRing::new(16);
        ring.add_shard(0);
        ring.add_shard(1);
        ring.add_shard(2);
        assert_eq!(ring.shard_count(), 3);
        for i in 0..256u64 {
            let p = splitmix64(i);
            let a = ring.owner(p);
            let b = ring.owner(p);
            assert_eq!(a, b, "ownership must be deterministic");
            assert!(a.is_some_and(|s| s < 3));
        }
    }

    #[test]
    fn ring_points_are_independent_of_join_order() {
        let mut a = HashRing::new(8);
        a.add_shard(0);
        a.add_shard(1);
        a.add_shard(2);
        let mut b = HashRing::new(8);
        b.add_shard(2);
        b.add_shard(0);
        b.add_shard(1);
        for i in 0..512u64 {
            let p = splitmix64(i ^ 0xABCD);
            assert_eq!(a.owner(p), b.owner(p), "join order must not matter");
        }
    }

    #[test]
    fn ring_add_only_moves_keys_to_the_new_shard() {
        let mut before = HashRing::new(32);
        for s in 0..3 {
            before.add_shard(s);
        }
        let mut after = before.clone();
        after.add_shard(3);
        for i in 0..2048u64 {
            let p = splitmix64(i ^ 0x5EED);
            let (o0, o1) = (before.owner(p).unwrap(), after.owner(p).unwrap());
            if o0 != o1 {
                assert_eq!(o1, 3, "a moved key must move to the added shard");
            }
        }
    }

    #[test]
    fn ring_remove_only_moves_the_removed_shards_keys() {
        let mut before = HashRing::new(32);
        for s in 0..4 {
            before.add_shard(s);
        }
        let mut after = before.clone();
        after.remove_shard(2);
        for i in 0..2048u64 {
            let p = splitmix64(i ^ 0xF00D);
            let (o0, o1) = (before.owner(p).unwrap(), after.owner(p).unwrap());
            if o0 != o1 {
                assert_eq!(o0, 2, "only the removed shard's keys may move");
                assert_ne!(o1, 2);
            }
        }
    }

    #[test]
    fn ring_sampled_moves_matches_manual_count() {
        let mut before = HashRing::new(16);
        before.add_shard(0);
        before.add_shard(1);
        let mut after = before.clone();
        after.add_shard(2);
        let moved = before.sampled_moves(&after, 1024);
        assert!(moved > 0, "adding a shard must move some keys");
        // ~1/3 of keys should move; allow a wide statistical band.
        assert!(moved < 1024 / 2, "bounded rebalance: moved={moved}");
        assert_eq!(before.sampled_moves(&before, 1024), 0);
    }

    #[test]
    fn controller_requires_sustained_pressure() {
        let mut c = ctl(3, 10, 5, 1, 4);
        assert_eq!(c.observe(1, 0.9, 1), ScaleSignal::Hold);
        assert_eq!(c.observe(2, 0.9, 1), ScaleSignal::Hold);
        // A single dip resets the streak (hysteresis).
        assert_eq!(c.observe(3, 0.5, 1), ScaleSignal::Hold);
        assert_eq!(c.observe(4, 0.9, 1), ScaleSignal::Hold);
        assert_eq!(c.observe(5, 0.9, 1), ScaleSignal::Hold);
        assert_eq!(c.observe(6, 0.9, 1), ScaleSignal::Up);
    }

    #[test]
    fn controller_cooldown_blocks_back_to_back_transitions() {
        let mut c = ctl(1, 100, 10, 1, 4);
        assert_eq!(c.observe(1, 1.0, 1), ScaleSignal::Up);
        // Pressure persists, but the cooldown holds the fleet.
        for t in 2..11 {
            assert_eq!(c.observe(t, 1.0, 2), ScaleSignal::Hold, "tick {t}");
        }
        assert_eq!(c.observe(11, 1.0, 2), ScaleSignal::Up);
    }

    #[test]
    fn controller_clamps_at_max_and_reports_blocked() {
        let mut c = ctl(2, 100, 0, 1, 2);
        assert_eq!(c.observe(1, 1.0, 2), ScaleSignal::Hold);
        assert_eq!(c.observe(2, 1.0, 2), ScaleSignal::BlockedAtMax);
        // Re-reported only after another full hysteresis window.
        assert_eq!(c.observe(3, 1.0, 2), ScaleSignal::Hold);
        assert_eq!(c.observe(4, 1.0, 2), ScaleSignal::BlockedAtMax);
    }

    #[test]
    fn controller_holds_at_min_and_scales_down_when_idle() {
        let mut c = ctl(100, 2, 0, 1, 4);
        assert_eq!(c.observe(1, 0.0, 1), ScaleSignal::Hold);
        assert_eq!(c.observe(2, 0.0, 1), ScaleSignal::Hold, "at min: hold");
        assert_eq!(c.observe(3, 0.0, 2), ScaleSignal::Hold);
        assert_eq!(c.observe(4, 0.0, 2), ScaleSignal::Down);
    }

    #[test]
    fn controller_middle_band_resets_both_streaks() {
        let mut c = ctl(2, 2, 0, 1, 4);
        assert_eq!(c.observe(1, 0.0, 2), ScaleSignal::Hold);
        assert_eq!(c.observe(2, 0.5, 2), ScaleSignal::Hold);
        assert_eq!(c.observe(3, 0.0, 2), ScaleSignal::Hold);
        assert_eq!(c.observe(4, 0.0, 2), ScaleSignal::Down);
    }

    #[test]
    fn controller_sanitizes_bounds() {
        let c = AutoscaleController::new(AutoscaleConfig {
            min_shards: 0,
            max_shards: 0,
            scale_up_fill: 2.0,
            scale_down_fill: 5.0,
            up_ticks: 0,
            down_ticks: 0,
            ..AutoscaleConfig::default()
        });
        let cfg = c.config();
        assert_eq!(cfg.min_shards, 1);
        assert_eq!(cfg.max_shards, 1);
        assert!(cfg.scale_up_fill <= 1.0);
        assert!(cfg.scale_down_fill <= cfg.scale_up_fill);
        assert!(cfg.up_ticks >= 1 && cfg.down_ticks >= 1);
    }

    #[test]
    fn note_transition_arms_cooldown() {
        let mut c = ctl(1, 100, 8, 1, 4);
        c.note_transition(10);
        for t in 10..18 {
            assert_eq!(c.observe(t, 1.0, 1), ScaleSignal::Hold, "tick {t}");
        }
        assert_eq!(c.observe(18, 1.0, 1), ScaleSignal::Up);
    }
}
