//! The `router-bench` harness: a deterministic multi-tenant open-loop
//! mix driven at the [`Router`], emitting `BENCH_router.json`.
//!
//! What it measures — and why the shard-scaling number is honest on a
//! small box: the mix pairs a heavy batch tenant (large whole-image
//! requests that occupy a one-worker shard for hundreds of
//! milliseconds) with several interactive tenants (small requests under
//! a tight deadline). On one shard the heavy tenant's requests park at
//! the head of the only queue and every interactive request that
//! arrives behind them expires — classic head-of-line blocking. With
//! four shards, consistent hashing isolates the heavy tenant on its own
//! shard and the interactive tenants' goodput (completions per second
//! of wall clock; expired requests do not count) recovers. The ≥3×
//! scaling is *queue-structural* — it comes from eliminating
//! head-of-line blocking, not from multiplying CPU — so it reproduces
//! on a single-core runner.
//!
//! The overload phase then drives the same fleet at a multiple of the
//! sustainable rate and checks the shedding order: batch is shed
//! (`shed_batch > 0`) while no interactive request is ever *rejected*
//! (`rejected_interactive == 0`; under pressure interactive work is
//! degraded to a cheaper architecture instead — the any-time move).
//!
//! The autoscale phase starts at the *low* shard count with the
//! elastic controller enabled and drives interactive-only traffic at a
//! rate one shard cannot sustain (`autoscale_hz` per tenant): deadline
//! misses saturate the pressure signal continuously — unlike the heavy
//! mix, whose multi-second head-of-line requests make the miss counter
//! bursty and leave an undrainable batch backlog in the quiet tail —
//! so the fleet grows toward the high count (bounded rebalancing: only
//! sampled ring keys that must move do), fresh shards draw collapsed
//! plans from the shared per-process store (`replication_warm_hits >
//! 0`, no re-collapse on first request), and the quiet tail drains in
//! milliseconds, letting the controller scale back down. The phase
//! fails if the fleet never scales up, never scales down, serves a
//! cold first request, or rejects interactive work while elastic.

use crate::autoscale::AutoscaleConfig;
use crate::bench::arch_config;
use crate::engine::EngineConfig;
use crate::json::JsonObject;
use crate::registry::{ModelKey, ModelRegistry};
use crate::router::{
    Priority, RateLimit, Router, RouterConfig, RouterServeError, RouterSnapshot, RouterSubmitError,
    RouterTicket, TenantPolicy,
};
use sesr_core::model::Sesr;
use sesr_tensor::Tensor;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Router-bench knobs. The defaults are the committed-baseline
/// configuration; `scripts/bench_gate.sh` re-runs them exactly.
#[derive(Debug, Clone)]
pub struct RouterBenchConfig {
    /// Seed for model init and input tensors.
    pub seed: u64,
    /// Open-loop traffic window per phase.
    pub phase: Duration,
    /// Shard counts for the two scaling phases (low, high).
    pub shard_counts: (usize, usize),
    /// Number of interactive tenants.
    pub interactive_tenants: usize,
    /// Per-tenant interactive arrival rate, requests/s.
    pub interactive_hz: f64,
    /// Interactive deadline; arrivals that cannot start in time expire.
    pub interactive_deadline: Duration,
    /// Interactive input size (h, w).
    pub small: (usize, usize),
    /// Heavy-tenant (batch-class) arrival rate, requests/s.
    pub heavy_hz: f64,
    /// Heavy-tenant deadline (generous; batch work queues, not expires).
    pub heavy_deadline: Duration,
    /// Heavy-tenant input size (h, w) — large enough that one request
    /// occupies a one-worker shard for hundreds of milliseconds. Sized
    /// against the SIMD kernels: when the kernels speed up, this must
    /// grow with them or head-of-line blocking quietly stops being
    /// exercised and the scaling phase measures nothing.
    pub big: (usize, usize),
    /// Rate multiplier for the interactive side of the overload phase.
    pub overload_factor: f64,
    /// Heavy-tenant rate, requests/s, during the overload phase (driven
    /// far past the sustainable rate so shedding must engage within the
    /// window).
    pub overload_heavy_hz: f64,
    /// Architecture served (degradable down the chain under overload).
    pub arch: String,
    /// Upscale factor.
    pub scale: usize,
    /// Expanded (training-time) channel width for model init.
    pub expanded: usize,
    /// Per-tenant interactive rate during the autoscale phase. Sized
    /// so the tenants together exceed one shard's small-image service
    /// capacity (sustained deadline misses drive scale-up) while each
    /// tenant alone fits comfortably on its own shard.
    pub autoscale_hz: f64,
    /// Quiet tail after the autoscale phase's traffic window: no
    /// arrivals, long enough for the controller's cold streak to drain
    /// the fleet back down at least once.
    pub autoscale_quiet: Duration,
    /// Optional persisted-autotuner file (written by
    /// `sesr infer-bench --tuner-out`); every engine spawn — including
    /// elastic scale-ups — seeds its GEMM blocking choices from it
    /// instead of re-tuning.
    pub tuner_file: Option<std::path::PathBuf>,
}

impl Default for RouterBenchConfig {
    fn default() -> Self {
        Self {
            seed: 0xB0A7,
            phase: Duration::from_millis(3000),
            shard_counts: (1, 4),
            interactive_tenants: 3,
            interactive_hz: 30.0,
            interactive_deadline: Duration::from_millis(40),
            small: (24, 24),
            heavy_hz: 12.0,
            heavy_deadline: Duration::from_secs(3),
            big: (432, 576),
            overload_factor: 2.0,
            overload_heavy_hz: 16.0,
            arch: "m5".to_string(),
            scale: 2,
            expanded: 16,
            autoscale_hz: 600.0,
            autoscale_quiet: Duration::from_millis(1500),
            tuner_file: None,
        }
    }
}

/// The elastic-controller settings the autoscale phase runs under:
/// bounds = the two scaling-phase shard counts, a fast hot streak (any
/// deadline miss saturates pressure, so four 5 ms ticks suffice), and a
/// cold streak long enough that scale-down needs sustained quiet.
fn autoscale_for(cfg: &RouterBenchConfig) -> AutoscaleConfig {
    AutoscaleConfig {
        min_shards: cfg.shard_counts.0,
        max_shards: cfg.shard_counts.1,
        scale_up_fill: 0.60,
        scale_down_fill: 0.05,
        up_ticks: 4,
        down_ticks: 60,
        cooldown_ticks: 40,
        drain_grace: Duration::from_millis(300),
    }
}

/// One phase's results.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Shards in this phase's fleet.
    pub shards: usize,
    /// Length of the traffic window.
    pub window: Duration,
    /// Completions inside the window (goodput numerator).
    pub completed_in_window: u64,
    /// Goodput: completions in window / window seconds.
    pub rps: f64,
    /// Which shard each tenant routed to.
    pub assignments: Vec<(String, usize)>,
    /// Final telemetry after drain (ledger source of truth).
    pub snapshot: RouterSnapshot,
}

/// The full bench outcome.
#[derive(Debug, Clone)]
pub struct RouterBenchReport {
    /// Phase at `shard_counts.0`.
    pub low: PhaseReport,
    /// Phase at `shard_counts.1`.
    pub high: PhaseReport,
    /// `high.rps / low.rps`.
    pub scaling_x: f64,
    /// The overload/shedding phase (at `shard_counts.1`).
    pub overload: PhaseReport,
    /// The elastic phase: starts at `shard_counts.0` with the autoscale
    /// controller bounded by `shard_counts`, under the overload mix.
    pub autoscale: PhaseReport,
    /// Ledger problems across all phases (must be empty).
    pub problems: Vec<String>,
}

struct TenantSpec {
    name: String,
    class: Priority,
    hz: f64,
    deadline: Duration,
    hw: (usize, usize),
}

fn registry_for(cfg: &RouterBenchConfig) -> Result<Arc<ModelRegistry>, String> {
    // The served arch plus everything below it on the degrade chain, so
    // the overload phase has somewhere cheaper to step down to.
    let registry = Arc::new(ModelRegistry::new(8));
    for (i, arch) in ["m11", "m5", "m3"].iter().enumerate() {
        let sc = arch_config(arch, cfg.scale, cfg.expanded, cfg.seed + i as u64)?;
        registry.insert(ModelKey::new(arch, cfg.scale), Sesr::new(sc).collapse());
    }
    if !registry.contains(&ModelKey::new(&cfg.arch, cfg.scale)) {
        return Err(format!("arch {} not in the degrade-chain set", cfg.arch));
    }
    Ok(registry)
}

fn router_for(
    shards: usize,
    registry: Arc<ModelRegistry>,
    autoscale: Option<AutoscaleConfig>,
    tuner_file: Option<std::path::PathBuf>,
) -> Router {
    // The elastic phase starts at one shard under the full mix, so the
    // router queue must absorb the pre-scale-up backlog (deadline
    // misses drive the controller; queue-full rejections would fail the
    // phase). The fixed-fleet phases keep the small queue that makes
    // the shed/degrade thresholds engage.
    let shard_queue_capacity = if autoscale.is_some() { 256 } else { 16 };
    Router::new(
        RouterConfig {
            shards,
            engine: EngineConfig {
                workers: 1,
                // Small engine queue: backlog accumulates in the router
                // queue, where the shed/degrade thresholds read it.
                queue_capacity: 4,
                // Keep big inputs on the whole-image path so one heavy
                // request occupies the worker in one piece.
                tile_threshold_px: usize::MAX,
                tuner_path: tuner_file,
                ..EngineConfig::default()
            },
            shard_queue_capacity,
            default_policy: TenantPolicy {
                weight: 1,
                interactive: RateLimit::default(),
                batch: RateLimit::default(),
            },
            autoscale,
            ..RouterConfig::default()
        },
        registry,
    )
}

/// Drives one tenant open-loop for `window`, then waits out its
/// tickets. Returns nothing: all accounting is read from the router's
/// own telemetry, which is the ledger under test.
fn drive_tenant(router: &Router, key: &ModelKey, spec: &TenantSpec, window: Duration, seed: u64) {
    let input = Tensor::rand_uniform(&[1, spec.hw.0, spec.hw.1], 0.0, 1.0, seed);
    let start = Instant::now();
    let period = Duration::from_secs_f64(1.0 / spec.hz.max(0.001));
    let mut tickets: Vec<RouterTicket> = Vec::new();
    let mut i = 0u32;
    loop {
        let due = period.mul_f64(f64::from(i));
        if due >= window {
            break;
        }
        let now = start.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        i += 1;
        match router.submit(
            &spec.name,
            spec.class,
            key,
            input.clone(),
            Some(spec.deadline),
        ) {
            Ok(t) => tickets.push(t),
            // Open loop: rejections are the router's decision to
            // record; the generator just keeps to its schedule.
            Err(
                RouterSubmitError::ShedBatch
                | RouterSubmitError::Overloaded
                | RouterSubmitError::Throttled { .. }
                | RouterSubmitError::NoHealthyShard
                | RouterSubmitError::Draining,
            ) => {}
            Err(e) => panic!("router-bench: unexpected rejection: {e}"),
        }
    }
    for t in tickets {
        match t.wait() {
            Ok(_) | Err(RouterServeError::DeadlineExpired | RouterServeError::ShuttingDown) => {}
            Err(e) => panic!("router-bench: unexpected failure: {e}"),
        }
    }
}

fn run_phase(
    cfg: &RouterBenchConfig,
    shards: usize,
    specs: &[TenantSpec],
    autoscale: Option<AutoscaleConfig>,
    quiet: Duration,
    problems: &mut Vec<String>,
) -> Result<PhaseReport, String> {
    let registry = registry_for(cfg)?;
    let router = Arc::new(router_for(
        shards,
        registry,
        autoscale,
        cfg.tuner_file.clone(),
    ));
    let key = ModelKey::new(&cfg.arch, cfg.scale);
    let assignments: Vec<(String, usize)> = specs
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                router.route_of(&s.name, &key).unwrap_or(usize::MAX),
            )
        })
        .collect();
    let window = cfg.phase;
    let start = Instant::now();
    let handles: Vec<_> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let router = Arc::clone(&router);
            let key = key.clone();
            let spec = TenantSpec {
                name: spec.name.clone(),
                class: spec.class,
                hz: spec.hz,
                deadline: spec.deadline,
                hw: spec.hw,
            };
            let seed = cfg.seed ^ (0xBEEF << i);
            std::thread::spawn(move || drive_tenant(&router, &key, &spec, window, seed))
        })
        .collect();
    // Goodput is read exactly at the end of the traffic window, while
    // stragglers are still settling — completions after the window are
    // the drain's business, not the workload's.
    let remaining = window.saturating_sub(start.elapsed());
    std::thread::sleep(remaining);
    let at_window = router.telemetry();
    let completed_in_window = at_window.counters.completed;
    let rps = completed_in_window as f64 / window.as_secs_f64();
    // Quiet tail (autoscale phase only): no arrivals, so the elastic
    // controller's cold streak can drain the fleet back down.
    if !quiet.is_zero() {
        std::thread::sleep(quiet);
    }
    router.shutdown(Duration::from_millis(500));
    for h in handles {
        h.join()
            .map_err(|_| "generator thread panicked".to_string())?;
    }
    let snapshot = router.telemetry();
    for p in snapshot.reconcile() {
        problems.push(format!("shards={shards}: {p}"));
    }
    Ok(PhaseReport {
        shards,
        window,
        completed_in_window,
        rps,
        assignments,
        snapshot,
    })
}

/// Picks a heavy-tenant name that lands on a shard none of the
/// interactive tenants use at the high shard count, when one exists —
/// the balanced placement an operator would choose. Falls back to the
/// first candidate.
fn place_heavy_tenant(cfg: &RouterBenchConfig, interactive: &[String]) -> String {
    let Ok(registry) = registry_for(cfg) else {
        return "bulk-0".to_string();
    };
    let probe = router_for(cfg.shard_counts.1, registry, None, None);
    let key = ModelKey::new(&cfg.arch, cfg.scale);
    let taken: Vec<usize> = interactive
        .iter()
        .filter_map(|t| probe.route_of(t, &key))
        .collect();
    let name = (0..16)
        .map(|i| format!("bulk-{i}"))
        .find(|n| probe.route_of(n, &key).is_some_and(|s| !taken.contains(&s)))
        .unwrap_or_else(|| "bulk-0".to_string());
    probe.shutdown(Duration::from_secs(2));
    name
}

/// Runs the three phases: low-shard scaling, high-shard scaling, and
/// overload/shedding.
///
/// # Errors
///
/// Returns a message when the configuration is unusable (unknown arch)
/// or a generator thread panics.
pub fn run_router_bench(cfg: &RouterBenchConfig) -> Result<RouterBenchReport, String> {
    // Single-threaded compute: the scaling claim is queue-structural
    // and must not depend on intra-op parallelism.
    sesr_tensor::parallel::set_num_threads(1);
    let interactive: Vec<String> = (0..cfg.interactive_tenants)
        .map(|i| format!("int-{i}"))
        .collect();
    let heavy = place_heavy_tenant(cfg, &interactive);
    let specs = |int_hz: f64, heavy_hz: f64| -> Vec<TenantSpec> {
        let mut v: Vec<TenantSpec> = interactive
            .iter()
            .map(|name| TenantSpec {
                name: name.clone(),
                class: Priority::Interactive,
                hz: int_hz,
                deadline: cfg.interactive_deadline,
                hw: cfg.small,
            })
            .collect();
        v.push(TenantSpec {
            name: heavy.clone(),
            class: Priority::Batch,
            hz: heavy_hz,
            deadline: cfg.heavy_deadline,
            hw: cfg.big,
        });
        v
    };
    let mut problems = Vec::new();
    let steady = specs(cfg.interactive_hz, cfg.heavy_hz);
    let low = run_phase(
        cfg,
        cfg.shard_counts.0,
        &steady,
        None,
        Duration::ZERO,
        &mut problems,
    )?;
    let high = run_phase(
        cfg,
        cfg.shard_counts.1,
        &steady,
        None,
        Duration::ZERO,
        &mut problems,
    )?;
    let scaling_x = if low.rps > 0.0 {
        high.rps / low.rps
    } else {
        0.0
    };
    let over = specs(
        cfg.interactive_hz * cfg.overload_factor,
        cfg.overload_heavy_hz,
    );
    let overload = run_phase(
        cfg,
        cfg.shard_counts.1,
        &over,
        None,
        Duration::ZERO,
        &mut problems,
    )?;
    if overload.snapshot.counters.shed_batch == 0 {
        problems.push("overload phase: batch shedding never engaged".to_string());
    }
    if overload.snapshot.counters.rejected_interactive > 0 {
        problems.push(format!(
            "overload phase: {} interactive requests rejected (must shed batch first)",
            overload.snapshot.counters.rejected_interactive
        ));
    }
    // Elastic phase: interactive-only pressure aimed at a fleet that
    // starts at the low count and must grow its way out of it.
    let elastic: Vec<TenantSpec> = interactive
        .iter()
        .map(|name| TenantSpec {
            name: name.clone(),
            class: Priority::Interactive,
            hz: cfg.autoscale_hz,
            deadline: cfg.interactive_deadline,
            hw: cfg.small,
        })
        .collect();
    let autoscale = run_phase(
        cfg,
        cfg.shard_counts.0,
        &elastic,
        Some(autoscale_for(cfg)),
        cfg.autoscale_quiet,
        &mut problems,
    )?;
    let ac = &autoscale.snapshot.counters;
    if ac.scale_up_events == 0 {
        problems.push("autoscale phase: fleet never scaled up under overload".to_string());
    }
    if ac.scale_down_events == 0 {
        problems
            .push("autoscale phase: fleet never drained back down in the quiet tail".to_string());
    }
    if ac.replication_warm_hits == 0 {
        problems.push(
            "autoscale phase: no shared-plan warm hit (new shards re-collapsed plans)".to_string(),
        );
    }
    if ac.rejected_interactive > 0 {
        problems.push(format!(
            "autoscale phase: {} interactive requests rejected while elastic",
            ac.rejected_interactive
        ));
    }
    Ok(RouterBenchReport {
        low,
        high,
        scaling_x,
        overload,
        autoscale,
        problems,
    })
}

fn phase_json(p: &PhaseReport) -> String {
    let assignments: Vec<String> = p
        .assignments
        .iter()
        .map(|(t, s)| {
            JsonObject::new()
                .str("tenant", t)
                .int("shard", *s as u64)
                .finish()
        })
        .collect();
    JsonObject::new()
        .int("shards", p.shards as u64)
        .num("window_s", p.window.as_secs_f64())
        .int("completed_in_window", p.completed_in_window)
        .num("rps", p.rps)
        .raw("assignments", &crate::json::array(assignments))
        .raw("telemetry", &p.snapshot.to_json())
        .finish()
}

/// Serializes the report (with its configuration) as the
/// `BENCH_router.json` document.
pub fn router_bench_report_json(cfg: &RouterBenchConfig, r: &RouterBenchReport) -> String {
    let config = JsonObject::new()
        .int("seed", cfg.seed)
        .num("phase_s", cfg.phase.as_secs_f64())
        .int("shards_low", cfg.shard_counts.0 as u64)
        .int("shards_high", cfg.shard_counts.1 as u64)
        .int("interactive_tenants", cfg.interactive_tenants as u64)
        .num("interactive_hz", cfg.interactive_hz)
        .num(
            "interactive_deadline_ms",
            cfg.interactive_deadline.as_secs_f64() * 1e3,
        )
        .str("small_hw", &format!("{}x{}", cfg.small.0, cfg.small.1))
        .num("heavy_hz", cfg.heavy_hz)
        .str("big_hw", &format!("{}x{}", cfg.big.0, cfg.big.1))
        .num("overload_factor", cfg.overload_factor)
        .num("overload_heavy_hz", cfg.overload_heavy_hz)
        .str("arch", &cfg.arch)
        .int("scale", cfg.scale as u64)
        .int("expanded", cfg.expanded as u64)
        .num("autoscale_hz", cfg.autoscale_hz)
        .num("autoscale_quiet_s", cfg.autoscale_quiet.as_secs_f64())
        .str(
            "tuner_file",
            &cfg.tuner_file
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default(),
        )
        .finish();
    let problems: Vec<String> = r
        .problems
        .iter()
        .map(|p| JsonObject::new().str("problem", p).finish())
        .collect();
    let results = JsonObject::new()
        .raw(&format!("shards_{}", r.low.shards), &phase_json(&r.low))
        .raw(&format!("shards_{}", r.high.shards), &phase_json(&r.high))
        .num("scaling_x", r.scaling_x)
        .raw("overload", &phase_json(&r.overload))
        .raw("autoscale", &phase_json(&r.autoscale))
        .raw("problems", &crate::json::array(problems))
        .finish();
    JsonObject::new()
        .str("bench", "sesr-router")
        .raw("config", &config)
        .raw("results", &results)
        .finish()
}
