//! Streaming video SR sessions: temporal tile reuse, dirty-rect
//! planning, and any-time deadline-adaptive quality.
//!
//! The paper's x2 FHD→UHD accounting targets *video*, where consecutive
//! frames are mostly identical. This module exploits that redundancy on
//! top of the existing seam-exact tile machinery:
//!
//! * **Temporal tile reuse.** A [`VideoSession`] keeps one CRC32 content
//!   hash per [`TilePlan`] tile (interior LR bytes) plus the previous
//!   frame's composited HR plane. A tile whose halo-expanded input is
//!   unchanged since the last frame keeps its cached HR bits verbatim —
//!   zero compute, one blit.
//! * **Dirty-rect planning.** Changed tiles are expanded by the halo
//!   radius through [`TilePlan::recompute_mask`]: tile `T` recomputes
//!   exactly when some changed interior intersects `T`'s run region.
//!   Because `T`'s output depends on precisely its expanded region, the
//!   reused+recomputed composite is **bit-identical** to a whole-frame
//!   run (enforced by proptest in `tests/video.rs`).
//! * **Any-time quality ladder.** Under deadline pressure the session
//!   degrades PSNR instead of latency (after "ARM: Any-Time
//!   Super-Resolution Method"): each dirty tile picks a rung of the
//!   M3/M5/M7/M11 ladder from a cheap edge-energy difficulty estimate,
//!   then rungs are walked down when the per-rung EWMA cost model says
//!   the remaining deadline cannot fit the remaining tiles. Hard tiles
//!   are computed first at high rungs so the cheap rungs land on flat
//!   tiles, where the PSNR loss is smallest.
//!
//! The session itself is a pure state machine — hashing, planning,
//! compositing — with no threads or queues; `engine::Engine` wires it
//! into the worker pool as a new request kind (create/feed/close with
//! idempotent frame settlement), and `router::Router` adds per-tenant
//! session caps and shard pinning on top.

// Video sessions always serve f32 (`PrecisionDecision::F32`): temporal
// tile reuse composites cached HR tiles across frames, and mixing
// precisions within one session would break its bit-consistency
// guarantees (a composited frame must equal the whole-frame run).
use crate::plan_cache::{PlanCache, PrecisionDecision};
use crate::registry::ModelKey;
use sesr_core::crc32::Crc32;
use sesr_core::{CollapsedSesr, TileError, TilePlan, TileSpec};
use sesr_tensor::Tensor;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Ladder histogram buckets tracked per session (rungs past the last
/// bucket clamp into it, matching `telemetry::Counters::bump_video_rung`).
pub const RUNG_BUCKETS: usize = 4;

/// Typed failure modes of the video-session layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VideoError {
    /// The model ladder was empty.
    EmptyLadder,
    /// Ladder rungs disagree on the upscale factor; a session composites
    /// into one HR plane, so every rung must share a scale.
    MixedScale {
        /// Scale of the first rung.
        expected: usize,
        /// The offending rung's key.
        offender: ModelKey,
    },
    /// Frame height or width was zero.
    ZeroDim,
    /// Tile geometry was invalid.
    Tile(TileError),
    /// A model in the ladder could not be resolved.
    ModelLoad(String),
    /// A fed frame's shape did not match the session's `[1, H, W]`.
    FrameShape {
        /// Shape the session was opened with.
        expected: [usize; 3],
        /// Shape of the offending frame.
        got: Vec<usize>,
    },
    /// The frame sequence number is older than the last settled frame.
    StaleFrame {
        /// The rejected sequence number.
        seq: u64,
        /// The newest settled sequence number.
        last: u64,
    },
    /// No session with this id (never opened, or already closed).
    UnknownSession(u64),
    /// The tenant is at its concurrent-session cap.
    SessionLimit {
        /// The configured cap.
        limit: usize,
    },
    /// The shard a session was pinned to was replaced; its state is gone.
    SessionLost,
    /// The engine (or router) is draining; no new sessions or frames.
    Draining,
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::EmptyLadder => write!(f, "video session needs at least one ladder rung"),
            VideoError::MixedScale { expected, offender } => write!(
                f,
                "ladder rung {offender} does not match session scale x{expected}"
            ),
            VideoError::ZeroDim => write!(f, "frame dimensions must be positive"),
            VideoError::Tile(e) => write!(f, "tile plan: {e}"),
            VideoError::ModelLoad(m) => write!(f, "ladder model load failed: {m}"),
            VideoError::FrameShape { expected, got } => write!(
                f,
                "frame shape {got:?} does not match session shape {expected:?}"
            ),
            VideoError::StaleFrame { seq, last } => {
                write!(f, "frame seq {seq} is older than settled seq {last}")
            }
            VideoError::UnknownSession(id) => write!(f, "no video session with id {id}"),
            VideoError::SessionLimit { limit } => {
                write!(f, "tenant is at its session cap of {limit}")
            }
            VideoError::SessionLost => {
                write!(f, "session shard was replaced; reopen the session")
            }
            VideoError::Draining => write!(f, "draining: no new video work admitted"),
        }
    }
}

impl std::error::Error for VideoError {}

impl From<TileError> for VideoError {
    fn from(e: TileError) -> Self {
        VideoError::Tile(e)
    }
}

/// Configuration of one video session.
#[derive(Debug, Clone)]
pub struct VideoSessionSpec {
    /// LR frame height.
    pub height: usize,
    /// LR frame width.
    pub width: usize,
    /// Tile side length of the reuse grid.
    pub tile: usize,
    /// Quality ladder, cheapest rung first (e.g. m3, m5, m7, m11). The
    /// last rung is the full-quality reference; with `anytime` off every
    /// dirty tile runs there.
    pub ladder: Vec<ModelKey>,
    /// Enable the any-time difficulty/deadline rung policy.
    pub anytime: bool,
    /// Edge-energy cutoffs (ascending, `ladder.len() - 1` entries): a
    /// tile with mean-gradient energy below `thresholds[i]` is capped at
    /// rung `i`. Extra entries are ignored; missing entries push easy
    /// tiles to the top rung.
    pub difficulty_thresholds: Vec<f32>,
    /// Temporal tile reuse. Off forces every tile dirty each frame — the
    /// full-recompute baseline the bench compares against.
    pub reuse: bool,
}

impl VideoSessionSpec {
    /// A reuse-enabled spec with `anytime` off and default tile size.
    pub fn new(height: usize, width: usize, ladder: Vec<ModelKey>) -> Self {
        let thresholds = Self::default_thresholds(ladder.len());
        Self {
            height,
            width,
            tile: 32,
            ladder,
            anytime: false,
            difficulty_thresholds: thresholds,
            reuse: true,
        }
    }

    /// Default edge-energy cutoffs for an `n`-rung ladder.
    pub fn default_thresholds(n: usize) -> Vec<f32> {
        let base = [0.015f32, 0.04, 0.09];
        base.iter().copied().take(n.saturating_sub(1)).collect()
    }
}

/// Per-session monotonic counters, mirrored into the engine telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames accepted (including duplicates).
    pub frames_in: u64,
    /// Frames settled with a fresh composite.
    pub frames_completed: u64,
    /// Duplicate submissions settled idempotently from the cache.
    pub frames_duplicate: u64,
    /// Tiles whose cached HR output was reused verbatim.
    pub tiles_skipped: u64,
    /// Tiles recomputed through the ladder.
    pub tiles_recomputed: u64,
    /// Recomputed tiles that ran below the top rung.
    pub tiles_degraded: u64,
    /// Ladder histogram (rung index, clamped into the last bucket).
    pub rungs: [u64; RUNG_BUCKETS],
    /// Frames that finished after their deadline.
    pub deadline_misses: u64,
}

/// Per-frame outcome statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrameStats {
    /// The settled sequence number.
    pub seq: u64,
    /// Tiles in the session grid.
    pub tiles_total: u64,
    /// Tiles reused from the cache this frame.
    pub tiles_skipped: u64,
    /// Tiles recomputed this frame.
    pub tiles_recomputed: u64,
    /// Recomputed tiles below the top rung.
    pub tiles_degraded: u64,
    /// Ladder histogram for this frame.
    pub rungs: [u64; RUNG_BUCKETS],
    /// This submission was an idempotent duplicate.
    pub duplicate: bool,
    /// Processing finished after the deadline.
    pub deadline_missed: bool,
}

/// A settled frame: the composited HR output plus its statistics.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// The `[1, H*scale, W*scale]` super-resolved frame.
    pub output: Tensor,
    /// What happened while producing it.
    pub stats: FrameStats,
}

/// One dirty tile scheduled for recompute, ordered hardest-first.
struct DirtyTile {
    index: usize,
    difficulty: f64,
    desired_rung: usize,
    patch_px: f64,
}

/// The per-session state machine: content hashes, the cached HR plane,
/// the idempotency watermark, and the any-time cost model. Pure logic —
/// callers own locking and thread placement.
#[derive(Debug)]
pub struct VideoSession {
    spec: VideoSessionSpec,
    plan: TilePlan,
    scale: usize,
    halo: usize,
    /// CRC32 per tile interior of the last settled frame (empty before).
    prev_hashes: Vec<u32>,
    /// The last settled composite, reused for skipped tiles and
    /// duplicate settlement.
    hr: Option<Tensor>,
    last_seq: Option<u64>,
    /// EWMA nanoseconds per halo-expanded LR pixel, one slot per rung.
    ewma_ns_per_px: Vec<Option<f64>>,
    stats: SessionStats,
}

impl VideoSession {
    /// Opens a session. `models` must align with `spec.ladder`; they are
    /// only inspected for geometry (scale, receptive-field radius) — the
    /// per-frame path re-resolves models so registry reloads take effect.
    pub fn new(spec: VideoSessionSpec, models: &[Arc<CollapsedSesr>]) -> Result<Self, VideoError> {
        if spec.ladder.is_empty() || models.is_empty() {
            return Err(VideoError::EmptyLadder);
        }
        if spec.height == 0 || spec.width == 0 {
            return Err(VideoError::ZeroDim);
        }
        let scale = models[0].scale();
        for (key, model) in spec.ladder.iter().zip(models) {
            if model.scale() != scale {
                return Err(VideoError::MixedScale {
                    expected: scale,
                    offender: key.clone(),
                });
            }
        }
        // One halo wide enough for every rung keeps the dirty expansion
        // valid no matter which rung a tile lands on.
        let halo = models
            .iter()
            .map(|m| m.receptive_field_radius())
            .max()
            .unwrap_or(0);
        let plan = TilePlan::new(spec.height, spec.width, spec.tile, halo)?;
        let rungs = spec.ladder.len();
        Ok(Self {
            spec,
            plan,
            scale,
            halo,
            prev_hashes: Vec::new(),
            hr: None,
            last_seq: None,
            ewma_ns_per_px: vec![None; rungs],
            stats: SessionStats::default(),
        })
    }

    /// The session spec.
    pub fn spec(&self) -> &VideoSessionSpec {
        &self.spec
    }

    /// The tile grid the session reuses over.
    pub fn plan(&self) -> &TilePlan {
        &self.plan
    }

    /// The upscale factor shared by every ladder rung.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The halo radius (max receptive-field radius across the ladder).
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The newest settled sequence number.
    pub fn last_seq(&self) -> Option<u64> {
        self.last_seq
    }

    /// Precompiles every (rung, tile shape) plan this session can touch
    /// by running each grid tile once per ladder rung against a zero
    /// frame. A long-lived session reaches this state on its own within
    /// a few frames; a caller that must hold per-frame deadlines from
    /// the start pays the compile cost here instead of inside a
    /// deadline window. Session state and the EWMA cost model are
    /// untouched — warming runs are not load-representative samples.
    pub fn warm_plans(&self, models: &[Arc<CollapsedSesr>], plans: &mut PlanCache) {
        let frame = Tensor::zeros(&[1, self.spec.height, self.spec.width]);
        for (key, model) in self.spec.ladder.iter().zip(models) {
            let (planner, _) = plans.tile_planner_for(key, model, &PrecisionDecision::F32);
            for &spec in self.plan.tiles() {
                planner.run_tile(&frame, &spec);
            }
        }
    }

    /// Settles one frame: hashes tiles, plans the dirty set, recomputes
    /// it through the ladder, and composites into the cached HR plane.
    ///
    /// Settlement is **idempotent**: re-feeding the settled `seq`
    /// returns the cached composite without recompute (the retry path
    /// after a worker crash), while an older `seq` is a typed
    /// [`VideoError::StaleFrame`]. Sequence gaps are fine — correctness
    /// derives from content hashes, not continuity.
    ///
    /// State is committed only after every tile has computed, so a panic
    /// mid-frame (chaos, poisoned model) leaves the session exactly as
    /// it was — the caller can retry the same frame.
    ///
    /// `models` must align with `spec.ladder` and share the session
    /// scale; `plans` is the worker-local plan cache.
    pub fn process_frame(
        &mut self,
        seq: u64,
        frame: &Tensor,
        deadline: Option<Instant>,
        models: &[Arc<CollapsedSesr>],
        plans: &mut PlanCache,
    ) -> Result<FrameResult, VideoError> {
        let expected = [1, self.spec.height, self.spec.width];
        if frame.shape() != expected {
            return Err(VideoError::FrameShape {
                expected,
                got: frame.shape().to_vec(),
            });
        }
        assert_eq!(models.len(), self.spec.ladder.len(), "ladder misaligned");
        self.stats.frames_in += 1;

        if let Some(last) = self.last_seq {
            if seq == last {
                let output = self.hr.clone().expect("settled seq implies cached output");
                self.stats.frames_duplicate += 1;
                let stats = FrameStats {
                    seq,
                    tiles_total: self.plan.len() as u64,
                    duplicate: true,
                    ..FrameStats::default()
                };
                return Ok(FrameResult { output, stats });
            }
            if seq < last {
                return Err(VideoError::StaleFrame { seq, last });
            }
        }

        let (h, w, s) = (self.spec.height, self.spec.width, self.scale);
        let keys = self.spec.ladder.clone();
        let top = keys.len() - 1;

        // Pass 1: per-tile content hashes of the new frame.
        let hashes = hash_tiles(frame, self.plan.tiles());

        // Pass 2: dirty planning. The first frame (no previous hashes)
        // and reuse-off sessions recompute everything.
        let recompute: Vec<bool> = if self.prev_hashes.len() != hashes.len() || !self.spec.reuse {
            vec![true; hashes.len()]
        } else {
            let changed: Vec<bool> = hashes
                .iter()
                .zip(&self.prev_hashes)
                .map(|(a, b)| a != b)
                .collect();
            self.plan.recompute_mask(&changed)
        };

        // Pass 3: rung selection. Hardest tiles first, so that when the
        // deadline budget runs low it is the flat tiles that degrade.
        let mut dirty: Vec<DirtyTile> = self
            .plan
            .tiles()
            .iter()
            .enumerate()
            .filter(|&(i, _)| recompute[i])
            .map(|(i, t)| {
                let difficulty = edge_energy(frame, t);
                let desired_rung = if self.spec.anytime {
                    self.spec
                        .difficulty_thresholds
                        .iter()
                        .take(top)
                        .filter(|&&th| difficulty >= f64::from(th))
                        .count()
                } else {
                    top
                };
                DirtyTile {
                    index: i,
                    difficulty,
                    desired_rung,
                    patch_px: (t.patch_h() * t.patch_w()) as f64,
                }
            })
            .collect();
        dirty.sort_by(|a, b| {
            b.difficulty
                .partial_cmp(&a.difficulty)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        // Pass 4: compute dirty tiles into a fresh copy of the plane
        // (commit-at-end keeps a mid-frame panic from corrupting state).
        let mut out = match &self.hr {
            Some(prev) => prev.clone(),
            None => Tensor::zeros(&[1, h * s, w * s]),
        };
        let mut frame_stats = FrameStats {
            seq,
            tiles_total: self.plan.len() as u64,
            tiles_skipped: (recompute.len() - dirty.len()) as u64,
            ..FrameStats::default()
        };
        let mut ewma = self.ewma_ns_per_px.clone();
        // LR pixels still queued behind the current tile; with the live
        // cheapest-rung estimate this prices the floor cost of finishing
        // the frame, which the deadline fit reserves room for.
        let mut suffix_px: f64 = dirty.iter().map(|d| d.patch_px).sum();
        for d in &dirty {
            suffix_px -= d.patch_px;
            let rung = if self.spec.anytime {
                fit_rung(d, deadline, &ewma, ewma[0].unwrap_or(0.0) * suffix_px)
            } else {
                top
            };
            let spec = self.plan.tiles()[d.index];
            let started = Instant::now();
            let (planner, _) =
                plans.tile_planner_for(&keys[rung], &models[rung], &PrecisionDecision::F32);
            let sr = planner.run_tile(frame, &spec);
            let elapsed = started.elapsed().as_nanos() as f64;
            let sample = elapsed / d.patch_px.max(1.0);
            ewma[rung] = Some(match ewma[rung] {
                Some(prev) => 0.7 * prev + 0.3 * sample,
                None => sample,
            });
            paste_interior(&mut out, &sr, &spec, s);
            frame_stats.tiles_recomputed += 1;
            frame_stats.rungs[rung.min(RUNG_BUCKETS - 1)] += 1;
            if rung < top {
                frame_stats.tiles_degraded += 1;
            }
        }
        if let Some(d) = deadline {
            frame_stats.deadline_missed = Instant::now() > d;
        }

        // Commit.
        self.prev_hashes = hashes;
        self.hr = Some(out.clone());
        self.last_seq = Some(seq);
        self.ewma_ns_per_px = ewma;
        self.stats.frames_completed += 1;
        self.stats.tiles_skipped += frame_stats.tiles_skipped;
        self.stats.tiles_recomputed += frame_stats.tiles_recomputed;
        self.stats.tiles_degraded += frame_stats.tiles_degraded;
        for (acc, n) in self.stats.rungs.iter_mut().zip(frame_stats.rungs) {
            *acc += n;
        }
        if frame_stats.deadline_missed {
            self.stats.deadline_misses += 1;
        }
        Ok(FrameResult {
            output: out,
            stats: frame_stats,
        })
    }
}

/// Fraction of the remaining deadline the rung walk plans against. The
/// EWMA estimates trail the true cost on a machine whose speed shifts
/// under load, and planning to land exactly on the deadline converts
/// every positive estimate error into a miss; reserving slack degrades
/// a rung earlier instead — the cheap direction, since the contract is
/// "degrade PSNR, not latency". The margin matters more the faster the
/// kernels get: a fixed scheduler hiccup is a larger share of a smaller
/// frame budget.
const DEADLINE_SLACK: f64 = 0.8;

/// Picks the best rung ≤ `desired` whose estimated cost, plus a
/// cheapest-rung floor for the tiles still queued behind this one, fits
/// the slack-adjusted remaining deadline. Unknown costs are treated as
/// fitting (the first frame is exploratory — its samples train the
/// EWMA).
fn fit_rung(
    d: &DirtyTile,
    deadline: Option<Instant>,
    ewma: &[Option<f64>],
    floor_rest_ns: f64,
) -> usize {
    let Some(deadline) = deadline else {
        return d.desired_rung;
    };
    let remaining = deadline
        .checked_duration_since(Instant::now())
        .map_or(0.0, |r| r.as_nanos() as f64 * DEADLINE_SLACK);
    let mut rung = d.desired_rung;
    while rung > 0 {
        match ewma[rung] {
            Some(cost) if cost * d.patch_px + floor_rest_ns > remaining => rung -= 1,
            _ => break,
        }
    }
    rung
}

/// CRC32 of each tile's interior LR bytes (exact bits — `-0.0` and
/// `0.0` hash differently, which is what bit-identity needs).
fn hash_tiles(frame: &Tensor, tiles: &[TileSpec]) -> Vec<u32> {
    let w = frame.shape()[2];
    let data = frame.data();
    tiles
        .iter()
        .map(|t| {
            let mut h = Crc32::new();
            for y in t.y0..t.y1 {
                h.update_f32(&data[y * w + t.x0..y * w + t.x1]);
            }
            h.finish()
        })
        .collect()
}

/// Mean absolute gradient (horizontal + vertical) over a tile interior:
/// the cheap difficulty proxy behind the any-time rung choice. Flat
/// tiles score near zero; textured tiles score high.
fn edge_energy(frame: &Tensor, t: &TileSpec) -> f64 {
    let w = frame.shape()[2];
    let data = frame.data();
    let mut sum = 0.0f64;
    let mut n = 0u64;
    for y in t.y0..t.y1 {
        for x in t.x0..t.x1 {
            let v = data[y * w + x];
            if x + 1 < t.x1 {
                sum += f64::from((data[y * w + x + 1] - v).abs());
                n += 1;
            }
            if y + 1 < t.y1 {
                sum += f64::from((data[(y + 1) * w + x] - v).abs());
                n += 1;
            }
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Pastes the interior of a halo-expanded SR patch into the HR plane.
fn paste_interior(out: &mut Tensor, sr: &Tensor, spec: &TileSpec, s: usize) {
    out.copy_region_hw(
        sr,
        (spec.y0 - spec.ey0) * s,
        (spec.x0 - spec.ex0) * s,
        (spec.y1 - spec.y0) * s,
        (spec.x1 - spec.x0) * s,
        spec.y0 * s,
        spec.x0 * s,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_core::model::{Sesr, SesrConfig};
    use std::sync::OnceLock;

    fn ladder() -> &'static Vec<(ModelKey, Arc<CollapsedSesr>)> {
        static LADDER: OnceLock<Vec<(ModelKey, Arc<CollapsedSesr>)>> = OnceLock::new();
        LADDER.get_or_init(|| {
            [(1usize, "m1"), (2, "m2")]
                .iter()
                .map(|&(m, name)| {
                    let cfg = SesrConfig::m(m).with_expanded(8).with_seed(7 + m as u64);
                    (ModelKey::new(name, 2), Arc::new(Sesr::new(cfg).collapse()))
                })
                .collect()
        })
    }

    fn spec_of(h: usize, w: usize, tile: usize) -> VideoSessionSpec {
        let keys = ladder().iter().map(|(k, _)| k.clone()).collect();
        let mut spec = VideoSessionSpec::new(h, w, keys);
        spec.tile = tile;
        spec
    }

    fn models() -> Vec<Arc<CollapsedSesr>> {
        ladder().iter().map(|(_, m)| m.clone()).collect()
    }

    fn reference(frame: &Tensor) -> Tensor {
        let (_, top) = &ladder()[ladder().len() - 1];
        top.run(frame)
    }

    #[test]
    fn first_frame_matches_whole_frame_run() {
        let mut sess = VideoSession::new(spec_of(24, 20, 8), &models()).unwrap();
        let frame = Tensor::rand_uniform(&[1, 24, 20], 0.0, 1.0, 11);
        let mut plans = PlanCache::new();
        let r = sess
            .process_frame(0, &frame, None, &models(), &mut plans)
            .unwrap();
        assert_eq!(reference(&frame).max_abs_diff(&r.output), 0.0);
        assert_eq!(r.stats.tiles_skipped, 0);
        assert_eq!(r.stats.tiles_recomputed, sess.plan().len() as u64);
    }

    #[test]
    fn static_frame_skips_every_tile_and_is_bit_identical() {
        let mut sess = VideoSession::new(spec_of(24, 20, 8), &models()).unwrap();
        let frame = Tensor::rand_uniform(&[1, 24, 20], 0.0, 1.0, 12);
        let mut plans = PlanCache::new();
        let first = sess
            .process_frame(0, &frame, None, &models(), &mut plans)
            .unwrap();
        let second = sess
            .process_frame(1, &frame, None, &models(), &mut plans)
            .unwrap();
        assert_eq!(second.stats.tiles_recomputed, 0);
        assert_eq!(second.stats.tiles_skipped, sess.plan().len() as u64);
        assert_eq!(first.output.max_abs_diff(&second.output), 0.0);
        assert_eq!(reference(&frame).max_abs_diff(&second.output), 0.0);
    }

    #[test]
    fn partial_change_recomputes_dirty_rect_only_and_stays_exact() {
        let mut sess = VideoSession::new(spec_of(32, 32, 8), &models()).unwrap();
        let f0 = Tensor::rand_uniform(&[1, 32, 32], 0.0, 1.0, 13);
        let mut plans = PlanCache::new();
        sess.process_frame(0, &f0, None, &models(), &mut plans)
            .unwrap();
        // Poke one pixel in the middle of tile (1,1).
        let mut f1 = f0.clone();
        f1.data_mut()[12 * 32 + 12] += 0.5;
        let r = sess
            .process_frame(1, &f1, None, &models(), &mut plans)
            .unwrap();
        assert!(r.stats.tiles_recomputed > 0);
        assert!(
            r.stats.tiles_skipped > 0,
            "far tiles must reuse cached output"
        );
        assert_eq!(reference(&f1).max_abs_diff(&r.output), 0.0);
    }

    #[test]
    fn duplicate_seq_settles_idempotently_and_stale_seq_is_typed() {
        let mut sess = VideoSession::new(spec_of(16, 16, 8), &models()).unwrap();
        let f0 = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, 14);
        let f1 = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, 15);
        let mut plans = PlanCache::new();
        sess.process_frame(0, &f0, None, &models(), &mut plans)
            .unwrap();
        let settled = sess
            .process_frame(5, &f1, None, &models(), &mut plans)
            .unwrap();
        let dup = sess
            .process_frame(5, &f1, None, &models(), &mut plans)
            .unwrap();
        assert!(dup.stats.duplicate);
        assert_eq!(dup.stats.tiles_recomputed, 0);
        assert_eq!(settled.output.max_abs_diff(&dup.output), 0.0);
        let err = sess
            .process_frame(3, &f1, None, &models(), &mut plans)
            .unwrap_err();
        assert_eq!(err, VideoError::StaleFrame { seq: 3, last: 5 });
        assert_eq!(sess.stats().frames_duplicate, 1);
    }

    #[test]
    fn anytime_degrades_under_an_impossible_deadline() {
        let mut spec = spec_of(32, 32, 8);
        spec.anytime = true;
        // Force the difficulty policy to want the top rung everywhere so
        // any degradation observed comes from the deadline fit.
        spec.difficulty_thresholds = vec![0.0];
        let mut sess = VideoSession::new(spec, &models()).unwrap();
        let mut plans = PlanCache::new();
        let f0 = Tensor::rand_uniform(&[1, 32, 32], 0.0, 1.0, 16);
        // Frame 0 trains the EWMA cost model (no deadline).
        sess.process_frame(0, &f0, None, &models(), &mut plans)
            .unwrap();
        // Frame 1: everything dirty, deadline already unreachable — every
        // tile must fall to rung 0 instead of blowing the latency budget
        // at the top rung.
        let f1 = Tensor::rand_uniform(&[1, 32, 32], 0.0, 1.0, 17);
        let deadline = Instant::now() + std::time::Duration::from_nanos(1);
        let r = sess
            .process_frame(1, &f1, Some(deadline), &models(), &mut plans)
            .unwrap();
        assert_eq!(r.stats.tiles_degraded, r.stats.tiles_recomputed);
        assert_eq!(r.stats.rungs[0], r.stats.tiles_recomputed);
    }

    #[test]
    fn anytime_without_pressure_stays_at_desired_rungs() {
        let mut spec = spec_of(16, 16, 8);
        spec.anytime = true;
        spec.difficulty_thresholds = vec![0.0]; // everything is "hard"
        let mut sess = VideoSession::new(spec, &models()).unwrap();
        let mut plans = PlanCache::new();
        let f0 = Tensor::rand_uniform(&[1, 16, 16], 0.0, 1.0, 18);
        let r = sess
            .process_frame(0, &f0, None, &models(), &mut plans)
            .unwrap();
        assert_eq!(r.stats.tiles_degraded, 0);
        assert_eq!(reference(&f0).max_abs_diff(&r.output), 0.0);
    }

    #[test]
    fn open_rejects_bad_specs() {
        let ms = models();
        let empty = VideoSessionSpec::new(16, 16, Vec::new());
        assert_eq!(
            VideoSession::new(empty, &[]).unwrap_err(),
            VideoError::EmptyLadder
        );
        let zero = spec_of(0, 16, 8);
        assert_eq!(
            VideoSession::new(zero, &ms).unwrap_err(),
            VideoError::ZeroDim
        );
        let mut sess = VideoSession::new(spec_of(16, 16, 8), &ms).unwrap();
        let bad = Tensor::zeros(&[1, 8, 8]);
        let mut plans = PlanCache::new();
        match sess.process_frame(0, &bad, None, &ms, &mut plans) {
            Err(VideoError::FrameShape { .. }) => {}
            other => panic!("expected FrameShape, got {other:?}"),
        }
    }
}
