//! Deterministic load generation against an [`Engine`].
//!
//! Two standard load shapes:
//!
//! * **Closed loop** — a fixed number of in-flight requests; a new one is
//!   submitted the moment one completes. Measures saturated throughput.
//! * **Open loop** — requests arrive on a fixed schedule regardless of
//!   completion, the textbook way to expose queueing delay (and, at high
//!   rates, the rejection path).
//!
//! Inputs are seeded `Tensor::rand_uniform` images, so two runs with the
//! same [`LoadSpec`] submit byte-identical work in the same order. An
//! optional *burst* phase pauses the engine's consumers, oversubmits
//! beyond the queue bound, and counts the guaranteed rejections — a
//! deterministic demonstration of backpressure for the benchmark report.

use crate::engine::{Engine, ServeError, SubmitError, Ticket};
use crate::registry::ModelKey;
use sesr_tensor::Tensor;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How request arrivals are paced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Keep `concurrency` requests in flight at all times.
    Closed {
        /// In-flight bound (≥ 1).
        concurrency: usize,
    },
    /// Submit at `rate_hz` requests per second on a fixed schedule.
    Open {
        /// Arrival rate in requests/second (> 0).
        rate_hz: f64,
    },
}

/// A reproducible load profile.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Requests in the main (non-burst) phase.
    pub requests: usize,
    /// Arrival pacing.
    pub mode: LoadMode,
    /// Input height in pixels.
    pub height: usize,
    /// Input width in pixels.
    pub width: usize,
    /// Seed for the synthetic input images.
    pub seed: u64,
    /// Per-request deadline, if any.
    pub deadline: Option<Duration>,
    /// Extra requests submitted against a paused engine to demonstrate
    /// the rejection path (0 disables the burst phase).
    pub burst: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        Self {
            requests: 64,
            mode: LoadMode::Closed { concurrency: 4 },
            height: 64,
            width: 64,
            seed: 0,
            deadline: None,
            burst: 0,
        }
    }
}

/// What the load run observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoadReport {
    /// Requests admitted by the engine (main phase).
    pub submitted: u64,
    /// Requests that returned an output image.
    pub completed: u64,
    /// Main-phase submissions rejected with `QueueFull`.
    pub rejected: u64,
    /// Admitted requests dropped because their deadline expired.
    pub deadline_expired: u64,
    /// Admitted requests that resolved with any other typed error
    /// (worker crash, model-load failure, shutdown).
    pub failed: u64,
    /// Burst-phase submissions rejected while the engine was paused.
    pub burst_rejected: u64,
    /// Burst-phase submissions that were admitted (and later completed
    /// or expired after resume).
    pub burst_admitted: u64,
    /// Wall-clock time of the main phase in milliseconds.
    pub wall_ms: f64,
    /// Completed requests per second of wall time.
    pub throughput_rps: f64,
    /// Upscaled output pixels produced per second, in megapixels.
    pub output_megapixels_per_s: f64,
}

/// Number of distinct synthetic inputs cycled through (bounding memory
/// while still exercising varied data).
const DISTINCT_INPUTS: usize = 8;

/// Runs `spec` against `engine`, blocking until every admitted request
/// resolves. Deterministic given the same spec and engine config
/// (modulo wall-clock timings).
pub fn run_load(engine: &Engine, key: &ModelKey, spec: &LoadSpec) -> LoadReport {
    let inputs: Vec<Tensor> = (0..DISTINCT_INPUTS.min(spec.requests.max(1)))
        .map(|i| {
            Tensor::rand_uniform(
                &[1, spec.height, spec.width],
                0.0,
                1.0,
                spec.seed.wrapping_add(i as u64),
            )
        })
        .collect();
    let mut report = LoadReport::default();
    let mut output_px: u64 = 0;
    let started = Instant::now();

    let resolve = |ticket: Ticket, report: &mut LoadReport, output_px: &mut u64| match ticket.wait()
    {
        Ok(sr) => {
            report.completed += 1;
            *output_px += sr.shape().iter().skip(1).product::<usize>() as u64;
        }
        Err(ServeError::DeadlineExpired) => report.deadline_expired += 1,
        Err(_) => report.failed += 1,
    };

    match spec.mode {
        LoadMode::Closed { concurrency } => {
            let mut inflight: VecDeque<Ticket> = VecDeque::new();
            for i in 0..spec.requests {
                while inflight.len() >= concurrency.max(1) {
                    let t = inflight.pop_front().expect("inflight non-empty");
                    resolve(t, &mut report, &mut output_px);
                }
                match engine.submit(key, inputs[i % inputs.len()].clone(), spec.deadline) {
                    Ok(t) => {
                        report.submitted += 1;
                        inflight.push_back(t);
                    }
                    Err(SubmitError::QueueFull { .. }) => report.rejected += 1,
                    Err(_) => break,
                }
            }
            for t in inflight {
                resolve(t, &mut report, &mut output_px);
            }
        }
        LoadMode::Open { rate_hz } => {
            let rate = rate_hz.max(1e-3);
            let mut inflight: Vec<Ticket> = Vec::new();
            for i in 0..spec.requests {
                let due = started + Duration::from_secs_f64(i as f64 / rate);
                if let Some(sleep) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(sleep);
                }
                match engine.submit(key, inputs[i % inputs.len()].clone(), spec.deadline) {
                    Ok(t) => {
                        report.submitted += 1;
                        inflight.push(t);
                    }
                    Err(SubmitError::QueueFull { .. }) => report.rejected += 1,
                    Err(_) => break,
                }
            }
            for t in inflight {
                resolve(t, &mut report, &mut output_px);
            }
        }
    }

    let wall = started.elapsed();
    report.wall_ms = wall.as_secs_f64() * 1e3;
    report.throughput_rps = report.completed as f64 / wall.as_secs_f64().max(1e-9);
    report.output_megapixels_per_s = output_px as f64 / 1e6 / wall.as_secs_f64().max(1e-9);

    if spec.burst > 0 {
        let mut admitted = Vec::new();
        engine.pause();
        for i in 0..spec.burst {
            match engine.submit(key, inputs[i % inputs.len()].clone(), spec.deadline) {
                Ok(t) => {
                    report.burst_admitted += 1;
                    admitted.push(t);
                }
                Err(SubmitError::QueueFull { .. }) => report.burst_rejected += 1,
                Err(_) => break,
            }
        }
        engine.resume();
        // Burst completions resolve into a scratch report so the main
        // phase's completed/throughput numbers stay untouched.
        let mut scratch = LoadReport::default();
        let mut scratch_px = 0u64;
        for t in admitted {
            resolve(t, &mut scratch, &mut scratch_px);
        }
    }

    report
}
