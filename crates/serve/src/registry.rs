//! Model registry: multiple collapsed models keyed by `(arch, scale)`,
//! lazily loaded from `model_io` files, with LRU eviction.
//!
//! The registry separates *registration* (telling the engine a model
//! exists and where its `.sesr` artifact lives — cheap, done up front)
//! from *residency* (the decoded weights living in memory — bounded by
//! `capacity`, managed LRU). Workers call [`ModelRegistry::get`] per
//! batch; hits are an `Arc` clone, misses decode the artifact and may
//! evict the least-recently-used resident model. Weights are shared
//! across worker threads via `Arc<CollapsedSesr>`, which is sound because
//! tensors are plain owned storage (`Send + Sync`).

use sesr_core::model_io::load_model;
use sesr_core::CollapsedSesr;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Identity of a servable model: architecture name and upscaling factor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Architecture label, e.g. `"m5"` or `"xl"`.
    pub arch: String,
    /// Upscaling factor (2 or 4).
    pub scale: usize,
}

impl ModelKey {
    /// Convenience constructor.
    pub fn new(arch: &str, scale: usize) -> Self {
        Self {
            arch: arch.to_string(),
            scale,
        }
    }
}

impl fmt::Display for ModelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.arch, self.scale)
    }
}

/// Failure to produce a resident model for a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The key was never registered.
    Unknown(ModelKey),
    /// The registered artifact failed to load or decode.
    Load {
        /// The model being loaded.
        key: ModelKey,
        /// I/O or decode failure description.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Unknown(k) => write!(f, "model {k} is not registered"),
            RegistryError::Load { key, message } => {
                write!(f, "loading model {key} failed: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Point-in-time registry statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// `get` calls served from residency.
    pub hits: u64,
    /// Artifact loads (cold `get`s).
    pub loads: u64,
    /// Models evicted to respect `capacity`.
    pub evictions: u64,
    /// Models resident right now.
    pub resident: usize,
    /// Keys registered (resident or not).
    pub registered: usize,
}

struct Resident {
    model: Arc<CollapsedSesr>,
    last_used: u64,
}

struct Inner {
    paths: HashMap<ModelKey, PathBuf>,
    resident: HashMap<ModelKey, Resident>,
    tick: u64,
    hits: u64,
    loads: u64,
    evictions: u64,
}

/// Thread-safe LRU-bounded model store.
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ModelRegistry {
    /// A registry keeping at most `capacity` (≥ 1) models resident.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                paths: HashMap::new(),
                resident: HashMap::new(),
                tick: 0,
                hits: 0,
                loads: 0,
                evictions: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a `.sesr` artifact for lazy loading under `key`.
    pub fn register_path(&self, key: ModelKey, path: PathBuf) {
        self.lock().paths.insert(key, path);
    }

    /// Makes an already-decoded model resident under `key` (it also
    /// becomes the most recently used, possibly evicting another).
    pub fn insert(&self, key: ModelKey, model: CollapsedSesr) {
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        g.resident.insert(
            key,
            Resident {
                model: Arc::new(model),
                last_used: tick,
            },
        );
        Self::evict_to_capacity(&mut g, self.capacity);
    }

    /// True if `key` is servable (resident or registered for lazy load).
    pub fn contains(&self, key: &ModelKey) -> bool {
        let g = self.lock();
        g.resident.contains_key(key) || g.paths.contains_key(key)
    }

    /// Returns the model for `key`, loading it from its registered
    /// artifact if not resident (evicting the LRU resident model when
    /// over capacity).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Unknown`] for unregistered keys;
    /// [`RegistryError::Load`] when the artifact cannot be read/decoded.
    pub fn get(&self, key: &ModelKey) -> Result<Arc<CollapsedSesr>, RegistryError> {
        let mut g = self.lock();
        g.tick += 1;
        let tick = g.tick;
        if let Some(r) = g.resident.get_mut(key) {
            r.last_used = tick;
            let model = Arc::clone(&r.model);
            g.hits += 1;
            return Ok(model);
        }
        let Some(path) = g.paths.get(key).cloned() else {
            return Err(RegistryError::Unknown(key.clone()));
        };
        // Decoding happens under the lock: it serializes cold loads, but
        // guarantees a model is decoded at most once per residency and
        // keeps the LRU bookkeeping race-free. Artifacts are small
        // (collapsed SESR is tens of KB), so the hold time is short.
        let model = load_model(&path).map_err(|e| RegistryError::Load {
            key: key.clone(),
            message: e.to_string(),
        })?;
        g.loads += 1;
        let model = Arc::new(model);
        g.resident.insert(
            key.clone(),
            Resident {
                model: Arc::clone(&model),
                last_used: tick,
            },
        );
        Self::evict_to_capacity(&mut g, self.capacity);
        Ok(model)
    }

    fn evict_to_capacity(g: &mut Inner, capacity: usize) {
        while g.resident.len() > capacity {
            let Some(lru) = g
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            g.resident.remove(&lru);
            g.evictions += 1;
        }
    }

    /// Current hit/load/eviction counters and residency.
    pub fn stats(&self) -> RegistryStats {
        let g = self.lock();
        RegistryStats {
            hits: g.hits,
            loads: g.loads,
            evictions: g.evictions,
            resident: g.resident.len(),
            registered: g
                .paths
                .keys()
                .chain(g.resident.keys())
                .collect::<std::collections::HashSet<_>>()
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_core::model::{Sesr, SesrConfig};
    use sesr_core::model_io::save_model;

    fn tiny(seed: u64) -> CollapsedSesr {
        Sesr::new(SesrConfig::m(1).with_expanded(4).with_seed(seed)).collapse()
    }

    fn tmp_model(name: &str, seed: u64) -> PathBuf {
        let dir = std::env::temp_dir().join("sesr_registry_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        save_model(&tiny(seed), &path).unwrap();
        path
    }

    #[test]
    fn unknown_key_is_a_typed_error() {
        let r = ModelRegistry::new(2);
        let err = r.get(&ModelKey::new("m5", 2)).unwrap_err();
        assert_eq!(err, RegistryError::Unknown(ModelKey::new("m5", 2)));
    }

    #[test]
    fn lazy_load_then_hit() {
        let r = ModelRegistry::new(2);
        let key = ModelKey::new("m1", 2);
        r.register_path(key.clone(), tmp_model("lazy.sesr", 1));
        assert!(r.contains(&key));
        assert_eq!(r.stats().resident, 0, "registration must not load");
        let a = r.get(&key).unwrap();
        let b = r.get(&key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hits must share the same weights");
        let s = r.stats();
        assert_eq!((s.loads, s.hits, s.resident), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_prefers_least_recently_used() {
        let r = ModelRegistry::new(2);
        let (k1, k2, k3) = (
            ModelKey::new("a", 2),
            ModelKey::new("b", 2),
            ModelKey::new("c", 2),
        );
        r.register_path(k1.clone(), tmp_model("lru_a.sesr", 1));
        r.register_path(k2.clone(), tmp_model("lru_b.sesr", 2));
        r.register_path(k3.clone(), tmp_model("lru_c.sesr", 3));
        r.get(&k1).unwrap();
        r.get(&k2).unwrap();
        r.get(&k1).unwrap(); // k1 is now most recent; k2 is LRU
        r.get(&k3).unwrap(); // evicts k2
        let s = r.stats();
        assert_eq!((s.evictions, s.resident), (1, 2));
        // k2 reloads (a second load), k1 would still be a hit if touched
        // before the k2 reload evicts it.
        r.get(&k2).unwrap();
        assert_eq!(r.stats().loads, 4);
    }

    #[test]
    fn load_failure_is_reported_with_key() {
        let r = ModelRegistry::new(1);
        let key = ModelKey::new("ghost", 4);
        r.register_path(key.clone(), PathBuf::from("/nonexistent/ghost.sesr"));
        let err = r.get(&key).unwrap_err();
        assert!(matches!(err, RegistryError::Load { .. }));
        assert!(err.to_string().contains("ghostx4"));
    }

    #[test]
    fn insert_makes_model_resident_without_a_path() {
        let r = ModelRegistry::new(1);
        let key = ModelKey::new("direct", 2);
        r.insert(key.clone(), tiny(9));
        assert!(r.contains(&key));
        r.get(&key).unwrap();
        assert_eq!(r.stats().hits, 1);
    }
}
