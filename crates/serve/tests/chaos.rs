//! Fault-injection tests: targeted crash-recovery scenarios plus the
//! chaos soak, which drives seeded mixed faults (panic / slow / load
//! failure / clock skew) through the engine under load and proves that
//! (a) the process never aborts, (b) every submitted request receives
//! exactly one terminal outcome, and (c) the fault, restart, retry, and
//! rejection counters reconcile.

use sesr_core::model::{Sesr, SesrConfig};
use sesr_core::CollapsedSesr;
use sesr_serve::chaos::{Chaos, ChaosConfig};
use sesr_serve::engine::{Engine, EngineConfig, Health, ServeError, SubmitError, Ticket};
use sesr_serve::registry::{ModelKey, ModelRegistry};
use sesr_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

fn tiny_model(seed: u64) -> CollapsedSesr {
    Sesr::new(SesrConfig::m(2).with_expanded(8).with_seed(seed)).collapse()
}

fn registry_with(key: &ModelKey, model: CollapsedSesr) -> Arc<ModelRegistry> {
    let r = Arc::new(ModelRegistry::new(4));
    r.insert(key.clone(), model);
    r
}

fn img(seed: u64, h: usize, w: usize) -> Tensor {
    Tensor::rand_uniform(&[1, h, w], 0.0, 1.0, seed)
}

/// Finds a seed whose *first* panic decision fires and whose next
/// `clear` decisions don't, so a test can inject exactly one panic at a
/// known point. Decisions are pure functions of the seed, so the search
/// is deterministic.
fn seed_with_single_leading_panic(per_mille: u32, clear: usize) -> u64 {
    (0u64..10_000)
        .find(|&seed| {
            let probe = Chaos::new(ChaosConfig {
                seed,
                panic_per_mille: per_mille,
                ..ChaosConfig::default()
            });
            probe.panic_in_forward() && (0..clear).all(|_| !probe.panic_in_forward())
        })
        .expect("a suitable seed exists in the first 10k")
}

#[test]
fn batch_panic_is_retried_and_the_worker_respawned() {
    let seed = seed_with_single_leading_panic(500, 8);
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(2));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            max_retries: 2,
            restart_budget: 2,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ChaosConfig {
                seed,
                panic_per_mille: 500,
                ..ChaosConfig::default()
            }),
            ..EngineConfig::default()
        },
        registry,
    );
    // The first forward panics (killing the worker); the supervisor
    // respawns it and the retried request succeeds.
    let out = engine.submit(&key, img(3, 8, 8), None).unwrap().wait();
    assert!(out.is_ok(), "retry after a crash must succeed: {out:?}");
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.worker_crashes, 1);
    assert_eq!(c.worker_restarts, 1);
    assert_eq!(c.requests_retried, 1);
    assert_eq!(c.faults_panic, 1);
    assert_eq!(c.completed, 1);
    assert_eq!(engine.restarts_used(), 1);
    // One of two budgeted respawns is spent: half the budget => Degraded.
    assert_eq!(engine.health(), Health::Degraded);
}

#[test]
fn tile_panic_is_contained_and_retried_without_killing_the_worker() {
    let seed = seed_with_single_leading_panic(500, 8);
    let key = ModelKey::new("m2", 2);
    let model = tiny_model(4);
    let registry = registry_with(&key, tiny_model(4));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            tile_threshold_px: 24 * 24, // low threshold: the request tiles
            tile: 10,
            max_retries: 1,
            // Zero budget: if the tile panic escaped its containment the
            // lone worker would die unrecoverably and this test would
            // observe WorkerCrashed instead of a result.
            restart_budget: 0,
            chaos: Some(ChaosConfig {
                seed,
                panic_per_mille: 500,
                ..ChaosConfig::default()
            }),
            ..EngineConfig::default()
        },
        registry,
    );
    let x = img(7, 30, 26);
    let served = engine
        .submit(&key, x.clone(), None)
        .unwrap()
        .wait()
        .unwrap();
    let direct = model.run(&x);
    assert_eq!(
        served.data(),
        direct.data(),
        "the retried tiled request must stay bit-identical"
    );
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.worker_crashes, 1, "the injected tile panic was captured");
    assert_eq!(c.worker_restarts, 0, "the worker must survive a tile panic");
    assert_eq!(c.requests_retried, 1);
    assert_eq!(c.completed, 1);
    assert_eq!(engine.health(), Health::Healthy);
}

#[test]
fn chaos_soak_survives_injected_faults_with_zero_lost_requests() {
    const REQUESTS: u64 = 400;
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(1));
    let engine = Engine::new(
        EngineConfig {
            workers: 3,
            queue_capacity: 256,
            max_batch: 3,
            max_retries: 3,
            restart_budget: 10_000,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            chaos: Some(ChaosConfig {
                seed: 0xC4A05,
                panic_per_mille: 150,
                slow_per_mille: 150,
                load_fail_per_mille: 200,
                skew_per_mille: 50,
                slow: Duration::from_millis(1),
                // Far beyond the request deadline below: a skewed clock
                // expires its whole batch.
                skew: Duration::from_secs(60),
            }),
            ..EngineConfig::default()
        },
        registry,
    );

    let deadline = Some(Duration::from_secs(30));
    let (mut ok, mut expired, mut load_failed, mut crashed, mut other) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut resolve = |t: Ticket| match t.wait() {
        Ok(_) => ok += 1,
        Err(ServeError::DeadlineExpired) => expired += 1,
        Err(ServeError::ModelLoad(_)) => load_failed += 1,
        Err(ServeError::WorkerCrashed(_)) => crashed += 1,
        Err(_) => other += 1,
    };

    // Closed-loop client: 12 requests in flight at all times.
    let mut inflight: VecDeque<Ticket> = VecDeque::new();
    for i in 0..REQUESTS {
        while inflight.len() >= 12 {
            let t = inflight.pop_front().expect("inflight non-empty");
            resolve(t);
        }
        match engine.submit(&key, img(i, 8, 8), deadline) {
            Ok(t) => inflight.push_back(t),
            Err(e) => panic!("unexpected rejection under soak load: {e}"),
        }
    }
    for t in inflight {
        resolve(t);
    }

    // Graceful drain: everything already settled, so nothing drops and
    // the supervisor + workers join well within the deadline.
    let report = engine.shutdown(Duration::from_secs(10));
    assert!(report.joined, "shutdown must join within its deadline");
    assert_eq!(report.dropped, 0, "no settled request may be re-dropped");

    // Exactly one terminal outcome per submitted request; the process
    // never aborted (we are still here) and nothing saw ShuttingDown.
    assert_eq!(
        ok + expired + load_failed + crashed + other,
        REQUESTS,
        "every request gets exactly one terminal outcome"
    );
    assert_eq!(other, 0, "no request may observe a shutdown error mid-soak");

    // Reconciliation: the engine's ledger must match the client's.
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.submitted, REQUESTS);
    assert_eq!(c.completed, ok);
    assert_eq!(c.rejected_deadline, expired);
    assert_eq!(c.requests_quarantined, crashed);
    let fault_sum = c.faults_panic + c.faults_slow + c.faults_load + c.faults_skew;
    assert_eq!(c.faults_injected, fault_sum);
    assert!(
        c.faults_injected >= 50,
        "the soak must inject >= 50 faults, got {}",
        c.faults_injected
    );
    assert!(
        c.faults_panic > 0 && c.faults_slow > 0 && c.faults_load > 0 && c.faults_skew > 0,
        "all four fault points must fire: {:?}",
        [c.faults_panic, c.faults_slow, c.faults_load, c.faults_skew]
    );
    // Every batch-path panic kills exactly one worker, and the ample
    // restart budget means the supervisor respawned each of them.
    assert_eq!(c.worker_crashes, c.faults_panic);
    assert_eq!(c.worker_restarts, c.faults_panic);
    // Each panic/load fault hits at least one request, which is then
    // either retried or terminally failed with the matching typed error.
    assert!(c.requests_retried > 0, "some faults must have been retried");
    assert!(
        c.requests_retried + c.requests_quarantined + load_failed
            >= c.faults_panic + c.faults_load,
        "retries ({}) + quarantined ({}) + terminal load failures ({}) must cover panic ({}) + load ({}) faults",
        c.requests_retried,
        c.requests_quarantined,
        load_failed,
        c.faults_panic,
        c.faults_load
    );

    // Post-shutdown: draining state, admissions rejected with Draining.
    assert_eq!(engine.health(), Health::Draining);
    assert_eq!(
        engine.submit(&key, img(0, 8, 8), None).unwrap_err(),
        SubmitError::Draining
    );
    assert_eq!(engine.telemetry().snapshot().counters.rejected_draining, 1);
}
