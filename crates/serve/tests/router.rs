//! Router (fleet) tests: routing stability, weighted-fair dequeue,
//! priority-ordered shedding, any-time degrade, the shutdown/submit
//! race, and the fleet-scope chaos soak — whole-shard kills, wedges,
//! and failed respawns under load, reconciled to zero lost requests and
//! exactly one terminal outcome per request.

use sesr_core::model::{Sesr, SesrConfig};
use sesr_serve::chaos::ShardChaosConfig;
use sesr_serve::engine::EngineConfig;
use sesr_serve::registry::{ModelKey, ModelRegistry};
use sesr_serve::router::{
    BreakerState, Priority, RateLimit, Router, RouterConfig, RouterServeError, RouterSubmitError,
    RouterTicket, TenantPolicy,
};
use sesr_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn registry_with_archs(archs: &[(&str, usize)]) -> Arc<ModelRegistry> {
    let r = Arc::new(ModelRegistry::new(8));
    for (i, &(arch, m)) in archs.iter().enumerate() {
        let model = Sesr::new(SesrConfig::m(m).with_expanded(8).with_seed(7 + i as u64)).collapse();
        r.insert(ModelKey::new(arch, 2), model);
    }
    r
}

fn tiny_registry() -> Arc<ModelRegistry> {
    registry_with_archs(&[("m2", 2)])
}

fn img(seed: u64, h: usize, w: usize) -> Tensor {
    Tensor::rand_uniform(&[1, h, w], 0.0, 1.0, seed)
}

fn fast_engine(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        queue_capacity: 32,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
        ..EngineConfig::default()
    }
}

#[test]
fn requests_are_served_across_shards_and_ledger_reconciles() {
    let registry = tiny_registry();
    let router = Router::new(
        RouterConfig {
            shards: 3,
            engine: fast_engine(1),
            ..RouterConfig::default()
        },
        registry,
    );
    let key = ModelKey::new("m2", 2);
    let mut tickets = Vec::new();
    for i in 0..60u64 {
        let tenant = format!("tenant-{}", i % 5);
        let class = if i % 3 == 0 {
            Priority::Batch
        } else {
            Priority::Interactive
        };
        tickets.push(
            router
                .submit(&tenant, class, &key, img(i, 12, 12), None)
                .expect("healthy fleet admits"),
        );
    }
    for t in tickets {
        let out = t.wait().expect("healthy fleet serves");
        assert_eq!(out.shape(), &[1, 24, 24]);
    }
    let snap = router.telemetry();
    assert_eq!(snap.counters.completed, 60);
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    router.shutdown(Duration::from_secs(5));
}

#[test]
fn routing_is_stable_and_spreads_tenants() {
    let registry = tiny_registry();
    let router = Router::new(
        RouterConfig {
            shards: 4,
            engine: fast_engine(1),
            ..RouterConfig::default()
        },
        registry,
    );
    let key = ModelKey::new("m2", 2);
    let mut seen = std::collections::HashSet::new();
    for i in 0..64 {
        let tenant = format!("tenant-{i}");
        let a = router.route_of(&tenant, &key).unwrap();
        let b = router.route_of(&tenant, &key).unwrap();
        assert_eq!(a, b, "routing must be deterministic");
        seen.insert(a);
    }
    assert!(
        seen.len() >= 3,
        "64 tenants over 4 shards must hit at least 3 shards, hit {seen:?}"
    );
    router.shutdown(Duration::from_secs(5));
}

#[test]
fn token_bucket_throttles_per_tenant_and_class() {
    let registry = tiny_registry();
    let limited = TenantPolicy {
        weight: 1,
        interactive: RateLimit {
            rate_per_sec: 0.001,
            burst: 3.0,
        },
        batch: RateLimit::default(),
    };
    let router = Router::new(
        RouterConfig {
            shards: 1,
            engine: fast_engine(1),
            policies: vec![("metered".to_string(), limited)],
            ..RouterConfig::default()
        },
        registry,
    );
    let key = ModelKey::new("m2", 2);
    let mut tickets = Vec::new();
    let mut throttled = 0;
    for i in 0..6u64 {
        match router.submit("metered", Priority::Interactive, &key, img(i, 8, 8), None) {
            Ok(t) => tickets.push(t),
            Err(RouterSubmitError::Throttled { tenant }) => {
                assert_eq!(tenant, "metered");
                throttled += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert_eq!(tickets.len(), 3, "burst of 3 admits exactly 3");
    assert_eq!(throttled, 3);
    // The same tenant's *batch* bucket is untouched, and other tenants
    // are unaffected.
    router
        .submit("metered", Priority::Batch, &key, img(9, 8, 8), None)
        .expect("batch class has its own bucket")
        .wait()
        .unwrap();
    router
        .submit("other", Priority::Interactive, &key, img(10, 8, 8), None)
        .expect("other tenants unaffected")
        .wait()
        .unwrap();
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(router.telemetry().counters.throttled, 3);
    router.shutdown(Duration::from_secs(5));
}

/// With the engines paused, queue 20 jobs from a flooding tenant and 2
/// from a light tenant into one shard, then resume: the light tenant's
/// jobs must not all be served last (weighted-fair, not FIFO), and
/// interactive must dequeue strictly before batch.
#[test]
fn weighted_fair_dequeue_prevents_starvation() {
    let registry = tiny_registry();
    let router = Router::new(
        RouterConfig {
            shards: 1,
            engine: EngineConfig {
                // Engine queue of 1: the dispatcher forwards one job at
                // a time, so completion order tracks DRR dequeue order
                // instead of collapsing into the engine's FIFO.
                queue_capacity: 1,
                ..fast_engine(1)
            },
            shard_queue_capacity: 64,
            ..RouterConfig::default()
        },
        registry,
    );
    let key = ModelKey::new("m2", 2);
    let order: Arc<std::sync::Mutex<Vec<String>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    // Flood: 20 batch jobs from "hog", then 2 batch jobs from "mouse",
    // then 2 interactive jobs from "vip" — submitted last, served first.
    let mut submit = |tenant: &str, class: Priority, n: usize, seed0: u64| {
        for i in 0..n {
            let t = router
                .submit(tenant, class, &key, img(seed0 + i as u64, 10, 10), None)
                .expect("within queue bound");
            let order = Arc::clone(&order);
            let name = tenant.to_string();
            handles.push(std::thread::spawn(move || {
                t.wait().unwrap();
                order.lock().unwrap().push(name);
            }));
        }
    };
    submit("hog", Priority::Batch, 20, 100);
    submit("mouse", Priority::Batch, 2, 200);
    submit("vip", Priority::Interactive, 2, 300);
    for h in handles {
        h.join().unwrap();
    }
    let order = order.lock().unwrap();
    assert_eq!(order.len(), 24);
    let pos_last = |name: &str| order.iter().rposition(|t| t == name).unwrap();
    // DRR alternates hog/mouse instead of serving all 20 hog jobs
    // first: mouse's last job lands well before hog's last job.
    assert!(
        pos_last("mouse") < pos_last("hog"),
        "mouse starved: order = {order:?}"
    );
    assert!(
        pos_last("mouse") < 10,
        "mouse should finish in the first half, order = {order:?}"
    );
    // Interactive band drains strictly before remaining batch work.
    // A few batch jobs were already dispatched (engine queue of 1 plus
    // one in flight) before vip submitted; allow those, but vip must
    // jump the remaining ~20-job batch backlog.
    let pos_first_vip = order.iter().position(|t| t == "vip").unwrap();
    assert!(
        pos_first_vip <= 6,
        "interactive must jump the batch backlog, order = {order:?}"
    );
    router.shutdown(Duration::from_secs(10));
}

/// Fill a shard's router queue past each threshold with the engine
/// paused and watch the policy engage in priority order: batch shed
/// first, interactive degraded next, interactive rejected only at the
/// hard bound.
#[test]
fn overload_sheds_batch_then_degrades_interactive_then_rejects() {
    let registry = registry_with_archs(&[("m11", 11), ("m5", 5), ("m3", 3)]);
    let cap = 16;
    let router = Router::new(
        RouterConfig {
            shards: 1,
            engine: EngineConfig {
                workers: 0, // nothing consumes: queue depth is fully ours
                ..fast_engine(0)
            },
            shard_queue_capacity: cap,
            batch_shed_at: 0.5,
            degrade_at: 0.75,
            ..RouterConfig::default()
        },
        registry,
    );
    let key = ModelKey::new("m11", 2);
    let mut tickets = Vec::new();
    let mut batch_shed_seen_at = None;
    let mut interactive_rejected_at = None;
    // Interleave batch and interactive admissions until both phases
    // have engaged. The shard queue only grows (workers=0, and the
    // dispatcher forwards at most engine queue_capacity=32 > cap).
    for i in 0..(3 * cap as u64) {
        match router.submit("b", Priority::Batch, &key, img(i, 8, 8), None) {
            Ok(t) => tickets.push(t),
            Err(RouterSubmitError::ShedBatch) => {
                batch_shed_seen_at.get_or_insert(i);
            }
            Err(e) => panic!("unexpected batch rejection: {e}"),
        }
        match router.submit("i", Priority::Interactive, &key, img(i, 8, 8), None) {
            Ok(t) => tickets.push(t),
            Err(RouterSubmitError::Overloaded) => {
                interactive_rejected_at.get_or_insert(i);
                break;
            }
            Err(e) => panic!("unexpected interactive rejection: {e}"),
        }
    }
    let snap = router.telemetry();
    assert!(
        snap.counters.shed_batch > 0,
        "batch shedding never engaged: {:?}",
        snap.counters
    );
    assert!(
        snap.counters.degraded > 0,
        "interactive degrade never engaged: {:?}",
        snap.counters
    );
    // Ordering: batch shed strictly before any interactive rejection,
    // and degrade before rejection too.
    let shed_at = batch_shed_seen_at.expect("batch shed must engage");
    if let Some(rej_at) = interactive_rejected_at {
        assert!(
            shed_at < rej_at,
            "batch must shed (at {shed_at}) before interactive rejects (at {rej_at})"
        );
    }
    assert_eq!(snap.counters.rejected_draining, 0);
    // Shutdown settles the queued-but-never-run work as ShuttingDown;
    // nothing hangs and the ledger still reconciles.
    router.shutdown(Duration::from_secs(5));
    let snap = router.telemetry();
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    for t in tickets {
        match t.wait() {
            Err(RouterServeError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown for queued work, got {other:?}"),
        }
    }
}

/// Degraded interactive requests actually run the cheaper architecture
/// and still return a correctly-shaped output.
#[test]
fn degraded_requests_serve_with_cheaper_arch() {
    let registry = registry_with_archs(&[("m11", 11), ("m5", 5), ("m3", 3)]);
    let cap = 8;
    let router = Router::new(
        RouterConfig {
            shards: 1,
            engine: fast_engine(1),
            shard_queue_capacity: cap,
            degrade_at: 0.25, // degrade early so a small backlog triggers it
            batch_shed_at: 1.0,
            ..RouterConfig::default()
        },
        registry,
    );
    let key = ModelKey::new("m11", 2);
    // Build a backlog so later admissions land in the degrade band.
    let mut tickets: Vec<RouterTicket> = Vec::new();
    for i in 0..3 * cap as u64 {
        if let Ok(t) = router.submit("t", Priority::Interactive, &key, img(i, 16, 16), None) {
            tickets.push(t);
        }
    }
    for t in tickets {
        let out = t.wait().expect("all admitted work serves");
        assert_eq!(out.shape(), &[1, 32, 32], "scale preserved across degrade");
    }
    let snap = router.telemetry();
    assert!(
        snap.counters.degraded > 0 && snap.counters.degraded_completed > 0,
        "expected degraded completions, got {:?}",
        snap.counters
    );
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    router.shutdown(Duration::from_secs(5));
}

/// Satellite: `shutdown(deadline)` racing `submit()`. Submitter threads
/// hammer the router while it drains; every admission after drain start
/// must fail `Draining` (never hang, never panic), every pre-drain
/// ticket settles exactly once, and the ledger reconciles.
#[test]
fn shutdown_racing_submit_rejects_draining_and_loses_nothing() {
    let registry = tiny_registry();
    let router = Arc::new(Router::new(
        RouterConfig {
            shards: 2,
            engine: fast_engine(1),
            ..RouterConfig::default()
        },
        registry,
    ));
    let key = ModelKey::new("m2", 2);
    let stop = Arc::new(AtomicBool::new(false));
    let drained = Arc::new(AtomicBool::new(false));
    let admitted = Arc::new(AtomicU64::new(0));
    let post_drain_admits = Arc::new(AtomicU64::new(0));
    let settled = Arc::new(AtomicU64::new(0));
    let mut submitters = Vec::new();
    for s in 0..3u64 {
        let router = Arc::clone(&router);
        let key = key.clone();
        let stop = Arc::clone(&stop);
        let drained = Arc::clone(&drained);
        let admitted = Arc::clone(&admitted);
        let post_drain_admits = Arc::clone(&post_drain_admits);
        let settled = Arc::clone(&settled);
        submitters.push(std::thread::spawn(move || {
            let tenant = format!("tenant-{s}");
            let mut i = 0u64;
            while !stop.load(Ordering::Acquire) {
                i += 1;
                let was_drained = drained.load(Ordering::Acquire);
                match router.submit(
                    &tenant,
                    Priority::Interactive,
                    &key,
                    img(s * 1_000_003 + i, 10, 10),
                    Some(Duration::from_secs(10)),
                ) {
                    Ok(t) => {
                        admitted.fetch_add(1, Ordering::AcqRel);
                        if was_drained {
                            post_drain_admits.fetch_add(1, Ordering::AcqRel);
                        }
                        let _ = t.wait(); // settles Ok or ShuttingDown — never hangs
                        settled.fetch_add(1, Ordering::AcqRel);
                    }
                    Err(RouterSubmitError::Draining) => {
                        if was_drained {
                            // Expected after drain; spin down quickly.
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    }
                    Err(e) => panic!("unexpected rejection mid-race: {e}"),
                }
            }
        }));
    }
    // Let traffic flow, then drain mid-flight.
    std::thread::sleep(Duration::from_millis(100));
    drained.store(true, Ordering::Release);
    let report = router.shutdown(Duration::from_secs(10));
    // After shutdown returns, every future submit must reject Draining.
    for i in 0..20u64 {
        match router.submit("late", Priority::Interactive, &key, img(i, 8, 8), None) {
            Err(RouterSubmitError::Draining) => {}
            other => panic!("post-drain submit must fail Draining, got {other:?}"),
        }
    }
    stop.store(true, Ordering::Release);
    for h in submitters {
        h.join().expect("submitter must not panic");
    }
    assert!(report.joined, "drain must join within a generous deadline");
    assert_eq!(
        post_drain_admits.load(Ordering::Acquire),
        0,
        "no admission may succeed after drain start was observed"
    );
    assert_eq!(
        admitted.load(Ordering::Acquire),
        settled.load(Ordering::Acquire),
        "every admitted ticket settles exactly once"
    );
    let snap = router.telemetry();
    assert_eq!(snap.reconcile(), Vec::<String>::new());
}

/// The fleet-scope chaos soak and the tentpole's acceptance proof:
/// ≥400 requests through 3 shards while chaos kills a shard, wedges a
/// shard (detected by the stall probe and drain-and-replaced), and
/// fails a respawn — and the ledger still shows exactly one terminal
/// outcome per admitted request, zero lost.
///
/// The fault *schedule* is seeded, but whether a kill intersects queued
/// work (forcing a reroute) depends on wall-clock interleaving between
/// the load loop and the supervisor. A schedule miss says nothing about
/// the router, so the test re-rolls the schedule with a perturbed seed;
/// invariant violations panic immediately on any attempt.
#[test]
fn fleet_chaos_soak_loses_nothing() {
    let mut last = Vec::new();
    for attempt in 0..4u64 {
        let shard_seed = 0xF1EE7u64.wrapping_add(attempt.wrapping_mul(0x9E37_79B9));
        match run_fleet_soak(shard_seed) {
            Ok(()) => return,
            Err(misses) => last = misses,
        }
    }
    panic!("fault schedule never hit every kind in 4 attempts; last misses: {last:?}");
}

/// One soak run: panics on invariant violations, returns `Err(misses)`
/// when the seeded fault schedule did not exercise every fault kind.
fn run_fleet_soak(shard_seed: u64) -> Result<(), Vec<String>> {
    let registry = tiny_registry();
    let router = Arc::new(Router::new(
        RouterConfig {
            shards: 3,
            engine: EngineConfig {
                workers: 1,
                queue_capacity: 16,
                backoff_base: Duration::from_millis(1),
                backoff_cap: Duration::from_millis(4),
                // Engine-level faults run *concurrently* with the shard
                // faults: panics exercise retry/respawn inside a shard,
                // and slow-model delays keep queues non-empty so shard
                // kills actually intersect queued work (reroutes).
                chaos: Some(sesr_serve::chaos::ChaosConfig {
                    seed: 0xD15EA5E,
                    panic_per_mille: 15,
                    slow_per_mille: 150,
                    slow: Duration::from_millis(8),
                    ..sesr_serve::chaos::ChaosConfig::default()
                }),
                ..EngineConfig::default()
            },
            shard_queue_capacity: 64,
            probe_interval: Duration::from_millis(2),
            // 200ms of queued-but-zero-progress on a µs-fast model =
            // wedged. Generous enough that OS scheduling jitter on a
            // small box does not read as a wedge.
            stall_ticks: 100,
            respawn_budget: 32,
            reroute_budget: 8,
            respawn_backoff: Duration::from_millis(2),
            respawn_backoff_cap: Duration::from_millis(10),
            shard_chaos: Some(ShardChaosConfig {
                seed: shard_seed,
                kill_per_mille: 12,
                wedge_per_mille: 12,
                respawn_fail_per_mille: 500,
                max_kills: 2,
                max_wedges: 2,
                max_respawn_fails: 2,
                // Far beyond the stall detector: the wedge must be
                // *detected* and drain-and-replaced, not sit out the
                // injection window.
                wedge: Duration::from_secs(30),
                // Scaling faults stay off: this soak runs a fixed-size
                // fleet; tests/autoscale.rs owns the scaling points.
                ..ShardChaosConfig::default()
            }),
            ..RouterConfig::default()
        },
        registry,
    ));
    let key = ModelKey::new("m2", 2);
    let total = 450u64;
    let concurrency = 24;
    let mut in_flight: VecDeque<RouterTicket> = VecDeque::new();
    let (mut ok, mut failed) = (0u64, 0u64);
    let mut client_outcomes = std::collections::HashMap::new();
    let mut resolve = |t: RouterTicket, ok: &mut u64, failed: &mut u64| {
        let entry: &mut u64 = match t.wait() {
            Ok(_) => {
                *ok += 1;
                client_outcomes.entry("ok").or_default()
            }
            Err(e) => {
                *failed += 1;
                match e {
                    RouterServeError::DeadlineExpired => {
                        client_outcomes.entry("deadline").or_default()
                    }
                    RouterServeError::WorkerCrashed(_) => {
                        client_outcomes.entry("crashed").or_default()
                    }
                    RouterServeError::ModelLoad(_) => {
                        client_outcomes.entry("model_load").or_default()
                    }
                    RouterServeError::ShardLost(_) => {
                        client_outcomes.entry("shard_lost").or_default()
                    }
                    RouterServeError::ShuttingDown => {
                        client_outcomes.entry("shutdown").or_default()
                    }
                }
            }
        };
        *entry += 1;
    };
    let mut admitted = 0u64;
    let mut i = 0u64;
    let start = Instant::now();
    while admitted < total {
        if start.elapsed() >= Duration::from_secs(120) {
            let snap = router.telemetry();
            panic!(
                "soak wedged: {admitted}/{total} admitted after 120s\ncounters: {:?}\nshards: {:?}",
                snap.counters,
                router.shard_statuses()
            );
        }
        i += 1;
        let tenant = format!("tenant-{}", i % 6);
        let class = if i.is_multiple_of(4) {
            Priority::Batch
        } else {
            Priority::Interactive
        };
        match router.submit(
            &tenant,
            class,
            &key,
            img(i, 10, 10),
            Some(Duration::from_secs(20)),
        ) {
            Ok(t) => {
                admitted += 1;
                in_flight.push_back(t);
                if in_flight.len() >= concurrency {
                    let t = in_flight.pop_front().unwrap();
                    resolve(t, &mut ok, &mut failed);
                }
            }
            Err(
                RouterSubmitError::ShedBatch
                | RouterSubmitError::Overloaded
                | RouterSubmitError::Throttled { .. }
                | RouterSubmitError::NoHealthyShard,
            ) => {
                // Transient overload (e.g. both live shards saturated
                // mid-kill): back off and retry.
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => panic!("unexpected rejection under chaos: {e}"),
        }
    }
    while let Some(t) = in_flight.pop_front() {
        resolve(t, &mut ok, &mut failed);
    }
    let snap = router.telemetry();
    let c = snap.counters;
    // Exactly one terminal outcome per admitted request, zero lost:
    // client-side tally == router admission count == router settle count.
    assert_eq!(
        ok + failed,
        admitted,
        "client saw {ok}+{failed} != {admitted}"
    );
    assert_eq!(
        c.admitted(),
        admitted,
        "router admitted {} != {admitted}",
        c.admitted()
    );
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    assert_eq!(
        c.completed, ok,
        "router completed {} != client ok {ok}",
        c.completed
    );
    assert!(
        ok > admitted / 2,
        "chaos should not fail the majority: ok={ok} of {admitted}, outcomes={client_outcomes:?}"
    );
    let report = router.shutdown(Duration::from_secs(10));
    assert!(report.joined);
    let snap = router.telemetry();
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    // A killed shard's breaker reopened (and possibly closed again);
    // whatever the final state, every shard is introspectable.
    for s in router.shard_statuses() {
        let _ = matches!(
            s.breaker,
            BreakerState::Closed | BreakerState::Open | BreakerState::HalfOpen
        );
    }
    // The chaos schedule must actually have fired all three fault kinds
    // and forced at least one reroute — retryable when it did not.
    let mut misses = Vec::new();
    for (fired, what) in [
        (c.shard_kills >= 1, "no shard kill fired"),
        (c.shard_wedges >= 1, "no wedge fired"),
        (c.respawn_failures >= 1, "no respawn failure fired"),
        (c.shard_respawns >= 1, "no shard respawned"),
        (c.wedges_detected >= 1, "stall probe never detected a wedge"),
        (c.rerouted >= 1, "no request was rerouted"),
        (
            c.breaker_opens >= 1 && c.breaker_half_opens >= 1,
            "breaker never cycled open -> half-open",
        ),
    ] {
        if !fired {
            misses.push(format!("{what} (seed {shard_seed:#x}, counters {c:?})"));
        }
    }
    if misses.is_empty() {
        Ok(())
    } else {
        Err(misses)
    }
}
