//! Elastic autoscaling tests: the bounded-rebalancing property of the
//! consistent-hash ring (proptest), deterministic scale-down behavior
//! under a wedged drain (stranded work reroutes, nothing is lost),
//! pinned video-session migration across a scale-down, and the scaling
//! chaos soak — repeated scale-ups/downs under load with a
//! kill-during-spawn, a wedge-during-drain, and a respawn failure at
//! min capacity, reconciled to exactly one terminal outcome per
//! admitted request.

use proptest::prelude::*;
use sesr_core::model::{Sesr, SesrConfig};
use sesr_serve::autoscale::{AutoscaleConfig, HashRing};
use sesr_serve::chaos::{ChaosConfig, ShardChaosConfig};
use sesr_serve::engine::EngineConfig;
use sesr_serve::registry::{ModelKey, ModelRegistry};
use sesr_serve::router::{
    Priority, Router, RouterConfig, RouterCounters, RouterSubmitError, RouterTicket,
};
use sesr_serve::video::{VideoError, VideoSessionSpec};
use sesr_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn registry() -> Arc<ModelRegistry> {
    let r = Arc::new(ModelRegistry::new(8));
    let model = Sesr::new(SesrConfig::m(2).with_expanded(8).with_seed(7)).collapse();
    r.insert(ModelKey::new("m2", 2), model);
    r
}

fn img(seed: u64, h: usize, w: usize) -> Tensor {
    Tensor::rand_uniform(&[1, h, w], 0.0, 1.0, seed)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    let mut st = seed;
    for i in (1..n).rev() {
        let j = (splitmix(&mut st) % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

// ---------------------------------------------------------------------------
// Bounded rebalancing (proptest)
// ---------------------------------------------------------------------------

const RING_SAMPLES: u64 = 2048;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adding shard `n` to an `n`-shard ring moves only keys that land
    /// on the new shard, leaves every other key with its old owner, and
    /// moves roughly a 1/(n+1) share — never more than 2.5x that, never
    /// less than an eighth of it (vnode placement is hashed, so the
    /// share wobbles, but it must stay the same order of magnitude).
    #[test]
    fn ring_add_moves_only_a_bounded_share(
        vnodes in prop::sample::select(vec![32usize, 64, 128]),
        n in 1usize..=6,
        seed in any::<u64>(),
    ) {
        let mut before = HashRing::new(vnodes);
        for s in 0..n {
            before.add_shard(s);
        }
        let mut after = before.clone();
        after.add_shard(n);
        let mut st = seed;
        let mut moved = 0u64;
        for _ in 0..RING_SAMPLES {
            let p = splitmix(&mut st);
            let (a, b) = (before.owner(p).unwrap(), after.owner(p).unwrap());
            if a != b {
                moved += 1;
                prop_assert_eq!(b, n, "a moved key must land on the new shard");
            }
        }
        let expected = RING_SAMPLES as f64 / (n as f64 + 1.0);
        prop_assert!(
            (moved as f64) <= expected * 2.5,
            "add moved {moved} of {RING_SAMPLES} keys; expected ~{expected:.0} (n={n}, vnodes={vnodes})"
        );
        prop_assert!(
            (moved as f64) >= expected / 8.0,
            "add moved only {moved} of {RING_SAMPLES} keys; expected ~{expected:.0} (n={n}, vnodes={vnodes})"
        );
    }

    /// Removing a shard moves exactly the keys it owned — a bounded
    /// ~1/n share — and every one of them, nothing else.
    #[test]
    fn ring_remove_moves_exactly_the_victims_keys(
        vnodes in prop::sample::select(vec![32usize, 64, 128]),
        n in 2usize..=7,
        seed in any::<u64>(),
    ) {
        let mut before = HashRing::new(vnodes);
        for s in 0..n {
            before.add_shard(s);
        }
        let victim = (seed % n as u64) as usize;
        let mut after = before.clone();
        after.remove_shard(victim);
        let mut st = seed;
        let mut moved = 0u64;
        for _ in 0..RING_SAMPLES {
            let p = splitmix(&mut st);
            let (a, b) = (before.owner(p).unwrap(), after.owner(p).unwrap());
            if a == victim {
                moved += 1;
                prop_assert!(b != victim, "keys must leave the removed shard");
            } else {
                prop_assert_eq!(a, b, "keys not on the victim must not move");
            }
        }
        let expected = RING_SAMPLES as f64 / n as f64;
        prop_assert!(
            (moved as f64) <= expected * 2.5,
            "remove moved {moved} of {RING_SAMPLES}; expected ~{expected:.0} (n={n}, vnodes={vnodes})"
        );
    }

    /// Vnode points are a pure function of the shard index: a ring
    /// reaches the same owner map no matter the join order, and
    /// add-then-remove is a perfect inverse. This is what makes
    /// scale-up/scale-down churn safe to repeat indefinitely.
    #[test]
    fn ring_owners_are_join_order_independent_and_edits_invert(
        vnodes in prop::sample::select(vec![32usize, 64]),
        n in 2usize..=7,
        seed in any::<u64>(),
    ) {
        let mut sequential = HashRing::new(vnodes);
        for s in 0..n {
            sequential.add_shard(s);
        }
        let mut permuted = HashRing::new(vnodes);
        for s in shuffled(n, seed) {
            permuted.add_shard(s);
        }
        let mut round_trip = sequential.clone();
        round_trip.add_shard(n);
        round_trip.remove_shard(n);
        let mut st = seed ^ 0xA5A5;
        for _ in 0..512 {
            let p = splitmix(&mut st);
            prop_assert_eq!(sequential.owner(p), permuted.owner(p));
            prop_assert_eq!(sequential.owner(p), round_trip.owner(p));
        }
        prop_assert_eq!(sequential.sampled_moves(&round_trip, RING_SAMPLES), 0);
    }
}

// ---------------------------------------------------------------------------
// Elastic fleet harness
// ---------------------------------------------------------------------------

/// Slow-chaos engine: every request takes ~3ms, so queue fill (and thus
/// scaling pressure) is a direct function of offered load rather than
/// model size, and backlogs drain on a schedule the tests can reason
/// about.
fn slow_engine(queue: usize) -> EngineConfig {
    EngineConfig {
        workers: 1,
        queue_capacity: queue,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(4),
        chaos: Some(ChaosConfig {
            seed: 0x51EE9,
            slow_per_mille: 1000,
            slow: Duration::from_millis(3),
            ..ChaosConfig::default()
        }),
        ..EngineConfig::default()
    }
}

fn elastic_config(
    shards: usize,
    engine_queue: usize,
    autoscale: AutoscaleConfig,
    shard_chaos: Option<ShardChaosConfig>,
) -> RouterConfig {
    RouterConfig {
        shards,
        engine: slow_engine(engine_queue),
        shard_queue_capacity: 64,
        probe_interval: Duration::from_millis(2),
        stall_ticks: 100,
        respawn_budget: 32,
        reroute_budget: 8,
        respawn_backoff: Duration::from_millis(2),
        respawn_backoff_cap: Duration::from_millis(10),
        shard_chaos,
        autoscale: Some(autoscale),
        ..RouterConfig::default()
    }
}

/// Closed-loop load driver: keeps up to `window` requests in flight and
/// resolves the oldest to admit the next, so queue fill stays pinned
/// high during hot waves and drains to zero when the wave ends.
struct Load {
    router: Arc<Router>,
    key: ModelKey,
    window: usize,
    in_flight: VecDeque<RouterTicket>,
    admitted: u64,
    ok: u64,
    failed: u64,
    seq: u64,
}

impl Load {
    fn new(router: Arc<Router>, window: usize) -> Self {
        Self {
            router,
            key: ModelKey::new("m2", 2),
            window,
            in_flight: VecDeque::new(),
            admitted: 0,
            ok: 0,
            failed: 0,
            seq: 0,
        }
    }

    fn resolve_one(&mut self) {
        if let Some(t) = self.in_flight.pop_front() {
            match t.wait() {
                Ok(_) => self.ok += 1,
                Err(_) => self.failed += 1,
            }
        }
    }

    fn resolve_all(&mut self) {
        while !self.in_flight.is_empty() {
            self.resolve_one();
        }
    }

    fn submit_one(&mut self, tenant: &str) -> bool {
        match self.router.submit(
            tenant,
            Priority::Interactive,
            &self.key,
            img(self.seq, 10, 10),
            Some(Duration::from_secs(20)),
        ) {
            Ok(t) => {
                self.admitted += 1;
                self.in_flight.push_back(t);
                if self.in_flight.len() >= self.window {
                    self.resolve_one();
                }
                true
            }
            Err(
                RouterSubmitError::Overloaded
                | RouterSubmitError::ShedBatch
                | RouterSubmitError::Throttled { .. }
                | RouterSubmitError::NoHealthyShard,
            ) => {
                // Transient: the fleet is saturated or briefly
                // zero-serving mid-fault. Back off and retry.
                std::thread::sleep(Duration::from_millis(1));
                false
            }
            Err(e) => panic!("unexpected rejection under autoscale load: {e}"),
        }
    }

    /// Pumps load until `done(counters, admitted)` holds.
    fn hot_until(&mut self, what: &str, done: impl Fn(&RouterCounters, u64) -> bool) {
        let start = Instant::now();
        loop {
            if self.seq.is_multiple_of(16) {
                let c = self.router.telemetry().counters;
                if done(&c, self.admitted) {
                    return;
                }
                if start.elapsed() > Duration::from_secs(60) {
                    panic!(
                        "hot wave '{what}' timed out; counters: {c:?}\nshards: {:?}",
                        self.router.shard_statuses()
                    );
                }
            }
            self.seq += 1;
            let tenant = format!("t-{}", self.seq % 8);
            self.submit_one(&tenant);
        }
    }

    /// Stops offering load, settles everything in flight, then waits
    /// for `done(counters)` (scale-downs happen here).
    fn cold_until(&mut self, what: &str, done: impl Fn(&RouterCounters) -> bool) {
        self.resolve_all();
        let start = Instant::now();
        loop {
            let c = self.router.telemetry().counters;
            if done(&c) {
                return;
            }
            if start.elapsed() > Duration::from_secs(60) {
                panic!(
                    "cold wave '{what}' timed out; counters: {c:?}\nshards: {:?}",
                    self.router.shard_statuses()
                );
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

// ---------------------------------------------------------------------------
// Wedged drain: stranded work must reroute, not vanish
// ---------------------------------------------------------------------------

/// A scale-down victim wedges mid-drain while it still holds queued
/// work. Nothing un-pauses it; the drain grace must expire, the slot
/// must be force-retired, and every stranded request must settle OK on
/// the surviving shard.
#[test]
fn wedged_drain_reroutes_stranded_work() {
    let autoscale = AutoscaleConfig {
        min_shards: 1,
        max_shards: 2,
        // High up-fill: the single-victim backlog holds mean fill at
        // ~0.5, which must read as "calm enough to scale down later",
        // never as new pressure.
        scale_up_fill: 0.9,
        scale_down_fill: 0.05,
        up_ticks: 3,
        down_ticks: 25,
        cooldown_ticks: 10,
        drain_grace: Duration::from_millis(150),
    };
    // Engine queue 32: the victim's backlog sits mostly in its engine
    // queue, so the router-queue fill the controller watches drops below
    // the scale-down threshold while real work is still pending — the
    // exact window where a wedged drain strands requests.
    let router = Arc::new(Router::new(
        elastic_config(
            2,
            32,
            autoscale,
            Some(ShardChaosConfig {
                seed: 0xD2A1,
                drain_wedge_per_mille: 1000,
                max_drain_wedges: 1,
                ..ShardChaosConfig::default()
            }),
        ),
        registry(),
    ));
    let key = ModelKey::new("m2", 2);
    // Pin the whole backlog onto shard 1 — the highest-indexed live
    // slot, i.e. the deterministic scale-down victim.
    let victim_tenant = (0..256)
        .map(|i| format!("w-{i}"))
        .find(|t| router.route_of(t, &key) == Some(1))
        .expect("some tenant must route to shard 1");
    let total = 150u64;
    let mut tickets = Vec::new();
    let mut i = 0u64;
    let start = Instant::now();
    while tickets.len() < total as usize {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "backlog submission wedged"
        );
        i += 1;
        match router.submit(
            &victim_tenant,
            Priority::Interactive,
            &key,
            img(i, 10, 10),
            Some(Duration::from_secs(30)),
        ) {
            Ok(t) => tickets.push(t),
            Err(RouterSubmitError::Overloaded) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    // Wait for the scale-down to start and complete: the wedge fires at
    // drain start, the grace deadline force-retires the slot.
    let start = Instant::now();
    loop {
        let c = router.telemetry().counters;
        if c.scale_down_events >= 1 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "scale-down never completed; counters: {c:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut ok = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => ok += 1,
            Err(e) => panic!("stranded request lost: {e}"),
        }
    }
    assert_eq!(ok, total, "every request must settle OK after reroute");
    let c = router.telemetry().counters;
    assert_eq!(c.shard_wedges, 1, "the drain wedge must have fired");
    assert!(c.scale_down_events >= 1);
    assert!(
        c.rerouted >= 1,
        "force-retiring a wedged drain must reroute its stranded work; counters: {c:?}"
    );
    assert_eq!(router.shard_count(), 1, "the fleet must be back at min");
    let snap = router.telemetry();
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    let report = router.shutdown(Duration::from_secs(10));
    assert!(report.joined);
}

// ---------------------------------------------------------------------------
// Video pin migration across scale-down
// ---------------------------------------------------------------------------

/// A video session pinned to the scale-down victim survives retirement:
/// its engine state is exported/imported to a surviving shard, the pin
/// is repointed, and the next frame feeds without the client noticing.
#[test]
fn video_session_migrates_across_scale_down() {
    let autoscale = AutoscaleConfig {
        min_shards: 1,
        max_shards: 2,
        scale_up_fill: 0.9,
        scale_down_fill: 0.05,
        up_ticks: 3,
        down_ticks: 25,
        cooldown_ticks: 10,
        drain_grace: Duration::from_millis(150),
    };
    let router = Arc::new(Router::new(
        elastic_config(2, 16, autoscale, None),
        registry(),
    ));
    let key = ModelKey::new("m2", 2);
    // A tenant that routes to shard 1 pins its session there — and
    // shard 1, the highest-indexed live slot, is the victim of the
    // idle-triggered scale-down below.
    let tenant = (0..256)
        .map(|i| format!("v-{i}"))
        .find(|t| router.route_of(t, &key) == Some(1))
        .expect("some tenant must route to shard 1");
    let spec = VideoSessionSpec::new(16, 16, vec![key.clone()]);
    let session = router
        .open_video_session(&tenant, spec)
        .expect("healthy fleet opens sessions");
    router
        .feed_video_frame(session, 0, img(1, 16, 16), None)
        .expect("pre-migration feed admits")
        .wait()
        .expect("pre-migration frame settles");
    // Idle: the controller sees a cold fleet and retires shard 1. The
    // session is quiescent, so the drain completes fast and migration
    // runs before retirement.
    let start = Instant::now();
    loop {
        let c = router.telemetry().counters;
        if c.scale_down_events >= 1 {
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "idle fleet never scaled down; counters: {c:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(router.shard_count(), 1);
    // The same session id keeps working — state and pin moved together.
    router
        .feed_video_frame(session, 1, img(2, 16, 16), None)
        .expect("post-migration feed must admit on the surviving shard")
        .wait()
        .expect("post-migration frame settles");
    let stats = router
        .video_session_stats(session)
        .expect("migrated session stays introspectable");
    assert_eq!(
        stats.frames_in, 2,
        "migration must carry session state, not restart it"
    );
    router
        .close_video_session(session)
        .expect("migrated session closes cleanly");
    let c = router.telemetry().counters;
    assert!(c.keys_rebalanced > 0, "ring edits must be measured");
    let snap = router.telemetry();
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    let report = router.shutdown(Duration::from_secs(10));
    assert!(report.joined);
}

// ---------------------------------------------------------------------------
// Scaling chaos soak
// ---------------------------------------------------------------------------

/// The tentpole acceptance proof. An elastic fleet (1..=3 shards) rides
/// two full load cycles — each hot wave forcing scale-ups to max (and a
/// blocked-at-max window), each cold wave draining back to min — while
/// every scaling-event fault fires at its worst moment:
///
/// - the only serving shard is killed at min capacity and its first
///   respawn attempt fails (fleet briefly zero-serving),
/// - the first scaled-up shard is killed right after joining the ring,
/// - the first scale-down victim wedges mid-drain.
///
/// Afterwards the ledger must show exactly one terminal outcome per
/// admitted request, zero lost, and video sessions opened mid-soak must
/// settle typed — served or `SessionLost`, never unknown, never hung.
#[test]
fn scaling_chaos_soak_loses_nothing() {
    let autoscale = AutoscaleConfig {
        min_shards: 1,
        max_shards: 3,
        scale_up_fill: 0.5,
        scale_down_fill: 0.05,
        up_ticks: 3,
        down_ticks: 25,
        cooldown_ticks: 25,
        drain_grace: Duration::from_millis(150),
    };
    let router = Arc::new(Router::new(
        elastic_config(
            1,
            16,
            autoscale,
            Some(ShardChaosConfig {
                seed: 0x5CA1E,
                // One whole-shard kill: per-mille 1000 fires it on the
                // very first probe tick, while the fleet is at min — so
                // the at-min respawn-failure point below is reachable
                // deterministically (serving capacity is briefly zero).
                kill_per_mille: 1000,
                max_kills: 1,
                min_respawn_fail_per_mille: 1000,
                max_min_respawn_fails: 1,
                // First scale-up dies right after joining the ring;
                // first scale-down wedges mid-drain.
                spawn_kill_per_mille: 1000,
                max_spawn_kills: 1,
                drain_wedge_per_mille: 1000,
                max_drain_wedges: 1,
                ..ShardChaosConfig::default()
            }),
        ),
        registry(),
    ));
    assert_eq!(
        router.slot_count(),
        3,
        "autoscale must pre-allocate max slots"
    );
    let mut load = Load::new(Arc::clone(&router), 200);

    // Cycle 1: up to max through the spawn-kill, then drain to min
    // through the drain-wedge.
    load.hot_until("cycle-1 up", |c, admitted| {
        c.scale_up_events >= 2 && c.autoscale_blocked_at_max >= 1 && admitted >= 150
    });
    // Fleet at max: open video sessions across tenants. Some pin to
    // shards that the cold waves below will retire — those must either
    // migrate or fail typed.
    let spec = VideoSessionSpec::new(16, 16, vec![ModelKey::new("m2", 2)]);
    let mut sessions = Vec::new();
    for i in 0..4 {
        let tenant = format!("vid-{i}");
        let id = router
            .open_video_session(&tenant, spec.clone())
            .expect("fleet at max admits sessions");
        match router.feed_video_frame(id, 0, img(90 + i, 16, 16), None) {
            Ok(t) => {
                // Settled either way; a crash mid-chaos is a typed error.
                let _ = t.wait();
            }
            Err(RouterSubmitError::Video(VideoError::SessionLost)) => {}
            Err(RouterSubmitError::Overloaded) => {}
            Err(e) => panic!("video feed must fail typed, got: {e}"),
        }
        sessions.push(id);
    }
    load.cold_until("cycle-1 down", |c| c.scale_down_events >= 2);

    // Cycle 2: all chaos caps are spent — a clean elastic cycle over
    // the same slots proves scaling stays repeatable after faults.
    load.hot_until("cycle-2 up", |c, admitted| {
        c.scale_up_events >= 4 && admitted >= 440
    });
    load.cold_until("cycle-2 down", |c| c.scale_down_events >= 4);

    // Every held video session settles typed: the feed either lands
    // (the pin migrated with its shard) or reports `SessionLost` (the
    // generation moved on) — never `UnknownSession`, never a hang.
    for (i, &id) in sessions.iter().enumerate() {
        let mut lost = false;
        match router.feed_video_frame(id, 1, img(190 + i as u64, 16, 16), None) {
            Ok(t) => {
                let _ = t.wait();
            }
            Err(RouterSubmitError::Video(VideoError::SessionLost)) => lost = true,
            Err(e) => panic!("post-soak feed must fail typed, got: {e}"),
        }
        if !lost {
            match router.close_video_session(id) {
                Ok(_) | Err(VideoError::SessionLost) => {}
                Err(e) => panic!("post-soak close must fail typed, got: {e}"),
            }
        }
    }

    let snap = router.telemetry();
    let c = snap.counters;
    // Exactly one terminal outcome per admitted request, zero lost.
    assert_eq!(
        load.ok + load.failed,
        load.admitted,
        "client saw {}+{} != {}",
        load.ok,
        load.failed,
        load.admitted
    );
    assert_eq!(
        c.admitted(),
        load.admitted,
        "router admitted {} != client admitted {}",
        c.admitted(),
        load.admitted
    );
    assert_eq!(snap.reconcile(), Vec::<String>::new());
    assert_eq!(
        c.completed, load.ok,
        "router completed {} != client ok {}",
        c.completed, load.ok
    );
    assert!(load.admitted >= 420, "soak too small: {}", load.admitted);
    assert!(
        load.ok > load.admitted / 2,
        "chaos should not fail the majority: ok={} of {}",
        load.ok,
        load.admitted
    );
    // The elastic cycles actually happened, were measured, and warmed
    // fresh shards from the shared plan store.
    assert!(c.scale_up_events >= 4, "counters: {c:?}");
    assert!(c.scale_down_events >= 4, "counters: {c:?}");
    assert!(c.autoscale_blocked_at_max >= 1, "counters: {c:?}");
    assert!(c.keys_rebalanced > 0, "counters: {c:?}");
    assert!(
        c.replication_warm_hits >= 1,
        "a scaled-up shard never hit the shared plan store: {c:?}"
    );
    // Every scaling fault point fired: the at-min kill + failed respawn
    // (kill/respawn-fail rates are zero, so these counters are uniquely
    // attributable), the spawn-kill, and the drain-wedge.
    assert!(c.shard_kills >= 2, "counters: {c:?}");
    assert!(c.respawn_failures >= 1, "counters: {c:?}");
    assert!(c.shard_respawns >= 2, "counters: {c:?}");
    assert!(c.shard_wedges >= 1, "counters: {c:?}");
    assert_eq!(router.shard_count(), 1, "fleet must end at min");
    let report = router.shutdown(Duration::from_secs(10));
    assert!(report.joined);
    let snap = router.telemetry();
    assert_eq!(snap.reconcile(), Vec::<String>::new());
}

// ---------------------------------------------------------------------------
// Int8 precision warming across scale-up
// ---------------------------------------------------------------------------

/// Under an `Int8` precision policy, a freshly scaled-up shard must warm
/// its precision decision — and the packed quantized kernels inside it —
/// from the process-wide shared plan store instead of re-grading the
/// model (calibrate + quantize + ΔPSNR). The first shard pays once; the
/// new shard's first int8 request only allocates a plan arena.
#[test]
fn scaled_up_shard_warms_int8_decisions_from_shared_store() {
    use sesr_serve::PrecisionPolicy;

    let autoscale = AutoscaleConfig {
        min_shards: 1,
        max_shards: 2,
        scale_up_fill: 0.2,
        scale_down_fill: 0.01,
        up_ticks: 2,
        // Effectively never scale down during the test.
        down_ticks: u32::MAX,
        cooldown_ticks: 2,
        drain_grace: Duration::from_millis(100),
    };
    let router = Arc::new(Router::new(
        RouterConfig {
            shards: 1,
            engine: EngineConfig {
                workers: 1,
                queue_capacity: 8,
                precision: PrecisionPolicy::Int8 { psnr_budget: 100.0 },
                ..EngineConfig::default()
            },
            shard_queue_capacity: 16,
            probe_interval: Duration::from_millis(2),
            autoscale: Some(autoscale),
            ..RouterConfig::default()
        },
        registry(),
    ));
    let mut load = Load::new(Arc::clone(&router), 32);
    // Drive load until the fleet scaled up AND the new shard served the
    // model (its worker's decision lookup hits the shared store).
    load.hot_until("int8 warm-up", |c, _| {
        c.scale_up_events >= 1 && c.replication_warm_hits >= 1
    });
    load.resolve_all();
    assert!(load.ok >= 1, "requests must complete under the int8 policy");
    let c = router.telemetry().counters;
    assert!(c.scale_up_events >= 1, "counters: {c:?}");
    assert!(
        c.replication_warm_hits >= 1,
        "the scaled-up shard must warm its int8 decision from the shared store: {c:?}"
    );
    let report = router.shutdown(Duration::from_secs(10));
    assert!(report.joined);
}
