//! Video-session integration tests.
//!
//! The load-bearing property is the **reuse invariant**: a composite
//! assembled from skipped (cached) and recomputed tiles must be
//! bit-identical to running the whole frame through the top-rung model,
//! across arbitrary frame-to-frame diffs — all-static, all-dirty, and
//! changes hugging tile/halo boundaries included. The proptest below
//! enforces it; the remaining tests cover the engine wiring (open /
//! feed / close, idempotent duplicate settlement, typed errors, chaos
//! containment) and the router layer (per-tenant caps, shard pinning).

use proptest::prelude::*;
use sesr_core::model::{Sesr, SesrConfig};
use sesr_core::CollapsedSesr;
use sesr_serve::chaos::ChaosConfig;
use sesr_serve::engine::{Engine, EngineConfig, ServeError, SubmitError};
use sesr_serve::registry::{ModelKey, ModelRegistry};
use sesr_serve::video::{VideoError, VideoSession, VideoSessionSpec};
use sesr_serve::{PlanCache, Router, RouterConfig, RouterSubmitError};
use sesr_tensor::Tensor;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Two-rung ladder shared by every test (collapse is expensive).
fn ladder() -> &'static Vec<(ModelKey, Arc<CollapsedSesr>)> {
    static LADDER: OnceLock<Vec<(ModelKey, Arc<CollapsedSesr>)>> = OnceLock::new();
    LADDER.get_or_init(|| {
        [(1usize, "m1"), (2, "m2")]
            .iter()
            .map(|&(m, name)| {
                let cfg = SesrConfig::m(m).with_expanded(8).with_seed(40 + m as u64);
                (ModelKey::new(name, 2), Arc::new(Sesr::new(cfg).collapse()))
            })
            .collect()
    })
}

fn ladder_keys() -> Vec<ModelKey> {
    ladder().iter().map(|(k, _)| k.clone()).collect()
}

fn registry() -> Arc<ModelRegistry> {
    let r = Arc::new(ModelRegistry::new(4));
    for (k, m) in ladder() {
        r.insert(k.clone(), (**m).clone());
    }
    r
}

/// Whole-frame run through the top rung: the bit-identity reference.
fn reference(frame: &Tensor) -> Tensor {
    let (_, top) = &ladder()[ladder().len() - 1];
    top.run(frame)
}

fn frame(seed: u64, h: usize, w: usize) -> Tensor {
    Tensor::rand_uniform(&[1, h, w], 0.0, 1.0, seed)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The reuse invariant: whatever changes between frames — nothing,
    /// everything, or a handful of pixels (biased onto tile corners, the
    /// halo-boundary extreme) — the skipped ∪ recomputed composite is
    /// bit-identical to a whole-frame top-rung run.
    #[test]
    fn reuse_composite_is_bit_identical_to_full_run(
        h in 12usize..=34,
        w in 12usize..=34,
        tile in prop::sample::select(vec![6usize, 8, 12]),
        n_pokes in 0usize..=6,
        poke_seed in any::<u64>(),
        scramble in any::<bool>(),
        frames in 2usize..=4,
    ) {
        let mut spec = VideoSessionSpec::new(h, w, ladder_keys());
        spec.tile = tile;
        let models: Vec<Arc<CollapsedSesr>> =
            ladder().iter().map(|(_, m)| Arc::clone(m)).collect();
        let mut sess = VideoSession::new(spec, &models).unwrap();
        let mut plans = PlanCache::new();
        let mut cur = frame(poke_seed ^ 0xF00D, h, w);
        let first = sess.process_frame(0, &cur, None, &models, &mut plans).unwrap();
        prop_assert_eq!(reference(&cur).max_abs_diff(&first.output), 0.0);
        let mut rng = poke_seed;
        for seq in 1..frames as u64 {
            if scramble {
                // All-dirty extreme: a scene cut.
                cur = frame(splitmix(&mut rng), h, w);
            } else {
                // n_pokes == 0 is the all-static extreme. Even pokes
                // land on tile corners — the halo-boundary extreme —
                // odd pokes land anywhere.
                for p in 0..n_pokes {
                    let (y, x) = if p % 2 == 0 {
                        (
                            ((splitmix(&mut rng) as usize) / tile * tile).min(h - 1),
                            ((splitmix(&mut rng) as usize) / tile * tile).min(w - 1),
                        )
                    } else {
                        (
                            splitmix(&mut rng) as usize % h,
                            splitmix(&mut rng) as usize % w,
                        )
                    };
                    cur.data_mut()[y * w + x] += 0.25 + (p as f32) * 0.01;
                }
            }
            let r = sess.process_frame(seq, &cur, None, &models, &mut plans).unwrap();
            prop_assert_eq!(
                reference(&cur).max_abs_diff(&r.output),
                0.0,
                "composite diverged at seq {} (h={}, w={}, tile={}, pokes={}, scramble={})",
                seq, h, w, tile, n_pokes, scramble
            );
            if !scramble && n_pokes == 0 {
                prop_assert_eq!(r.stats.tiles_recomputed, 0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine wiring
// ---------------------------------------------------------------------------

fn engine(workers: usize) -> Engine {
    Engine::new(
        EngineConfig {
            workers,
            queue_capacity: 32,
            ..EngineConfig::default()
        },
        registry(),
    )
}

#[test]
fn engine_session_open_feed_close_roundtrip() {
    let eng = engine(2);
    let sid = eng
        .open_video_session(VideoSessionSpec::new(24, 20, ladder_keys()))
        .expect("open");
    assert_eq!(eng.open_video_sessions(), 1);
    // Static pair: frame 1 must reuse every tile yet stay bit-exact.
    let f0 = frame(70, 24, 20);
    let frames = [f0.clone(), f0.clone(), frame(71, 24, 20)];
    for (seq, f) in frames.iter().enumerate() {
        let out = eng
            .feed_video_frame(sid, seq as u64, f.clone(), None)
            .expect("feed")
            .wait()
            .expect("settle");
        assert_eq!(
            reference(f).max_abs_diff(&out),
            0.0,
            "frame {seq} diverged from the whole-frame run"
        );
    }
    let stats = eng.video_session_stats(sid).expect("stats");
    assert_eq!(stats.frames_in, 3);
    assert_eq!(stats.frames_completed, 3);
    assert!(stats.tiles_skipped > 0, "static frame must skip tiles");
    let closed = eng.close_video_session(sid).expect("close");
    assert_eq!(closed.frames_completed, 3);
    assert_eq!(eng.open_video_sessions(), 0);
    // Engine telemetry mirrors the session counters.
    let snap = eng.telemetry().snapshot();
    assert_eq!(snap.counters.video_sessions_opened, 1);
    assert_eq!(snap.counters.video_sessions_closed, 1);
    assert_eq!(snap.counters.video_frames_in, 3);
    assert_eq!(snap.counters.video_frames_completed, 3);
    assert!(snap.counters.video_tiles_skipped > 0);
}

#[test]
fn duplicate_feed_settles_idempotently_and_stale_is_typed() {
    let eng = engine(1);
    let sid = eng
        .open_video_session(VideoSessionSpec::new(16, 16, ladder_keys()))
        .expect("open");
    let f0 = frame(80, 16, 16);
    let f5 = frame(81, 16, 16);
    eng.feed_video_frame(sid, 0, f0, None)
        .expect("feed 0")
        .wait()
        .expect("settle 0");
    let first = eng
        .feed_video_frame(sid, 5, f5.clone(), None)
        .expect("feed 5")
        .wait()
        .expect("settle 5");
    // Re-feeding the settled seq (the retry path after a crash) returns
    // the cached composite bit-for-bit without recompute.
    let dup = eng
        .feed_video_frame(sid, 5, f5, None)
        .expect("re-feed 5")
        .wait()
        .expect("settle dup");
    assert_eq!(first.max_abs_diff(&dup), 0.0);
    // An older seq is a typed error through the ticket.
    let stale = eng
        .feed_video_frame(sid, 3, frame(82, 16, 16), None)
        .expect("feed stale")
        .wait();
    assert_eq!(
        stale.unwrap_err(),
        ServeError::Video(VideoError::StaleFrame { seq: 3, last: 5 })
    );
    let stats = eng.video_session_stats(sid).expect("stats");
    assert_eq!(stats.frames_duplicate, 1);
    let snap = eng.telemetry().snapshot();
    assert_eq!(snap.counters.video_frames_duplicate, 1);
}

#[test]
fn closed_and_unknown_sessions_are_typed_everywhere() {
    let eng = engine(1);
    // Never-opened id.
    assert_eq!(
        eng.feed_video_frame(99, 0, frame(90, 16, 16), None)
            .unwrap_err(),
        SubmitError::UnknownSession(99)
    );
    assert_eq!(
        eng.close_video_session(99).unwrap_err(),
        VideoError::UnknownSession(99)
    );
    // Close, then feed: rejected at admission.
    let sid = eng
        .open_video_session(VideoSessionSpec::new(16, 16, ladder_keys()))
        .expect("open");
    eng.close_video_session(sid).expect("close");
    assert_eq!(
        eng.feed_video_frame(sid, 0, frame(91, 16, 16), None)
            .unwrap_err(),
        SubmitError::UnknownSession(sid)
    );
    // Double close is typed, not a hang.
    assert_eq!(
        eng.close_video_session(sid).unwrap_err(),
        VideoError::UnknownSession(sid)
    );
}

#[test]
fn frames_queued_across_close_settle_typed() {
    let eng = engine(1);
    let sid = eng
        .open_video_session(VideoSessionSpec::new(16, 16, ladder_keys()))
        .expect("open");
    // Hold the frame in the queue, close the session underneath it,
    // then let the worker find it: it must settle typed, not compute
    // against a closed session or hang the ticket.
    eng.pause();
    let ticket = eng
        .feed_video_frame(sid, 0, frame(95, 16, 16), None)
        .expect("feed while paused");
    eng.close_video_session(sid).expect("close");
    eng.resume();
    assert_eq!(
        ticket.wait().unwrap_err(),
        ServeError::Video(VideoError::UnknownSession(sid))
    );
}

#[test]
fn mismatched_frame_shape_is_rejected_at_admission() {
    let eng = engine(1);
    let sid = eng
        .open_video_session(VideoSessionSpec::new(16, 16, ladder_keys()))
        .expect("open");
    match eng.feed_video_frame(sid, 0, frame(96, 8, 8), None) {
        Err(SubmitError::InvalidInput { reason }) => {
            assert!(reason.contains("does not match session shape"), "{reason}");
        }
        other => panic!("expected InvalidInput, got {other:?}"),
    }
}

#[test]
fn open_rejects_unknown_ladder_models() {
    let eng = engine(1);
    let mut keys = ladder_keys();
    keys.push(ModelKey::new("ghost", 2));
    match eng.open_video_session(VideoSessionSpec::new(16, 16, keys)) {
        Err(VideoError::ModelLoad(msg)) => assert!(msg.contains("ghost"), "{msg}"),
        other => panic!("expected ModelLoad, got {other:?}"),
    }
}

#[test]
fn chaos_frames_all_settle_and_successes_stay_exact() {
    // Seeded panic + slow-model faults against a stream of frames: the
    // process must not abort, every ticket must settle exactly once,
    // and every Ok settlement must still be bit-identical — a frame
    // that panicked mid-attempt retries against uncommitted state.
    let eng = Engine::new(
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            max_retries: 3,
            restart_budget: 16,
            backoff_base: Duration::from_millis(1),
            chaos: Some(ChaosConfig {
                seed: 0x5_1DE0_CAFE,
                panic_per_mille: 150,
                slow_per_mille: 100,
                slow: Duration::from_millis(1),
                ..ChaosConfig::default()
            }),
            ..EngineConfig::default()
        },
        registry(),
    );
    let sid = eng
        .open_video_session(VideoSessionSpec::new(16, 16, ladder_keys()))
        .expect("open");
    let mut ok = 0u32;
    let mut failed = 0u32;
    let mut seq = 0u64;
    for i in 0..24u64 {
        let f = frame(200 + i / 3, 16, 16); // every third frame changes
        let out = eng
            .feed_video_frame(sid, seq, f.clone(), None)
            .expect("feed")
            .wait();
        match out {
            Ok(t) => {
                ok += 1;
                seq += 1;
                assert_eq!(
                    reference(&f).max_abs_diff(&t),
                    0.0,
                    "chaos-surviving frame diverged"
                );
            }
            Err(ServeError::WorkerCrashed(_)) => {
                failed += 1; // retry budget exhausted: typed, re-feed same seq
            }
            Err(e) => panic!("unexpected terminal error: {e}"),
        }
    }
    assert_eq!(ok + failed, 24, "every frame settles exactly once");
    assert!(ok > 0, "some frames must survive the chaos schedule");
    let stats = eng.close_video_session(sid).expect("close");
    assert_eq!(u64::from(ok), stats.frames_in - stats.frames_duplicate);
}

// ---------------------------------------------------------------------------
// Router layer
// ---------------------------------------------------------------------------

fn router(max_sessions: usize) -> Router {
    Router::new(
        RouterConfig {
            shards: 2,
            max_sessions_per_tenant: max_sessions,
            engine: EngineConfig {
                workers: 1,
                ..EngineConfig::default()
            },
            ..RouterConfig::default()
        },
        registry(),
    )
}

#[test]
fn router_sessions_route_feed_and_close() {
    let r = router(4);
    let sid = r
        .open_video_session("acme", VideoSessionSpec::new(16, 16, ladder_keys()))
        .expect("open");
    let f0 = frame(120, 16, 16);
    for seq in 0..2u64 {
        let out = r
            .feed_video_frame(sid, seq, f0.clone(), None)
            .expect("feed")
            .wait()
            .expect("settle");
        assert_eq!(reference(&f0).max_abs_diff(&out), 0.0);
    }
    let stats = r.video_session_stats(sid).expect("stats");
    assert_eq!(stats.frames_completed, 2);
    assert!(stats.tiles_skipped > 0, "second identical frame must reuse");
    let closed = r.close_video_session(sid).expect("close");
    assert_eq!(closed.frames_completed, 2);
    assert_eq!(
        r.feed_video_frame(sid, 2, f0, None).unwrap_err(),
        RouterSubmitError::Video(VideoError::UnknownSession(sid))
    );
}

#[test]
fn per_tenant_session_cap_is_enforced() {
    let r = router(2);
    let spec = || VideoSessionSpec::new(16, 16, ladder_keys());
    let a1 = r.open_video_session("acme", spec()).expect("acme #1");
    let _a2 = r.open_video_session("acme", spec()).expect("acme #2");
    assert_eq!(
        r.open_video_session("acme", spec()).unwrap_err(),
        RouterSubmitError::Video(VideoError::SessionLimit { limit: 2 })
    );
    // The cap is per tenant, not fleet-wide.
    r.open_video_session("globex", spec()).expect("globex #1");
    // Closing frees cap space.
    r.close_video_session(a1).expect("close");
    r.open_video_session("acme", spec()).expect("acme again");
}

#[test]
fn router_unknown_session_errors_are_typed() {
    let r = router(4);
    assert_eq!(
        r.feed_video_frame(42, 0, frame(130, 16, 16), None)
            .unwrap_err(),
        RouterSubmitError::Video(VideoError::UnknownSession(42))
    );
    assert_eq!(
        r.close_video_session(42).unwrap_err(),
        VideoError::UnknownSession(42)
    );
    assert_eq!(
        r.video_session_stats(42).unwrap_err(),
        VideoError::UnknownSession(42)
    );
}

/// `warm_plans` is a pure cache warm-up: it must precompile every
/// (rung, tile shape) planner entry without touching session state, and
/// a warmed session's composites must stay bit-identical to a cold one.
#[test]
fn warm_plans_precompiles_without_changing_outputs() {
    let models: Vec<Arc<CollapsedSesr>> = ladder().iter().map(|(_, m)| Arc::clone(m)).collect();
    let mut spec = VideoSessionSpec::new(40, 36, ladder_keys());
    spec.tile = 16;

    let mut warm = VideoSession::new(spec.clone(), &models).expect("session");
    let mut warm_plans = PlanCache::new();
    warm.warm_plans(&models, &mut warm_plans);
    // Every rung's planner now exists: re-requesting each is a hit.
    for (key, model) in ladder() {
        let (_, hit) = warm_plans.tile_planner_for(key, model, &sesr_serve::PrecisionDecision::F32);
        assert!(hit, "warm_plans must have built the {key:?} planner");
    }
    assert_eq!(warm.stats(), Default::default(), "warming touched stats");
    assert_eq!(warm.last_seq(), None, "warming settled a frame");

    let mut cold = VideoSession::new(spec, &models).expect("session");
    let mut cold_plans = PlanCache::new();
    for seq in 0..3u64 {
        let f = frame(90 + seq, 40, 36);
        let a = warm
            .process_frame(seq, &f, None, &models, &mut warm_plans)
            .expect("warm frame");
        let b = cold
            .process_frame(seq, &f, None, &models, &mut cold_plans)
            .expect("cold frame");
        assert_eq!(
            a.output.max_abs_diff(&b.output),
            0.0,
            "warmed session diverged at frame {seq}"
        );
    }
}
