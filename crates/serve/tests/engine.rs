//! End-to-end tests of the serving engine: correctness of batched and
//! tiled execution against direct `CollapsedSesr::run`, the typed
//! backpressure and deadline paths, registry LRU behavior through the
//! engine, and telemetry export.

use sesr_core::model::{Sesr, SesrConfig};
use sesr_core::model_io::save_model;
use sesr_core::CollapsedSesr;
use sesr_serve::engine::{Engine, EngineConfig, Health, ServeError, SubmitError};
use sesr_serve::registry::{ModelKey, ModelRegistry};
use sesr_tensor::Tensor;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn tiny_model(seed: u64) -> CollapsedSesr {
    Sesr::new(SesrConfig::m(2).with_expanded(8).with_seed(seed)).collapse()
}

fn registry_with(key: &ModelKey, model: CollapsedSesr) -> Arc<ModelRegistry> {
    let r = Arc::new(ModelRegistry::new(4));
    r.insert(key.clone(), model);
    r
}

fn img(seed: u64, h: usize, w: usize) -> Tensor {
    Tensor::rand_uniform(&[1, h, w], 0.0, 1.0, seed)
}

#[test]
fn batched_results_equal_individual_runs() {
    let key = ModelKey::new("m2", 2);
    let model = tiny_model(1);
    let registry = registry_with(&key, tiny_model(1));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            max_batch: 4,
            ..EngineConfig::default()
        },
        registry,
    );
    // Pause so all four requests are queued together, guaranteeing the
    // worker assembles them into one micro-batch.
    engine.pause();
    let inputs: Vec<Tensor> = (0..4).map(|i| img(10 + i, 12, 16)).collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| engine.submit(&key, x.clone(), None).unwrap())
        .collect();
    engine.resume();
    for (x, t) in inputs.iter().zip(tickets) {
        let served = t.wait().unwrap();
        let direct = model.run(x);
        assert_eq!(served.shape(), direct.shape());
        let diff = served
            .data()
            .iter()
            .zip(direct.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert_eq!(diff, 0.0, "batched result must be bit-identical");
    }
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.completed, 4);
    assert!(c.batches >= 1);
    assert_eq!(c.batched_requests, 4);
    assert_eq!(c.max_batch, 4, "paused submissions must form one batch");
}

#[test]
fn queue_full_is_an_explicit_rejection() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(2));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            queue_capacity: 3,
            ..EngineConfig::default()
        },
        registry,
    );
    engine.pause();
    for i in 0..3 {
        engine.submit(&key, img(i, 8, 8), None).unwrap();
    }
    let err = engine.submit(&key, img(9, 8, 8), None).unwrap_err();
    assert_eq!(err, SubmitError::QueueFull { capacity: 3 });
    assert_eq!(engine.queue_depth(), 3);
    engine.resume();
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.rejected_queue_full, 1);
    assert_eq!(c.submitted, 3);
}

#[test]
fn expired_deadlines_are_dropped_before_compute() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(3));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        registry,
    );
    engine.pause();
    let doomed = engine
        .submit(&key, img(1, 8, 8), Some(Duration::from_millis(1)))
        .unwrap();
    let fine = engine
        .submit(&key, img(2, 8, 8), Some(Duration::from_secs(3600)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    engine.resume();
    assert_eq!(doomed.wait().unwrap_err(), ServeError::DeadlineExpired);
    fine.wait().unwrap();
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.rejected_deadline, 1);
    assert_eq!(c.completed, 1);
}

#[test]
fn unknown_model_is_rejected_at_submit() {
    let registry = Arc::new(ModelRegistry::new(2));
    let engine = Engine::new(EngineConfig::default(), registry);
    let key = ModelKey::new("nope", 2);
    let err = engine.submit(&key, img(0, 8, 8), None).unwrap_err();
    assert_eq!(err, SubmitError::UnknownModel(key));
}

#[test]
fn oversized_requests_take_the_tiled_path_and_stay_bit_exact() {
    let key = ModelKey::new("m2", 2);
    let model = tiny_model(4);
    let registry = registry_with(&key, tiny_model(4));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            tile_threshold_px: 24 * 24, // low threshold so a small test image tiles
            tile: 10,
            ..EngineConfig::default()
        },
        registry,
    );
    let x = img(7, 30, 26);
    let served = engine
        .submit(&key, x.clone(), None)
        .unwrap()
        .wait()
        .unwrap();
    let direct = model.run(&x);
    let diff = served
        .data()
        .iter()
        .zip(direct.data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert_eq!(diff, 0.0, "tiled serving must match whole-image run");
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.tiled_requests, 1);
    assert!(c.tiles_run > 1, "a 30x26 image with 10px tiles must split");
}

#[test]
fn lazy_load_and_lru_eviction_through_the_engine() {
    let dir = std::env::temp_dir().join("sesr_engine_lru_test");
    std::fs::create_dir_all(&dir).unwrap();
    let registry = Arc::new(ModelRegistry::new(2));
    let keys: Vec<ModelKey> = (0..3)
        .map(|i| {
            let key = ModelKey::new(&format!("m2v{i}"), 2);
            let path: PathBuf = dir.join(format!("{key}.sesr"));
            save_model(&tiny_model(20 + i as u64), &path).unwrap();
            registry.register_path(key.clone(), path);
            key
        })
        .collect();
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        Arc::clone(&registry),
    );
    for key in &keys {
        engine
            .submit(key, img(1, 8, 8), None)
            .unwrap()
            .wait()
            .unwrap();
    }
    let s = registry.stats();
    assert_eq!(s.loads, 3, "each model lazily loads on first use");
    assert_eq!(s.evictions, 1, "capacity 2 must evict once for 3 models");
    assert_eq!(s.resident, 2);
    // Re-serving the evicted model reloads it.
    engine
        .submit(&keys[0], img(2, 8, 8), None)
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(registry.stats().loads, 4);
}

#[test]
fn load_failure_surfaces_as_serve_error() {
    let registry = Arc::new(ModelRegistry::new(2));
    let key = ModelKey::new("ghost", 2);
    registry.register_path(key.clone(), PathBuf::from("/nonexistent/ghost.sesr"));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        registry,
    );
    let err = engine
        .submit(&key, img(0, 8, 8), None)
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServeError::ModelLoad(_)));
    // Load failures are retryable: the request is re-attempted
    // max_retries times before the typed error becomes terminal.
    let c = engine.telemetry().snapshot().counters;
    let attempts = 1 + u64::from(EngineConfig::default().max_retries);
    assert_eq!(c.model_load_failures, attempts);
    assert_eq!(c.requests_retried, attempts - 1);
}

#[test]
fn invalid_inputs_are_rejected_before_enqueue() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(8));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        registry,
    );
    let nan = {
        let mut t = img(1, 8, 8);
        t.data_mut()[3] = f32::NAN;
        t
    };
    let inf = {
        let mut t = img(2, 8, 8);
        t.data_mut()[0] = f32::INFINITY;
        t
    };
    // Zero-dim tensors are unconstructible (Shape asserts on them), so
    // the engine's zero-dim check is pure defense-in-depth; the shape
    // cases reachable from outside are wrong rank and a batch dim != 1.
    let bad_rank = Tensor::zeros(&[8, 8]);
    let bad_batch = Tensor::zeros(&[2, 8, 8]);
    for bad in [nan, inf, bad_rank, bad_batch] {
        let err = engine.submit(&key, bad, None).unwrap_err();
        assert!(
            matches!(err, SubmitError::InvalidInput { .. }),
            "expected InvalidInput, got {err:?}"
        );
    }
    assert_eq!(engine.telemetry().snapshot().counters.rejected_invalid, 4);
    // A well-formed input is still admitted and served.
    engine
        .submit(&key, img(3, 8, 8), None)
        .unwrap()
        .wait()
        .unwrap();
}

#[test]
fn corrupted_checkpoint_yields_model_load_error_not_panic() {
    let dir = std::env::temp_dir().join("sesr_engine_corrupt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let key = ModelKey::new("m2c", 2);
    let path: PathBuf = dir.join(format!("{key}.sesr"));
    save_model(&tiny_model(30), &path).unwrap();
    // Flip a payload byte: the model_io v2 trailing CRC must now mismatch.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let registry = Arc::new(ModelRegistry::new(2));
    registry.register_path(key.clone(), path);
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            max_retries: 0, // corruption is not transient; fail on first attempt
            ..EngineConfig::default()
        },
        registry,
    );
    let err = engine
        .submit(&key, img(0, 8, 8), None)
        .unwrap()
        .wait()
        .unwrap_err();
    assert!(matches!(err, ServeError::ModelLoad(_)), "got {err:?}");
    assert_eq!(
        engine.telemetry().snapshot().counters.model_load_failures,
        1
    );
}

#[test]
fn shutdown_drains_and_joins_within_deadline() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(9));
    let engine = Engine::new(
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
        registry,
    );
    assert_eq!(engine.health(), Health::Healthy);
    let tickets: Vec<_> = (0..12)
        .map(|i| engine.submit(&key, img(i, 8, 8), None).unwrap())
        .collect();
    let report = engine.shutdown(Duration::from_secs(30));
    assert!(report.joined, "workers must join within the deadline");
    assert!(report.elapsed < Duration::from_secs(30));
    assert_eq!(report.dropped, 0, "admitted work is flushed, not dropped");
    assert_eq!(report.expired, 0);
    for t in tickets {
        t.wait().unwrap();
    }
    assert_eq!(engine.health(), Health::Draining);
    let err = engine.submit(&key, img(99, 8, 8), None).unwrap_err();
    assert_eq!(err, SubmitError::Draining);
    assert_eq!(engine.telemetry().snapshot().counters.rejected_draining, 1);
    // Idempotent: a second shutdown observes an already-drained engine.
    let again = engine.shutdown(Duration::from_secs(1));
    assert!(again.joined);
    assert_eq!(again.dropped, 0);
}

#[test]
fn shutdown_fails_expired_queued_items_with_deadline_error() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(10));
    let engine = Engine::new(
        EngineConfig {
            workers: 0, // nothing consumes: items expire inside the queue
            ..EngineConfig::default()
        },
        registry,
    );
    let doomed = engine
        .submit(&key, img(1, 8, 8), Some(Duration::from_millis(1)))
        .unwrap();
    let fresh = engine
        .submit(&key, img(2, 8, 8), Some(Duration::from_secs(3600)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let report = engine.shutdown(Duration::from_secs(1));
    assert_eq!(report.expired, 1, "the expired item gets DeadlineExpired");
    assert_eq!(report.dropped, 1, "the live item gets ShuttingDown");
    assert_eq!(doomed.wait().unwrap_err(), ServeError::DeadlineExpired);
    assert_eq!(fresh.wait().unwrap_err(), ServeError::ShuttingDown);
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.dropped_in_drain, 1);
    assert_eq!(c.rejected_deadline, 1);
}

#[test]
fn drop_drains_queue_instead_of_hanging_callers() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(5));
    let engine = Engine::new(
        EngineConfig {
            workers: 0, // nothing consumes; Drop must fulfill the tickets
            ..EngineConfig::default()
        },
        registry,
    );
    let t = engine.submit(&key, img(0, 8, 8), None).unwrap();
    drop(engine);
    assert_eq!(t.wait().unwrap_err(), ServeError::ShuttingDown);
}

#[test]
fn telemetry_snapshot_exports_valid_json_with_stage_quantiles() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(6));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        registry,
    );
    for i in 0..6 {
        engine
            .submit(&key, img(i, 10, 10), None)
            .unwrap()
            .wait()
            .unwrap();
    }
    let snap = engine.telemetry().snapshot();
    let json = snap.to_json();
    sesr_serve::json::validate(&json).expect("telemetry JSON must be well-formed");
    for stage in ["queue_wait", "compute", "total"] {
        assert!(json.contains(stage), "snapshot must report {stage}");
    }
    let total = &snap
        .stages
        .iter()
        .find(|(name, _)| *name == "total")
        .expect("total stage present")
        .1;
    assert_eq!(total.count, 6);
    assert!(total.p50_ms > 0.0);
    assert!(total.p99_ms >= total.p50_ms);
}

#[test]
fn more_workers_increase_throughput_on_multicore_hosts() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping multi-worker throughput test on a single-core host");
        return;
    }
    let key = ModelKey::new("m2", 2);
    let run = |workers: usize| -> f64 {
        let registry = registry_with(&key, tiny_model(7));
        let engine = Engine::new(
            EngineConfig {
                workers,
                queue_capacity: 256,
                max_batch: 1, // force per-request dispatch so workers parallelize
                ..EngineConfig::default()
            },
            registry,
        );
        let spec = sesr_serve::loadgen::LoadSpec {
            requests: 48,
            mode: sesr_serve::loadgen::LoadMode::Closed {
                concurrency: workers.max(2) * 2,
            },
            height: 48,
            width: 48,
            seed: 11,
            deadline: None,
            burst: 0,
        };
        let report = sesr_serve::loadgen::run_load(&engine, &key, &spec);
        assert_eq!(report.completed as usize, spec.requests);
        report.throughput_rps
    };
    let single = run(1);
    let multi = run(cores.min(4));
    assert!(
        multi > single,
        "expected multi-worker throughput ({multi:.1} rps) to beat single-worker ({single:.1} rps)"
    );
}

#[test]
fn plan_cache_counters_track_hits_misses_and_arena() {
    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(11));
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        },
        registry,
    );
    // Same model + shape every time: the single worker compiles one plan
    // on the first request and reuses it for the rest.
    for i in 0..5 {
        engine
            .submit(&key, img(40 + i, 12, 16), None)
            .unwrap()
            .wait()
            .unwrap();
    }
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(
        c.plan_cache_hits + c.plan_cache_misses,
        5,
        "every batch group performs exactly one plan lookup"
    );
    assert!(c.plan_cache_misses >= 1, "first request must compile");
    assert!(c.plan_cache_hits >= 4, "steady state must reuse the plan");
    assert!(c.peak_arena_bytes > 0, "planned runs must report arena use");

    // A new shape is a plan miss but not a recompile of the kernels.
    engine
        .submit(&key, img(50, 9, 9), None)
        .unwrap()
        .wait()
        .unwrap();
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.plan_cache_misses, 2);
}

// ---------------------------------------------------------------------------
// Int8 serving precision policy
// ---------------------------------------------------------------------------

/// Derives the int8 oracle exactly as the engine's load-time grading
/// does: same deterministic calibration scene, same packed kernels.
fn int8_oracle(key: &ModelKey, model: CollapsedSesr, budget: f64) -> sesr_serve::PrecisionDecision {
    let mut cache = sesr_serve::PlanCache::new();
    let (d, _) = cache.decision_for(key, &Arc::new(model), budget);
    // The Arc is ours alone; unwrap the decision for direct use.
    Arc::try_unwrap(d).unwrap_or_else(|d| sesr_serve::PrecisionDecision {
        precision: d.precision,
        delta_db: d.delta_db,
        qkernels: d.qkernels.clone(),
    })
}

#[test]
fn int8_policy_serves_the_quantized_plan_bit_exactly() {
    use sesr_quant::QuantPlan;
    use sesr_serve::{Precision, PrecisionPolicy};

    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(1));
    // A generous budget: every calibrated model loses far less than
    // 100 dB, so the decision must resolve to int8.
    let oracle = int8_oracle(&key, tiny_model(1), 100.0);
    assert_eq!(oracle.precision, Precision::Int8);
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            precision: PrecisionPolicy::Int8 { psnr_budget: 100.0 },
            ..EngineConfig::default()
        },
        registry,
    );
    let x = img(3, 12, 16);
    let mut plan = QuantPlan::new(oracle.qkernels.clone().unwrap(), 12, 16);
    let want = plan.run(&x);
    for _ in 0..2 {
        let served = engine
            .submit(&key, x.clone(), None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(served.shape(), want.shape());
        let exact = served
            .data()
            .iter()
            .zip(want.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            exact,
            "served int8 output must match the quantized plan bits"
        );
    }
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.int8_plans_active, 1, "one int8 plan compiled: {c:?}");
    assert_eq!(c.int8_plan_cache_hits, 1, "second request hits it: {c:?}");
    assert_eq!(
        c.precision_fallbacks, 0,
        "in-budget model must not fall back"
    );
}

#[test]
fn impossible_budget_falls_back_to_f32_and_counts_once() {
    use sesr_serve::PrecisionPolicy;

    let key = ModelKey::new("m2", 2);
    let model = tiny_model(4);
    let registry = registry_with(&key, tiny_model(4));
    // No finite measurement satisfies a -100 dB budget: the engine must
    // grade the model once, fall back, and serve plain f32 plans.
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            precision: PrecisionPolicy::Int8 {
                psnr_budget: -100.0,
            },
            ..EngineConfig::default()
        },
        registry,
    );
    let x = img(8, 10, 14);
    let want = model.run(&x);
    for _ in 0..3 {
        let served = engine
            .submit(&key, x.clone(), None)
            .unwrap()
            .wait()
            .unwrap();
        let exact = served
            .data()
            .iter()
            .zip(want.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(exact, "fallback must serve the f32 bits");
    }
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(
        c.precision_fallbacks, 1,
        "one fallback per grading, not per request: {c:?}"
    );
    assert_eq!(
        c.int8_plans_active, 0,
        "no int8 plan may be compiled: {c:?}"
    );
    assert_eq!(c.int8_plan_cache_hits, 0, "{c:?}");
    assert!(
        c.plan_cache_hits >= 2,
        "f32 plans still cache normally: {c:?}"
    );
}

#[test]
fn tiled_int8_request_matches_the_whole_frame_quantized_plan() {
    use sesr_quant::QuantPlan;
    use sesr_serve::PrecisionPolicy;

    let key = ModelKey::new("m2", 2);
    let registry = registry_with(&key, tiny_model(1));
    let oracle = int8_oracle(&key, tiny_model(1), 100.0);
    let engine = Engine::new(
        EngineConfig {
            workers: 1,
            // 20x24 = 480 px exceeds the threshold: tiled path.
            tile_threshold_px: 256,
            tile: 12,
            precision: PrecisionPolicy::Int8 { psnr_budget: 100.0 },
            ..EngineConfig::default()
        },
        registry,
    );
    let x = img(6, 20, 24);
    let mut plan = QuantPlan::new(oracle.qkernels.clone().unwrap(), 20, 24);
    let want = plan.run(&x);
    let served = engine.submit(&key, x, None).unwrap().wait().unwrap();
    let exact = served
        .data()
        .iter()
        .zip(want.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(
        exact,
        "tiled int8 composite must equal the whole-frame quantized plan"
    );
    let c = engine.telemetry().snapshot().counters;
    assert_eq!(c.tiled_requests, 1, "{c:?}");
    assert!(
        c.tiles_run > 1,
        "the request must actually have tiled: {c:?}"
    );
    assert_eq!(c.int8_plans_active, 1, "{c:?}");
    assert_eq!(c.precision_fallbacks, 0, "{c:?}");
}
