//! Measure-and-pick runtime autotuning for the packed kernels.
//!
//! The same pattern production GPU stacks use (burn's `tune.rs`): run each
//! candidate configuration on the real workload a fixed number of times,
//! score it by its *minimum* observed wall time (minimum, not mean — noise
//! only ever adds time), and keep the winner. Two tuners build on the
//! shared [`pick`] primitive:
//!
//! * **GEMM blocking** ([`gemm_blocking`]): picks the `NC` column-block
//!   size and the `parallel_for` row-block granularity per `(m, k, n)`
//!   shape, cached process-wide. Blocking is *numerically neutral* — the
//!   per-element accumulation chains are fixed by `KC` and the k-loop
//!   order, which blocking never touches — so a cache hit or miss can
//!   never change output bits. The kernel *variant* is deliberately NOT
//!   tuned here: the GEMM always runs the process-global
//!   [`crate::simd::kernel_variant`], because the reference convolution
//!   (im2col + GEMM) and the planned direct convolution must stay on the
//!   same arithmetic for the planned-vs-reference bit-identity guarantee.
//!   Variant selection happens at plan level (`InferPlan` in `sesr-core`),
//!   where the executor owns both sides of that contract.
//! * **Plan variant tuning** (in `sesr-core`): uses [`pick`] over
//!   [`crate::simd::detected_variants`] with the compiled plan itself as
//!   the workload.
//!
//! Determinism: [`pick`] is a pure function of the measured costs
//! (ties break toward the earlier candidate, and candidate order is
//! fixed), so tests inject a deterministic measurer and assert stable
//! choices; see `choice_is_deterministic_given_measurements`.

use crate::gemm;
use crate::parallel::num_threads;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Measures every candidate `reps` times and returns
/// `(winner_index, best_cost_per_candidate)`. The winner is the candidate
/// with the smallest best cost; ties break toward the earlier index, so
/// the result is a deterministic function of the measurements and the
/// candidate order.
///
/// # Panics
///
/// Panics if `candidates` is empty or `reps` is zero.
pub fn pick<C>(
    candidates: &[C],
    reps: usize,
    mut measure: impl FnMut(&C) -> u64,
) -> (usize, Vec<u64>) {
    assert!(!candidates.is_empty(), "no candidates to pick from");
    assert!(reps > 0, "need at least one measurement rep");
    let costs: Vec<u64> = candidates
        .iter()
        .map(|c| (0..reps).map(|_| measure(c)).min().expect("reps > 0"))
        .collect();
    let winner = costs
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("non-empty")
        .0;
    (winner, costs)
}

/// Times one call of `work` in nanoseconds (the default measurer).
pub fn time_ns(work: impl FnOnce()) -> u64 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_nanos() as u64
}

/// Numerically-neutral blocking knobs of the packed GEMM. `KC` is *not*
/// here: the k-block size defines the accumulation chains (the numeric
/// contract shared with the planner's direct convolution) and is pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Column-block size (columns of `B` packed per block). Clamped to
    /// `[8, 1024]` and rounded up to a multiple of the 8-wide strip.
    pub nc: usize,
    /// `parallel_for` granularity in 8-row blocks of `C` (how many row
    /// blocks one scheduling chunk claims at minimum).
    pub mc_blocks: usize,
}

impl GemmBlocking {
    /// The pre-tuner defaults (the constants the kernel shipped with).
    pub fn baseline() -> Self {
        GemmBlocking {
            nc: gemm::NC,
            mc_blocks: 1,
        }
    }

    /// Clamps into the range the pack-scratch sizing supports.
    pub(crate) fn clamped(self) -> Self {
        GemmBlocking {
            nc: self.nc.clamp(8, gemm::NC).next_multiple_of(8),
            mc_blocks: self.mc_blocks.max(1),
        }
    }
}

/// The candidate blocking configurations, fixed order (ties in measured
/// cost resolve toward the front). The baseline ships first so a
/// measurement wash keeps historic behavior.
fn blocking_candidates() -> Vec<GemmBlocking> {
    let mut cands = vec![
        GemmBlocking::baseline(),
        GemmBlocking {
            nc: 512,
            mc_blocks: 1,
        },
        GemmBlocking {
            nc: 256,
            mc_blocks: 1,
        },
    ];
    if num_threads() > 1 {
        // Coarser scheduling chunks only matter when there is a pool to
        // schedule over.
        cands.push(GemmBlocking {
            nc: gemm::NC,
            mc_blocks: 4,
        });
    }
    cands
}

/// Shapes below this many flops (`2*m*k*n`) are not worth measuring: the
/// probe would cost more than the tuned call saves. They get the baseline.
const MEASURE_FLOPS_MIN: u64 = 1 << 24;

/// Probe buffers above this many floats would thrash the allocator for a
/// one-off measurement; such shapes get the baseline unmeasured.
const MEASURE_FLOATS_MAX: usize = 8 << 20;

/// Bound on distinct cached shapes (a training run sees a handful; a
/// pathological caller cycling shapes must not grow this without bound —
/// past the cap, choices are computed as baseline without caching).
const CACHE_CAP: usize = 64;

type GemmChoiceMap = HashMap<(usize, usize, usize), GemmBlocking>;

static GEMM_CHOICES: Mutex<Option<GemmChoiceMap>> = Mutex::new(None);

/// The tuned (or default) blocking for an `m x k x n` multiply, measured
/// on first use of a shape and cached process-wide. See the module doc
/// for why the kernel variant is not part of this choice.
pub fn gemm_blocking(m: usize, k: usize, n: usize) -> GemmBlocking {
    gemm_blocking_with(m, k, n, |blocking| {
        let a = vec![0.25f32; m * k];
        let b = vec![0.5f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut scratch = vec![0.0f32; gemm::gemm_scratch_len(n)];
        time_ns(|| gemm::probe_packed(&a, &b, &mut c, m, k, n, &mut scratch, blocking))
    })
}

/// [`gemm_blocking`] with the measurer injected (tests pass a
/// deterministic cost model). Small shapes and oversized probe buffers
/// skip measurement entirely and return the baseline.
pub fn gemm_blocking_with(
    m: usize,
    k: usize,
    n: usize,
    measure: impl FnMut(&GemmBlocking) -> u64,
) -> GemmBlocking {
    let flops = 2u64 * m as u64 * k as u64 * n as u64;
    if flops < MEASURE_FLOPS_MIN || m * k + k * n + m * n > MEASURE_FLOATS_MAX {
        return GemmBlocking::baseline();
    }
    let key = (m, k, n);
    let mut guard = GEMM_CHOICES.lock().unwrap_or_else(|e| e.into_inner());
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(&choice) = cache.get(&key) {
        return choice;
    }
    let cands = blocking_candidates();
    let (winner, _costs) = pick(&cands, 2, measure);
    let choice = cands[winner].clamped();
    if cache.len() < CACHE_CAP {
        cache.insert(key, choice);
    }
    choice
}

/// Number of shapes with a cached blocking choice (telemetry).
pub fn cached_gemm_choices() -> usize {
    GEMM_CHOICES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map_or(0, HashMap::len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_returns_argmin_with_first_index_tiebreak() {
        let cands = ["a", "b", "c", "d"];
        let costs = [30u64, 10, 10, 40];
        let (w, best) = pick(&cands, 3, |c| {
            costs[cands.iter().position(|x| x == c).unwrap()]
        });
        assert_eq!(w, 1, "tie between b and c must resolve to b");
        assert_eq!(best, vec![30, 10, 10, 40]);
    }

    #[test]
    fn pick_scores_by_minimum_over_reps() {
        // Candidate 0 is noisy (one bad rep), candidate 1 is consistently
        // mediocre: the minimum rule must prefer 0.
        let mut calls = 0u64;
        let (w, best) = pick(&[0usize, 1], 2, |&c| {
            calls += 1;
            match (c, calls) {
                (0, 1) => 100,
                (0, 2) => 5,
                _ => 50,
            }
        });
        assert_eq!(w, 0);
        assert_eq!(best, vec![5, 50]);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn pick_rejects_empty() {
        let _ = pick::<u32>(&[], 1, |_| 0);
    }

    #[test]
    fn small_shapes_skip_measurement() {
        let mut measured = false;
        let choice = gemm_blocking_with(4, 4, 4, |_| {
            measured = true;
            1
        });
        assert!(!measured, "tiny shapes must not pay a probe");
        assert_eq!(choice, GemmBlocking::baseline());
    }

    #[test]
    fn choice_is_deterministic_given_measurements() {
        // A fixed (deterministic) cost model must produce the same choice
        // on every call — the second call additionally exercises the
        // cache-hit path.
        let shape = (64usize, 300usize, 2048usize);
        let model = |b: &GemmBlocking| 1000 + b.nc as u64 / 4 - b.mc_blocks as u64;
        let first = gemm_blocking_with(shape.0, shape.1, shape.2, model);
        let second = gemm_blocking_with(shape.0, shape.1, shape.2, model);
        assert_eq!(first, second);
        assert!(cached_gemm_choices() >= 1);
    }

    #[test]
    fn clamp_rounds_nc_to_strip_multiple() {
        let b = GemmBlocking {
            nc: 13,
            mc_blocks: 0,
        }
        .clamped();
        assert_eq!(b.nc, 16);
        assert_eq!(b.mc_blocks, 1);
    }
}
