//! Measure-and-pick runtime autotuning for the packed kernels.
//!
//! The same pattern production GPU stacks use (burn's `tune.rs`): run each
//! candidate configuration on the real workload a fixed number of times,
//! score it by its *minimum* observed wall time (minimum, not mean — noise
//! only ever adds time), and keep the winner. Two tuners build on the
//! shared [`pick`] primitive:
//!
//! * **GEMM blocking** ([`gemm_blocking`]): picks the `NC` column-block
//!   size and the `parallel_for` row-block granularity per `(m, k, n)`
//!   shape, cached process-wide. Blocking is *numerically neutral* — the
//!   per-element accumulation chains are fixed by `KC` and the k-loop
//!   order, which blocking never touches — so a cache hit or miss can
//!   never change output bits. The kernel *variant* is deliberately NOT
//!   tuned here: the GEMM always runs the process-global
//!   [`crate::simd::kernel_variant`], because the reference convolution
//!   (im2col + GEMM) and the planned direct convolution must stay on the
//!   same arithmetic for the planned-vs-reference bit-identity guarantee.
//!   Variant selection happens at plan level (`InferPlan` in `sesr-core`),
//!   where the executor owns both sides of that contract.
//! * **Plan variant tuning** (in `sesr-core`): uses [`pick`] over
//!   [`crate::simd::detected_variants`] with the compiled plan itself as
//!   the workload.
//!
//! Determinism: [`pick`] is a pure function of the measured costs
//! (ties break toward the earlier candidate, and candidate order is
//! fixed), so tests inject a deterministic measurer and assert stable
//! choices; see `choice_is_deterministic_given_measurements`.

use crate::gemm;
use crate::parallel::num_threads;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Measures every candidate `reps` times and returns
/// `(winner_index, best_cost_per_candidate)`. The winner is the candidate
/// with the smallest best cost; ties break toward the earlier index, so
/// the result is a deterministic function of the measurements and the
/// candidate order.
///
/// # Panics
///
/// Panics if `candidates` is empty or `reps` is zero.
pub fn pick<C>(
    candidates: &[C],
    reps: usize,
    mut measure: impl FnMut(&C) -> u64,
) -> (usize, Vec<u64>) {
    assert!(!candidates.is_empty(), "no candidates to pick from");
    assert!(reps > 0, "need at least one measurement rep");
    let costs: Vec<u64> = candidates
        .iter()
        .map(|c| (0..reps).map(|_| measure(c)).min().expect("reps > 0"))
        .collect();
    let winner = costs
        .iter()
        .enumerate()
        .min_by_key(|&(i, &c)| (c, i))
        .expect("non-empty")
        .0;
    (winner, costs)
}

/// Times one call of `work` in nanoseconds (the default measurer).
pub fn time_ns(work: impl FnOnce()) -> u64 {
    let t0 = Instant::now();
    work();
    t0.elapsed().as_nanos() as u64
}

/// Numerically-neutral blocking knobs of the packed GEMM. `KC` is *not*
/// here: the k-block size defines the accumulation chains (the numeric
/// contract shared with the planner's direct convolution) and is pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBlocking {
    /// Column-block size (columns of `B` packed per block). Clamped to
    /// `[8, 1024]` and rounded up to a multiple of the 8-wide strip.
    pub nc: usize,
    /// `parallel_for` granularity in 8-row blocks of `C` (how many row
    /// blocks one scheduling chunk claims at minimum).
    pub mc_blocks: usize,
}

impl GemmBlocking {
    /// The pre-tuner defaults (the constants the kernel shipped with).
    pub fn baseline() -> Self {
        GemmBlocking {
            nc: gemm::NC,
            mc_blocks: 1,
        }
    }

    /// Clamps into the range the pack-scratch sizing supports.
    pub(crate) fn clamped(self) -> Self {
        GemmBlocking {
            nc: self.nc.clamp(8, gemm::NC).next_multiple_of(8),
            mc_blocks: self.mc_blocks.max(1),
        }
    }
}

/// The candidate blocking configurations, fixed order (ties in measured
/// cost resolve toward the front). The baseline ships first so a
/// measurement wash keeps historic behavior.
fn blocking_candidates() -> Vec<GemmBlocking> {
    let mut cands = vec![
        GemmBlocking::baseline(),
        GemmBlocking {
            nc: 512,
            mc_blocks: 1,
        },
        GemmBlocking {
            nc: 256,
            mc_blocks: 1,
        },
    ];
    if num_threads() > 1 {
        // Coarser scheduling chunks only matter when there is a pool to
        // schedule over.
        cands.push(GemmBlocking {
            nc: gemm::NC,
            mc_blocks: 4,
        });
    }
    cands
}

/// Shapes below this many flops (`2*m*k*n`) are not worth measuring: the
/// probe would cost more than the tuned call saves. They get the baseline.
const MEASURE_FLOPS_MIN: u64 = 1 << 24;

/// Probe buffers above this many floats would thrash the allocator for a
/// one-off measurement; such shapes get the baseline unmeasured.
const MEASURE_FLOATS_MAX: usize = 8 << 20;

/// Bound on distinct cached shapes (a training run sees a handful; a
/// pathological caller cycling shapes must not grow this without bound —
/// past the cap, choices are computed as baseline without caching).
const CACHE_CAP: usize = 64;

type GemmChoiceMap = HashMap<(usize, usize, usize), GemmBlocking>;

static GEMM_CHOICES: Mutex<Option<GemmChoiceMap>> = Mutex::new(None);

/// The tuned (or default) blocking for an `m x k x n` multiply, measured
/// on first use of a shape and cached process-wide. See the module doc
/// for why the kernel variant is not part of this choice.
pub fn gemm_blocking(m: usize, k: usize, n: usize) -> GemmBlocking {
    gemm_blocking_with(m, k, n, |blocking| {
        let a = vec![0.25f32; m * k];
        let b = vec![0.5f32; k * n];
        let mut c = vec![0.0f32; m * n];
        let mut scratch = vec![0.0f32; gemm::gemm_scratch_len(n)];
        time_ns(|| gemm::probe_packed(&a, &b, &mut c, m, k, n, &mut scratch, blocking))
    })
}

/// [`gemm_blocking`] with the measurer injected (tests pass a
/// deterministic cost model). Small shapes and oversized probe buffers
/// skip measurement entirely and return the baseline.
pub fn gemm_blocking_with(
    m: usize,
    k: usize,
    n: usize,
    measure: impl FnMut(&GemmBlocking) -> u64,
) -> GemmBlocking {
    let flops = 2u64 * m as u64 * k as u64 * n as u64;
    if flops < MEASURE_FLOPS_MIN || m * k + k * n + m * n > MEASURE_FLOATS_MAX {
        return GemmBlocking::baseline();
    }
    let key = (m, k, n);
    let mut guard = GEMM_CHOICES.lock().unwrap_or_else(|e| e.into_inner());
    let cache = guard.get_or_insert_with(HashMap::new);
    if let Some(&choice) = cache.get(&key) {
        return choice;
    }
    let cands = blocking_candidates();
    let (winner, _costs) = pick(&cands, 2, measure);
    let choice = cands[winner].clamped();
    if cache.len() < CACHE_CAP {
        cache.insert(key, choice);
    }
    choice
}

/// Number of shapes with a cached blocking choice (telemetry).
pub fn cached_gemm_choices() -> usize {
    GEMM_CHOICES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map_or(0, HashMap::len)
}

// ---------------------------------------------------------------------------
// Tuner-choice persistence
// ---------------------------------------------------------------------------

/// Magic + version line of the tuner file. Bumping the format bumps the
/// version; loaders reject anything they don't understand rather than
/// guessing.
const TUNER_MAGIC: &str = "sesr-tuner v1";

/// Why a tuner file failed to load. `VariantMismatch` is not an error in
/// the usual sense — the file is valid but was tuned for different
/// hardware paths, so installing its choices would be wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TunerFileError {
    /// I/O failure reading the file (missing file, permissions, ...).
    Io(String),
    /// Magic/version line absent or unknown.
    BadMagic,
    /// Trailing checksum line missing or wrong — truncated or hand-edited.
    BadChecksum,
    /// A body line failed to parse.
    BadEntry(String),
    /// The file records choices for a different kernel variant than the
    /// one active in this process; its measurements don't transfer.
    VariantMismatch {
        /// Variant name recorded in the file.
        recorded: String,
        /// Variant active in this process.
        active: String,
    },
}

impl fmt::Display for TunerFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunerFileError::Io(e) => write!(f, "tuner file io error: {e}"),
            TunerFileError::BadMagic => write!(f, "tuner file has unknown magic/version"),
            TunerFileError::BadChecksum => write!(f, "tuner file checksum mismatch"),
            TunerFileError::BadEntry(line) => write!(f, "tuner file bad entry: {line:?}"),
            TunerFileError::VariantMismatch { recorded, active } => write!(
                f,
                "tuner file recorded for variant {recorded}, process runs {active}"
            ),
        }
    }
}

impl std::error::Error for TunerFileError {}

/// FNV-1a over the body text — cheap corruption/truncation detection, not
/// cryptographic integrity.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Renders the current tuned choices as the versioned file body (without
/// the checksum line). Entries are sorted so the output is byte-stable
/// for a given cache state.
fn render_choices(variant: &str, choices: &GemmChoiceMap) -> String {
    let mut entries: Vec<_> = choices.iter().collect();
    entries.sort_by_key(|(&k, _)| k);
    let mut body = format!("{TUNER_MAGIC}\nvariant {variant}\n");
    for (&(m, k, n), b) in entries {
        body.push_str(&format!("gemm {m} {k} {n} {} {}\n", b.nc, b.mc_blocks));
    }
    body
}

/// Writes every cached GEMM blocking choice (and the active kernel
/// variant) to `path` as a small versioned text file. Returns the number
/// of entries written. Writing an empty cache is valid — the file then
/// just pins the variant.
pub fn save_choices(path: &Path) -> std::io::Result<usize> {
    let variant = crate::simd::kernel_variant().name().to_string();
    let choices = GEMM_CHOICES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_default();
    let body = render_choices(&variant, &choices);
    let text = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
    std::fs::write(path, text)?;
    Ok(choices.len())
}

/// One parsed tuner-file entry: the `(m, k, n)` shape and its blocking.
type TunedEntry = ((usize, usize, usize), GemmBlocking);

/// Parses and validates a tuner file, returning `(variant, entries)`
/// without installing anything.
fn parse_choices(text: &str) -> Result<(String, Vec<TunedEntry>), TunerFileError> {
    // Split the trailing checksum line off the body it covers.
    let trimmed = text.trim_end_matches('\n');
    let (body_end, checksum_line) = match trimmed.rfind('\n') {
        Some(i) => (i + 1, &trimmed[i + 1..]),
        None => return Err(TunerFileError::BadMagic),
    };
    let body = &text[..body_end];
    let recorded = checksum_line
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h.trim(), 16).ok())
        .ok_or(TunerFileError::BadChecksum)?;
    if recorded != fnv1a(body.as_bytes()) {
        return Err(TunerFileError::BadChecksum);
    }
    let mut lines = body.lines();
    if lines.next() != Some(TUNER_MAGIC) {
        return Err(TunerFileError::BadMagic);
    }
    let variant = lines
        .next()
        .and_then(|l| l.strip_prefix("variant "))
        .ok_or(TunerFileError::BadMagic)?
        .trim()
        .to_string();
    let mut entries = Vec::new();
    for line in lines {
        let mut it = line.split_whitespace();
        let bad = || TunerFileError::BadEntry(line.to_string());
        if it.next() != Some("gemm") {
            return Err(bad());
        }
        let mut num = || -> Result<usize, TunerFileError> {
            it.next().and_then(|t| t.parse().ok()).ok_or_else(bad)
        };
        let (m, k, n, nc, mc) = (num()?, num()?, num()?, num()?, num()?);
        entries.push(((m, k, n), GemmBlocking { nc, mc_blocks: mc }.clamped()));
    }
    Ok((variant, entries))
}

/// Loads a tuner file written by [`save_choices`] and installs its GEMM
/// choices into the process-wide cache (up to [`CACHE_CAP`]; entries
/// already present locally win — they were measured here). Returns the
/// number of entries installed.
///
/// Choices are only installed when the file's recorded kernel variant
/// matches the variant active in this process — blocking measured under
/// AVX2 says nothing about scalar, and installing it would silently
/// de-tune the GEMM. A mismatch returns
/// [`TunerFileError::VariantMismatch`] and installs nothing.
pub fn load_choices(path: &Path) -> Result<usize, TunerFileError> {
    let text = std::fs::read_to_string(path).map_err(|e| TunerFileError::Io(e.to_string()))?;
    let (variant, entries) = parse_choices(&text)?;
    let active = crate::simd::kernel_variant().name();
    if variant != active {
        return Err(TunerFileError::VariantMismatch {
            recorded: variant,
            active: active.to_string(),
        });
    }
    let mut guard = GEMM_CHOICES.lock().unwrap_or_else(|e| e.into_inner());
    let cache = guard.get_or_insert_with(HashMap::new);
    let mut installed = 0;
    for (key, choice) in entries {
        if cache.len() >= CACHE_CAP {
            break;
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = cache.entry(key) {
            slot.insert(choice);
            installed += 1;
        }
    }
    Ok(installed)
}

static LOADED_TUNER_PATHS: Mutex<Option<HashSet<PathBuf>>> = Mutex::new(None);

/// Idempotent [`load_choices`]: each path is loaded at most once per
/// process, so every shard spawn can pass the same `tuner_path` without
/// re-reading the file. Returns `Ok(None)` on an already-loaded path.
pub fn load_choices_once(path: &Path) -> Result<Option<usize>, TunerFileError> {
    {
        let mut guard = LOADED_TUNER_PATHS.lock().unwrap_or_else(|e| e.into_inner());
        let seen = guard.get_or_insert_with(HashSet::new);
        if !seen.insert(path.to_path_buf()) {
            return Ok(None);
        }
    }
    match load_choices(path) {
        Ok(n) => Ok(Some(n)),
        Err(e) => {
            // A failed load should not pin the path forever — a later
            // attempt (e.g. after the file is re-written) may succeed.
            let mut guard = LOADED_TUNER_PATHS.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(seen) = guard.as_mut() {
                seen.remove(path);
            }
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_returns_argmin_with_first_index_tiebreak() {
        let cands = ["a", "b", "c", "d"];
        let costs = [30u64, 10, 10, 40];
        let (w, best) = pick(&cands, 3, |c| {
            costs[cands.iter().position(|x| x == c).unwrap()]
        });
        assert_eq!(w, 1, "tie between b and c must resolve to b");
        assert_eq!(best, vec![30, 10, 10, 40]);
    }

    #[test]
    fn pick_scores_by_minimum_over_reps() {
        // Candidate 0 is noisy (one bad rep), candidate 1 is consistently
        // mediocre: the minimum rule must prefer 0.
        let mut calls = 0u64;
        let (w, best) = pick(&[0usize, 1], 2, |&c| {
            calls += 1;
            match (c, calls) {
                (0, 1) => 100,
                (0, 2) => 5,
                _ => 50,
            }
        });
        assert_eq!(w, 0);
        assert_eq!(best, vec![5, 50]);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn pick_rejects_empty() {
        let _ = pick::<u32>(&[], 1, |_| 0);
    }

    #[test]
    fn small_shapes_skip_measurement() {
        let mut measured = false;
        let choice = gemm_blocking_with(4, 4, 4, |_| {
            measured = true;
            1
        });
        assert!(!measured, "tiny shapes must not pay a probe");
        assert_eq!(choice, GemmBlocking::baseline());
    }

    #[test]
    fn choice_is_deterministic_given_measurements() {
        // A fixed (deterministic) cost model must produce the same choice
        // on every call — the second call additionally exercises the
        // cache-hit path.
        let shape = (64usize, 300usize, 2048usize);
        let model = |b: &GemmBlocking| 1000 + b.nc as u64 / 4 - b.mc_blocks as u64;
        let first = gemm_blocking_with(shape.0, shape.1, shape.2, model);
        let second = gemm_blocking_with(shape.0, shape.1, shape.2, model);
        assert_eq!(first, second);
        assert!(cached_gemm_choices() >= 1);
    }

    #[test]
    fn clamp_rounds_nc_to_strip_multiple() {
        let b = GemmBlocking {
            nc: 13,
            mc_blocks: 0,
        }
        .clamped();
        assert_eq!(b.nc, 16);
        assert_eq!(b.mc_blocks, 1);
    }

    fn tmp_file(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sesr-autotune-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn tuner_file_round_trips_choices() {
        // Seed a couple of distinct shapes through the injected-measurer
        // path, save, wipe nothing (the cache is process-global), and
        // verify the rendered body parses back to the same choices.
        let model = |b: &GemmBlocking| b.nc as u64;
        let a = gemm_blocking_with(96, 301, 2048, model);
        let b = gemm_blocking_with(96, 302, 2048, model);
        let path = tmp_file("roundtrip");
        let written = save_choices(&path).expect("save");
        assert!(written >= 2, "expected the seeded shapes in the file");
        let text = std::fs::read_to_string(&path).unwrap();
        let (variant, entries) = parse_choices(&text).expect("parse");
        assert_eq!(variant, crate::simd::kernel_variant().name());
        let map: GemmChoiceMap = entries.into_iter().collect();
        assert_eq!(map.get(&(96, 301, 2048)), Some(&a));
        assert_eq!(map.get(&(96, 302, 2048)), Some(&b));
        // Loading into the same process is a no-op install (entries
        // already cached locally) but must succeed.
        load_choices(&path).expect("load");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tuner_file_rejects_corruption_and_unknown_version() {
        let path = tmp_file("corrupt");
        save_choices(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();

        // Flip a body byte without fixing the checksum.
        let bad = good.replacen("variant", "varianx", 1);
        assert_eq!(parse_choices(&bad), Err(TunerFileError::BadChecksum));

        // Unknown version with a *valid* checksum must fail on magic.
        let body = good
            .replacen("sesr-tuner v1", "sesr-tuner v9", 1)
            .lines()
            .filter(|l| !l.starts_with("checksum "))
            .fold(String::new(), |mut s, l| {
                s.push_str(l);
                s.push('\n');
                s
            });
        let reversioned = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
        assert_eq!(parse_choices(&reversioned), Err(TunerFileError::BadMagic));

        // Truncation drops the checksum line entirely.
        let truncated: String = good.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert_eq!(parse_choices(&truncated), Err(TunerFileError::BadChecksum));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tuner_file_variant_mismatch_installs_nothing() {
        let body = format!("{TUNER_MAGIC}\nvariant not-a-real-variant\ngemm 8 8 4096 256 2\n");
        let text = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
        let path = tmp_file("mismatch");
        std::fs::write(&path, text).unwrap();
        let before = cached_gemm_choices();
        match load_choices(&path) {
            Err(TunerFileError::VariantMismatch { recorded, .. }) => {
                assert_eq!(recorded, "not-a-real-variant");
            }
            other => panic!("expected variant mismatch, got {other:?}"),
        }
        assert_eq!(cached_gemm_choices(), before, "mismatch must not install");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_choices_once_is_idempotent_per_path() {
        let path = tmp_file("once");
        save_choices(&path).unwrap();
        let first = load_choices_once(&path).expect("first load");
        assert!(first.is_some(), "first load must actually read the file");
        let second = load_choices_once(&path).expect("second load");
        assert_eq!(second, None, "second load of the same path is a no-op");
        let _ = std::fs::remove_file(&path);

        // A missing path errors and does NOT get pinned as loaded.
        let gone = tmp_file("never-written");
        assert!(matches!(
            load_choices_once(&gone),
            Err(TunerFileError::Io(_))
        ));
        assert!(matches!(
            load_choices_once(&gone),
            Err(TunerFileError::Io(_))
        ));
    }

    #[test]
    fn loaded_entries_are_clamped() {
        // A hand-edited file with out-of-range blocking must come back
        // clamped into the range the pack-scratch sizing supports.
        let body = format!(
            "{TUNER_MAGIC}\nvariant {}\ngemm 9 9 4096 13 0\n",
            crate::simd::kernel_variant().name()
        );
        let text = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
        let (_, entries) = parse_choices(&text).expect("parse");
        assert_eq!(
            entries,
            vec![(
                (9, 9, 4096),
                GemmBlocking {
                    nc: 16,
                    mc_blocks: 1
                }
            )]
        );
    }
}
