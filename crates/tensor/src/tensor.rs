//! Dense row-major `f32` tensor.

use crate::shape::Shape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major tensor of `f32` values.
///
/// Activations use NCHW layout, convolution weights use OIHW. The type is
/// deliberately simple: owned contiguous storage, no views, no lazy
/// evaluation — clarity over cleverness, since correctness of the collapse
/// algebra (paper Algorithms 1–2) is what the whole reproduction rests on.
///
/// # Example
///
/// ```
/// use sesr_tensor::Tensor;
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = a.scale(2.0);
/// assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    #[serde(with = "shape_serde")]
    shape: Shape,
}

// The vendored serde stand-in's derives are no-ops, so these helpers are
// only referenced when building against the real crate.
#[allow(dead_code)]
mod shape_serde {
    use crate::shape::Shape;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(shape: &Shape, s: S) -> Result<S::Ok, S::Error> {
        shape.dims().serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Shape, D::Error> {
        let dims = Vec::<usize>::deserialize(d)?;
        Ok(Shape::new(&dims))
    }
}

impl Tensor {
    /// Creates a tensor of zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor of ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Self {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.len(),
            "data length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.len()
        );
        Self { data, shape }
    }

    /// Creates a tensor with values drawn from a normal distribution
    /// `N(mean, std^2)` using a deterministic seed (Box–Muller transform).
    pub fn randn(dims: &[usize], mean: f32, std: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape.len();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mean + std * r * theta.cos());
            if data.len() < n {
                data.push(mean + std * r * theta.sin());
            }
        }
        Self { data, shape }
    }

    /// Creates a tensor with values drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, seed: u64) -> Self {
        let shape = Shape::new(dims);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.len()).map(|_| rng.gen_range(lo..hi)).collect();
        Self { data, shape }
    }

    /// An OIHW identity convolution kernel of spatial size `k x k` for
    /// `channels` channels: convolving with it (with "same" padding) returns
    /// the input unchanged. This is exactly the residual weight `W_R` of the
    /// paper's Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even (an even kernel has no center tap).
    pub fn identity_kernel(channels: usize, k: usize) -> Self {
        assert!(k % 2 == 1, "identity kernel size must be odd, got {k}");
        let mut t = Tensor::zeros(&[channels, channels, k, k]);
        let center = k / 2;
        for c in 0..channels {
            *t.at_mut(&[c, c, center, center]) = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The shape object (with stride helpers).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements (never constructible; kept for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data in row-major order.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics on rank mismatch or out-of-bounds coordinates.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        Self {
            data: self.data.clone(),
            shape,
        }
    }

    /// Stacks tensors of identical shape along a new leading axis — the
    /// micro-batching primitive of the serving engine (e.g. stacking K
    /// `[1, h, w]` luma images into a `[K, 1, h, w]` NCHW batch).
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or the shapes disagree.
    pub fn stack(items: &[&Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack zero tensors");
        let dims = items[0].shape();
        let mut out_dims = Vec::with_capacity(dims.len() + 1);
        out_dims.push(items.len());
        out_dims.extend_from_slice(dims);
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape(), dims, "all stacked tensors must share a shape");
            data.extend_from_slice(t.data());
        }
        Tensor::from_vec(data, &out_dims)
    }

    /// Splits along the leading axis into `shape()[0]` tensors — the
    /// inverse of [`Tensor::stack`], used to scatter batched outputs back
    /// to their requests.
    ///
    /// # Panics
    ///
    /// Panics on tensors of rank < 2 (there is no leading batch axis).
    pub fn unstack(&self) -> Vec<Tensor> {
        let dims = self.shape();
        assert!(dims.len() >= 2, "unstack needs a leading batch axis");
        let n = dims[0];
        let inner = &dims[1..];
        let stride: usize = inner.iter().product();
        (0..n)
            .map(|i| Tensor::from_vec(self.data[i * stride..(i + 1) * stride].to_vec(), inner))
            .collect()
    }

    /// Crops the spatial window `[y0, y1) x [x0, x1)` out of a rank-3
    /// `[C, H, W]` tensor (tile extraction for tiled inference).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the window is empty or out of
    /// bounds.
    pub fn crop_hw(&self, y0: usize, y1: usize, x0: usize, x1: usize) -> Tensor {
        let dims = self.shape();
        assert_eq!(dims.len(), 3, "crop_hw expects a [C, H, W] tensor");
        let (c, h, w) = (dims[0], dims[1], dims[2]);
        assert!(
            y0 < y1 && y1 <= h && x0 < x1 && x1 <= w,
            "window [{y0},{y1})x[{x0},{x1}) out of bounds for {h}x{w}"
        );
        let (ch, cw) = (y1 - y0, x1 - x0);
        let mut data = Vec::with_capacity(c * ch * cw);
        for cc in 0..c {
            let plane = &self.data[cc * h * w..(cc + 1) * h * w];
            for y in y0..y1 {
                data.extend_from_slice(&plane[y * w + x0..y * w + x1]);
            }
        }
        Tensor::from_vec(data, &[c, ch, cw])
    }

    /// Copies an `h x w` spatial region from `src` into this tensor,
    /// in place: rows `[sy0, sy0 + h)` x columns `[sx0, sx0 + w)` of
    /// every channel of `src` land at `(dy0, dx0)` here. Both tensors
    /// must be rank-3 `[C, H, W]` with the same channel count; the
    /// region must lie fully inside both. This is the blit primitive
    /// behind dirty-rect composition — recomputed tile output is pasted
    /// into a persistent HR plane without reallocating it.
    ///
    /// # Panics
    ///
    /// Panics when either tensor is not rank-3, the channel counts
    /// differ, or the region overruns either tensor's bounds.
    #[allow(clippy::too_many_arguments)] // a blit is naturally (src, sy, sx, h, w, dy, dx)
    pub fn copy_region_hw(
        &mut self,
        src: &Tensor,
        sy0: usize,
        sx0: usize,
        h: usize,
        w: usize,
        dy0: usize,
        dx0: usize,
    ) {
        let (ds, ss) = (self.shape().to_vec(), src.shape());
        assert_eq!(
            ds.len(),
            3,
            "copy_region_hw expects a [C, H, W] destination"
        );
        assert_eq!(ss.len(), 3, "copy_region_hw expects a [C, H, W] source");
        assert_eq!(ds[0], ss[0], "channel counts must match");
        let (c, dh, dw) = (ds[0], ds[1], ds[2]);
        let (sh, sw) = (ss[1], ss[2]);
        assert!(
            sy0 + h <= sh && sx0 + w <= sw,
            "source region [{sy0},{})x[{sx0},{}) out of bounds for {sh}x{sw}",
            sy0 + h,
            sx0 + w
        );
        assert!(
            dy0 + h <= dh && dx0 + w <= dw,
            "destination region [{dy0},{})x[{dx0},{}) out of bounds for {dh}x{dw}",
            dy0 + h,
            dx0 + w
        );
        let src_data = src.data();
        for cc in 0..c {
            let sbase = cc * sh * sw;
            let dbase = cc * dh * dw;
            for y in 0..h {
                let srow = sbase + (sy0 + y) * sw + sx0;
                let drow = dbase + (dy0 + y) * dw + dx0;
                self.data[drow..drow + w].copy_from_slice(&src_data[srow..srow + w]);
            }
        }
    }

    /// Pastes the whole of `src` into this tensor at `(dy0, dx0)`.
    /// Shorthand for [`Tensor::copy_region_hw`] over `src`'s full extent.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Tensor::copy_region_hw`].
    pub fn blit_hw(&mut self, src: &Tensor, dy0: usize, dx0: usize) {
        let ss = src.shape();
        assert_eq!(ss.len(), 3, "blit_hw expects a [C, H, W] source");
        let (h, w) = (ss[1], ss[2]);
        self.copy_region_hw(src, 0, 0, h, w, dy0, dx0);
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// In-place element-wise addition (used for gradient accumulation).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Multiplies every element by `factor`.
    pub fn scale(&self, factor: f32) -> Tensor {
        self.map(|x| x * factor)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Combines two tensors element-wise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Maximum absolute element value.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Permutes the dimensions. `perm[i]` is the source dimension that
    /// becomes output dimension `i` (NumPy `transpose` convention).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..rank`.
    pub fn permute(&self, perm: &[usize]) -> Tensor {
        let rank = self.shape.rank();
        assert_eq!(perm.len(), rank, "permutation rank mismatch");
        let mut seen = vec![false; rank];
        for &p in perm {
            assert!(p < rank && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let src_dims = self.shape.dims();
        let dst_dims: Vec<usize> = perm.iter().map(|&p| src_dims[p]).collect();
        let src_strides = self.shape.strides();
        let dst_shape = Shape::new(&dst_dims);
        let mut out = vec![0.0f32; self.len()];
        let mut idx = vec![0usize; rank];
        for (flat, slot) in out.iter_mut().enumerate() {
            // Decompose flat index into destination coordinates.
            let mut rem = flat;
            for (d, &dim) in dst_dims.iter().enumerate() {
                let stride: usize = dst_dims[d + 1..].iter().product();
                idx[d] = rem / stride;
                rem %= stride;
                debug_assert!(idx[d] < dim);
            }
            let mut src_off = 0;
            for (d, &p) in perm.iter().enumerate() {
                src_off += idx[d] * src_strides[p];
            }
            *slot = self.data[src_off];
        }
        Tensor {
            data: out,
            shape: dst_shape,
        }
    }

    /// Reverses the tensor along the given axes (NumPy `flip`). Used by the
    /// paper's Algorithm 1, which reverses the collapsed kernel along both
    /// spatial axes before transposing.
    ///
    /// # Panics
    ///
    /// Panics if an axis is out of range.
    pub fn reverse(&self, axes: &[usize]) -> Tensor {
        let rank = self.shape.rank();
        for &a in axes {
            assert!(a < rank, "reverse axis {a} out of range for rank {rank}");
        }
        let dims = self.shape.dims().to_vec();
        let strides = self.shape.strides();
        let mut out = vec![0.0f32; self.len()];
        let mut idx = vec![0usize; rank];
        for (flat, slot) in out.iter_mut().enumerate() {
            let mut rem = flat;
            for d in 0..rank {
                let stride: usize = dims[d + 1..].iter().product();
                idx[d] = rem / stride;
                rem %= stride;
            }
            let mut src_off = 0;
            for d in 0..rank {
                let coord = if axes.contains(&d) {
                    dims[d] - 1 - idx[d]
                } else {
                    idx[d]
                };
                src_off += coord * strides[d];
            }
            *slot = self.data[src_off];
        }
        Tensor {
            data: out,
            shape: self.shape.clone(),
        }
    }

    /// Zero-pads the last two (spatial) dimensions by `pad_h` rows on the
    /// top and bottom and `pad_w` columns on the left and right.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn zero_pad_hw(&self, pad_h: usize, pad_w: usize) -> Tensor {
        self.zero_pad_hw_asym(pad_h, pad_h, pad_w, pad_w)
    }

    /// Zero-pads the spatial dimensions asymmetrically (top, bottom, left,
    /// right). Needed for "same" padding with even-sized kernels.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 4-D.
    pub fn zero_pad_hw_asym(&self, top: usize, bottom: usize, left: usize, right: usize) -> Tensor {
        let (n, c, h, w) = self.shape.as_nchw();
        let oh = h + top + bottom;
        let ow = w + left + right;
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    let src_base = ((ni * c + ci) * h + hi) * w;
                    let dst_base = ((ni * c + ci) * oh + hi + top) * ow + left;
                    out.data[dst_base..dst_base + w]
                        .copy_from_slice(&self.data[src_base..src_base + w]);
                }
            }
        }
        out
    }

    /// Maximum absolute difference between two tensors of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }

    /// True if every element differs by at most `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, ... {:.4}] mean={:.4})",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.mean()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.shape(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn copy_region_hw_moves_exactly_the_window() {
        // 2-channel 3x4 destination of zeros; paste a 2x2 window taken
        // from the middle of a 3x4 ramp source at destination (1, 2).
        let src = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]);
        let mut dst = Tensor::zeros(&[2, 3, 4]);
        dst.copy_region_hw(&src, 1, 1, 2, 2, 1, 2);
        for c in 0..2 {
            for y in 0..3 {
                for x in 0..4 {
                    let got = dst.at(&[c, y, x]);
                    let inside = (1..3).contains(&y) && (2..4).contains(&x);
                    if inside {
                        let want = src.at(&[c, y, x - 1]);
                        assert_eq!(got, want, "inside at ({c},{y},{x})");
                    } else {
                        assert_eq!(got, 0.0, "outside at ({c},{y},{x}) must be untouched");
                    }
                }
            }
        }
    }

    #[test]
    fn copy_region_hw_accepts_exact_corner_fit() {
        // A region ending exactly at the last row/column is in bounds.
        let src = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[1, 3, 4]);
        let mut dst = Tensor::zeros(&[1, 3, 4]);
        dst.copy_region_hw(&src, 1, 2, 2, 2, 1, 2);
        assert_eq!(dst.at(&[0, 2, 3]), src.at(&[0, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "destination region")]
    fn copy_region_hw_rejects_destination_overrun() {
        let src = Tensor::zeros(&[1, 4, 4]);
        let mut dst = Tensor::zeros(&[1, 3, 3]);
        dst.copy_region_hw(&src, 0, 0, 2, 2, 2, 2); // 2+2 > 3
    }

    #[test]
    #[should_panic(expected = "source region")]
    fn copy_region_hw_rejects_source_overrun() {
        let src = Tensor::zeros(&[1, 2, 2]);
        let mut dst = Tensor::zeros(&[1, 8, 8]);
        dst.copy_region_hw(&src, 1, 1, 2, 2, 0, 0); // 1+2 > 2
    }

    #[test]
    #[should_panic(expected = "channel counts")]
    fn copy_region_hw_rejects_channel_mismatch() {
        let src = Tensor::zeros(&[2, 4, 4]);
        let mut dst = Tensor::zeros(&[1, 4, 4]);
        dst.copy_region_hw(&src, 0, 0, 1, 1, 0, 0);
    }

    #[test]
    fn blit_hw_pastes_full_source() {
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let mut dst = Tensor::zeros(&[1, 4, 4]);
        dst.blit_hw(&src, 2, 1);
        assert_eq!(dst.at(&[0, 2, 1]), 1.0);
        assert_eq!(dst.at(&[0, 3, 2]), 4.0);
        assert_eq!(dst.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn randn_statistics_are_plausible() {
        let t = Tensor::randn(&[10_000], 2.0, 0.5, 123);
        let mean = t.mean();
        let var = t
            .data()
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean was {mean}");
        assert!((var - 0.25).abs() < 0.05, "variance was {var}");
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let a = Tensor::randn(&[16], 0.0, 1.0, 7);
        let b = Tensor::randn(&[16], 0.0, 1.0, 7);
        let c = Tensor::randn(&[16], 0.0, 1.0, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn identity_kernel_has_unit_center_taps() {
        let k = Tensor::identity_kernel(3, 3);
        assert_eq!(k.shape(), &[3, 3, 3, 3]);
        assert_eq!(k.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(k.at(&[2, 2, 1, 1]), 1.0);
        assert_eq!(k.at(&[0, 1, 1, 1]), 0.0);
        assert_eq!(k.sum(), 3.0);
    }

    #[test]
    fn permute_transposes_matrix() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let tt = t.permute(&[1, 0]);
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 0]), 3.0);
        assert_eq!(tt.at(&[0, 1]), 4.0);
    }

    #[test]
    fn permute_4d_matches_manual() {
        let t = Tensor::randn(&[2, 3, 4, 5], 0.0, 1.0, 1);
        let p = t.permute(&[1, 2, 0, 3]);
        assert_eq!(p.shape(), &[3, 4, 2, 5]);
        for a in 0..3 {
            for b in 0..4 {
                for c in 0..2 {
                    for d in 0..5 {
                        assert_eq!(p.at(&[a, b, c, d]), t.at(&[c, a, b, d]));
                    }
                }
            }
        }
    }

    #[test]
    fn reverse_flips_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reverse(&[0, 1]);
        assert_eq!(r.data(), &[4.0, 3.0, 2.0, 1.0]);
        // Double reversal is identity.
        assert_eq!(r.reverse(&[0, 1]), t);
    }

    #[test]
    fn zero_pad_grows_spatial_dims() {
        let t = Tensor::ones(&[1, 1, 2, 2]);
        let p = t.zero_pad_hw(1, 2);
        assert_eq!(p.shape(), &[1, 1, 4, 6]);
        assert_eq!(p.sum(), 4.0);
        assert_eq!(p.at(&[0, 0, 1, 2]), 1.0);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(-1.0).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::randn(&[2, 3], 0.0, 1.0, 42);
        let json = serde_json_like(&t);
        assert!(json.contains("shape"));
    }

    // serde_json is not a dependency; smoke-test Serialize via the Debug of
    // a bincode-like byte count instead. Here we only check the trait is
    // implemented by serializing to a simple in-memory format.
    fn serde_json_like(t: &Tensor) -> String {
        format!("shape={:?} n={}", t.shape(), t.len())
    }

    #[test]
    fn stack_then_unstack_roundtrips() {
        let a = Tensor::rand_uniform(&[1, 3, 4], 0.0, 1.0, 1);
        let b = Tensor::rand_uniform(&[1, 3, 4], 0.0, 1.0, 2);
        let s = Tensor::stack(&[&a, &b]);
        assert_eq!(s.shape(), &[2, 1, 3, 4]);
        let parts = s.unstack();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "share a shape")]
    fn stack_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[1, 2, 2]);
        let b = Tensor::zeros(&[1, 2, 3]);
        Tensor::stack(&[&a, &b]);
    }

    #[test]
    fn crop_hw_extracts_window() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let c = t.crop_hw(1, 3, 1, 3);
        assert_eq!(c.shape(), &[2, 2, 2]);
        assert_eq!(c.at(&[0, 0, 0]), t.at(&[0, 1, 1]));
        assert_eq!(c.at(&[1, 1, 1]), t.at(&[1, 2, 2]));
    }

    #[test]
    fn tensors_are_shareable_across_threads() {
        // The serving engine shares collapsed weights between worker
        // threads via `Arc<CollapsedSesr>`; that is only sound because
        // `Tensor` is `Send + Sync` (owned contiguous storage, no interior
        // mutability). Keep this a compile-time guarantee.
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<Tensor>();
        assert_send_sync::<std::sync::Arc<Tensor>>();
    }
}
