//! Runtime-dispatched CPU microkernels: scalar, AVX2, and AVX2+FMA.
//!
//! Every hot inner loop of the planned executor — the packed GEMM's 8x8
//! register tile, the direct convolution's tap-accumulate, the Winograd
//! `F(2x2, 3x3)` transforms and channel reduction, and the fused epilogue
//! row passes — dispatches through one [`Microkernel`] trait object picked
//! at runtime with `is_x86_feature_detected!`. Three x86 variants exist:
//!
//! * [`KernelVariant::Scalar`] — the reference implementation; plain Rust
//!   with no intrinsics, auto-vectorized by the compiler. Always available.
//! * [`KernelVariant::Avx2`] — explicit 8-lane `std::arch` intrinsics with
//!   *separate* multiply and add. Rust never enables floating-point
//!   contraction, so `mul` + `add` round twice exactly like the scalar
//!   code: this variant is **bit-identical to `Scalar`** on every input
//!   (the identity proptests assert it).
//! * [`KernelVariant::Avx2Fma`] — same lane structure with single-rounding
//!   `fmadd`. Output bits *differ* from `Scalar`/`Avx2` (they are more
//!   accurate), but the variant is self-consistent: every multiply-add in
//!   both the planned and the reference path funnels through this module,
//!   so planned-vs-reference and 1-vs-N-thread bit identity hold *within*
//!   the variant. Scalar remainder lanes use [`f32::mul_add`], which the
//!   probe tests prove bit-equal to `vfmadd`.
//!
//! [`KernelVariant::Neon`] names the aarch64 slot behind the same trait;
//! its implementation is currently a guarded stub that executes the scalar
//! ops (structured so 4-lane intrinsics can drop in without touching call
//! sites). On aarch64 it is detected as the default so the dispatch layer
//! is exercised.
//!
//! The operations with no multiply-add pairs — the Winograd input/output
//! transforms (pure add/sub) and the epilogue rows (`+bias`, ReLU/PReLU,
//! residual adds) — are bit-identical across *all* variants: vectorizing
//! changes which lane computes an element, never the operand pair. The
//! one subtle case is ReLU: `_mm256_max_ps(t, +0.0)` with the zero in the
//! second operand returns `+0.0` for `t ∈ {-0.0, +0.0, NaN}` exactly like
//! `f32::max(t, 0.0)` (unit-tested below).
//!
//! The process default is chosen once by [`kernel_variant`] and can be
//! overridden with [`set_kernel_variant`] (benches align the global to a
//! plan's tuned variant before running the reference oracle). Building
//! with `--features force-scalar` pins the scalar path: detection reports
//! only `Scalar` and overrides are clamped to it, so a CI leg can prove
//! the non-SIMD path end to end.

use std::sync::atomic::{AtomicU8, Ordering};

/// Identifies one microkernel implementation. The variant is part of the
/// *numeric contract*: all kernels run under the same variant produce
/// outputs that are reproducible bit-for-bit across thread counts and
/// across the planned/reference executors; `Avx2Fma` outputs differ from
/// the two-rounding variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Plain Rust, no intrinsics. Always available; pinned by the
    /// `force-scalar` cargo feature.
    Scalar,
    /// AVX2 intrinsics, separate multiply and add (bit-identical to
    /// `Scalar`).
    Avx2,
    /// AVX2 + FMA intrinsics, single-rounding multiply-add.
    Avx2Fma,
    /// aarch64 NEON slot (currently a scalar-op stub behind the trait).
    Neon,
}

impl KernelVariant {
    /// Stable lowercase name, used in telemetry, bench JSON, and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Avx2 => "avx2",
            KernelVariant::Avx2Fma => "avx2fma",
            KernelVariant::Neon => "neon",
        }
    }

    /// Parses [`KernelVariant::name`] output (CLI `--variant` flag).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(KernelVariant::Scalar),
            "avx2" => Some(KernelVariant::Avx2),
            "avx2fma" => Some(KernelVariant::Avx2Fma),
            "neon" => Some(KernelVariant::Neon),
            _ => None,
        }
    }

    /// Whether this variant's kernels can run on the current CPU (and are
    /// not pinned away by `force-scalar`).
    pub fn available(self) -> bool {
        detected_variants().contains(&self)
    }

    /// Whether the variant fuses multiply-add (single rounding). Variants
    /// that do NOT fuse are bit-identical to `Scalar`; variants that do
    /// are only self-consistent.
    pub fn fused_madd(self) -> bool {
        matches!(self, KernelVariant::Avx2Fma)
    }

    fn to_u8(self) -> u8 {
        match self {
            KernelVariant::Scalar => 0,
            KernelVariant::Avx2 => 1,
            KernelVariant::Avx2Fma => 2,
            KernelVariant::Neon => 3,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => KernelVariant::Avx2,
            2 => KernelVariant::Avx2Fma,
            3 => KernelVariant::Neon,
            _ => KernelVariant::Scalar,
        }
    }
}

/// The variants usable on this CPU, scalar first, fastest-candidate last.
/// Under `--features force-scalar` this is exactly `[Scalar]`. The list
/// (not just the best pick) is public so autotuners can enumerate
/// candidates deterministically.
pub fn detected_variants() -> &'static [KernelVariant] {
    if cfg!(feature = "force-scalar") {
        return &[KernelVariant::Scalar];
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            if is_x86_feature_detected!("fma") {
                return &[
                    KernelVariant::Scalar,
                    KernelVariant::Avx2,
                    KernelVariant::Avx2Fma,
                ];
            }
            return &[KernelVariant::Scalar, KernelVariant::Avx2];
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return &[KernelVariant::Scalar, KernelVariant::Neon];
    }
    #[allow(unreachable_code)]
    &[KernelVariant::Scalar]
}

/// Sentinel meaning "not chosen yet" in [`GLOBAL_VARIANT`].
const VARIANT_UNSET: u8 = u8::MAX;

/// Process-wide default variant, `VARIANT_UNSET` until first use.
static GLOBAL_VARIANT: AtomicU8 = AtomicU8::new(VARIANT_UNSET);

/// The process-default kernel variant: the last detected variant (the
/// fastest candidate) on first call, or whatever [`set_kernel_variant`]
/// pinned. Everything that does not carry an explicit variant — the
/// packed GEMM, the reference Winograd — reads this, which is what keeps
/// the reference and planned executors on the same arithmetic.
pub fn kernel_variant() -> KernelVariant {
    let raw = GLOBAL_VARIANT.load(Ordering::Relaxed);
    if raw != VARIANT_UNSET {
        return KernelVariant::from_u8(raw);
    }
    let v = *detected_variants().last().expect("scalar always present");
    // Racing first calls write the same detected value; either wins.
    GLOBAL_VARIANT.store(v.to_u8(), Ordering::Relaxed);
    v
}

/// Overrides the process-default variant, returning the previous value
/// (restore it when done — benches align the global to a tuned plan's
/// variant around a reference run). Requests for an unavailable variant
/// (or any non-scalar variant under `force-scalar`) degrade to the best
/// available one.
pub fn set_kernel_variant(v: KernelVariant) -> KernelVariant {
    let prev = kernel_variant();
    let eff = if v.available() {
        v
    } else {
        *detected_variants().last().expect("scalar always present")
    };
    GLOBAL_VARIANT.store(eff.to_u8(), Ordering::Relaxed);
    prev
}

/// Per-channel activation applied by [`Microkernel::bias_act_row`],
/// mirroring the planner's `ActKind` with the slope flattened to the one
/// channel the row belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowAct {
    /// No activation.
    Linear,
    /// `max(t, 0.0)`.
    Relu,
    /// `if t >= 0 { t } else { slope * t }`.
    PRelu(f32),
}

/// The microkernel surface: every hot per-element loop of the GEMM, the
/// direct convolution, the Winograd pipeline, and the fused epilogues.
///
/// Implementations must preserve the per-element *operand order* of the
/// scalar reference (taps in ascending k, channels in ascending c, the
/// epilogue op sequence) — lane assignment is free, association is not.
/// That is what makes `Avx2` bit-identical to `Scalar` and `Avx2Fma`
/// self-consistent.
pub trait Microkernel: Sync {
    /// Which variant this implementation realizes.
    fn variant(&self) -> KernelVariant;

    /// Rank-1-update GEMM register tile: `acc[i][j] += sum_p apanel[p*8+i]
    /// * bstrip[p*8+j]` with `p` ascending. Panels are packed p-major,
    /// 8-wide, `>= kc * 8` floats each.
    fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]);

    /// `acc[x] += c * src[x]`. Slices must be equal length.
    fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32);

    /// Multi-tap axpy: for each `x`, applies `acc[x] += ws[t] * segs[t][x]`
    /// for `t` ascending — the same per-element chain as `ws.len()`
    /// successive [`Microkernel::axpy`] calls, but with the accumulator
    /// kept in registers across taps (the direct convolution's hot loop).
    /// Every `segs[t]` must be at least `acc.len()` long.
    fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]);

    /// Winograd `Bᵀ d B` on one 4x4 tile. Pure add/sub: bit-identical
    /// across all variants.
    fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16];

    /// Winograd `Aᵀ m A`, producing the 2x2 output tile. Pure add/sub.
    fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4];

    /// [`Microkernel::wino_input_transform`] over `cin` consecutive tiles:
    /// `v_slab[cc*16..] = BᵀdB(d_slab[cc*16..])`. One virtual call per
    /// tile *set* instead of per tile — the default body is monomorphized
    /// per implementation, so the inner per-tile calls dispatch
    /// statically. Both slabs must hold `cin * 16` floats.
    fn wino_input_transform_many(&self, d_slab: &[f32], v_slab: &mut [f32], cin: usize) {
        for cc in 0..cin {
            let d: &[f32; 16] = d_slab[cc * 16..cc * 16 + 16]
                .try_into()
                .expect("16-element tile");
            v_slab[cc * 16..cc * 16 + 16].copy_from_slice(&self.wino_input_transform(d));
        }
    }

    /// [`Microkernel::wino_output_transform`] over `cout` consecutive
    /// tiles: `y_slab[oo*4..] = AᵀmA(m_slab[oo*16..])`. Same batching
    /// rationale as [`Microkernel::wino_input_transform_many`].
    fn wino_output_transform_many(&self, m_slab: &[f32], y_slab: &mut [f32], cout: usize) {
        for oo in 0..cout {
            let m: &[f32; 16] = m_slab[oo * 16..oo * 16 + 16]
                .try_into()
                .expect("16-element tile");
            y_slab[oo * 4..oo * 4 + 4].copy_from_slice(&self.wino_output_transform(m));
        }
    }

    /// Fused gather + input transform for an *interior* tile: reads the
    /// 4x4 window whose top-left element sits at `base` (rows `stride`
    /// apart) of each `plane_len`-float channel plane in `src`, and
    /// writes the transformed tile to `v_slab[cc*16..]` — no staging
    /// copy. Bit-identical to gathering into a d-tile first (the
    /// transform is pure add/sub). The window must be fully in bounds
    /// for every channel: `(cin-1)*plane_len + base + 3*stride + 4 <=
    /// src.len()`, and `v_slab` must hold `cin * 16` floats.
    fn wino_input_transform_interior(
        &self,
        src: &[f32],
        plane_len: usize,
        base: usize,
        stride: usize,
        v_slab: &mut [f32],
        cin: usize,
    ) {
        for cc in 0..cin {
            let plane = &src[cc * plane_len..];
            let mut d = [0.0f32; 16];
            for dy in 0..4 {
                d[4 * dy..4 * dy + 4].copy_from_slice(&plane[base + dy * stride..][..4]);
            }
            v_slab[cc * 16..cc * 16 + 16].copy_from_slice(&self.wino_input_transform(&d));
        }
    }

    /// The Winograd channel reduction: for each output channel `oo`,
    /// `m_slab[oo*16 + k] = sum_cc u[oo*cin + cc][k] * v_slab[cc*16 + k]`
    /// with `cc` ascending. `m_slab` is `cout * 16`, `v_slab` is
    /// `cin * 16`, `u` holds at least `cout * cin` tiles.
    fn wino_channel_reduce(
        &self,
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    );

    /// Fused epilogue head: `row[x] = act(row[x] + bias)`. Bit-identical
    /// across variants (no multiply-add pairs).
    fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct);

    /// Residual add: `row[x] += other[x]`. Equal lengths.
    fn add_row(&self, row: &mut [f32], other: &[f32]);

    /// Doubled write (degenerate 2-layer feature residual): `row[x] +=
    /// row[x]`.
    fn double_row(&self, row: &mut [f32]);
}

/// The implementation for `v`, falling back to the best available variant
/// when `v` cannot run here (wrong arch, missing CPU features, or pinned
/// by `force-scalar`). The returned reference is `'static`: hoist it out
/// of loops and reuse it freely.
pub fn microkernel(v: KernelVariant) -> &'static dyn Microkernel {
    let eff = if v.available() {
        v
    } else {
        *detected_variants().last().expect("scalar always present")
    };
    match eff {
        KernelVariant::Scalar => &ScalarKernel,
        #[cfg(target_arch = "x86_64")]
        KernelVariant::Avx2 => &Avx2Kernel,
        #[cfg(target_arch = "x86_64")]
        KernelVariant::Avx2Fma => &Avx2FmaKernel,
        #[cfg(target_arch = "aarch64")]
        KernelVariant::Neon => &NeonKernel,
        #[allow(unreachable_patterns)]
        _ => &ScalarKernel,
    }
}

/// Shorthand for `microkernel(kernel_variant())`.
pub fn default_microkernel() -> &'static dyn Microkernel {
    microkernel(kernel_variant())
}

/// Serializes tests that mutate the process-global variant against tests
/// whose assertions compare bitwise outputs of repeated kernel calls (a
/// mid-test variant flip would make those flaky). Test support only; not
/// part of the public API.
#[doc(hidden)]
pub fn variant_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Scalar reference implementation
// ---------------------------------------------------------------------------

/// Scalar ops shared by [`ScalarKernel`], the NEON stub, and the SIMD
/// variants' remainder lanes. These are the bit-exact reference: the GEMM
/// tile matches `gemm.rs`'s historic microkernel, the epilogue ops match
/// the planner's unfused `emit_row`, and `axpy` matches the direct
/// convolution's historic tap loop.
mod scalar {
    use super::RowAct;

    pub fn gemm_8x8(apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
        for p in 0..kc {
            let av: &[f32; 8] = apanel[p * 8..p * 8 + 8].try_into().expect("panel row");
            let bv: &[f32; 8] = bstrip[p * 8..p * 8 + 8].try_into().expect("strip row");
            for (accrow, &aval) in acc.iter_mut().zip(av.iter()) {
                for (slot, &bval) in accrow.iter_mut().zip(bv.iter()) {
                    *slot += aval * bval;
                }
            }
        }
    }

    pub fn axpy(acc: &mut [f32], src: &[f32], c: f32) {
        for (a, &v) in acc.iter_mut().zip(src) {
            *a += c * v;
        }
    }

    pub fn axpy_taps(acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
        for (&c, seg) in ws.iter().zip(segs) {
            axpy(acc, &seg[..acc.len()], c);
        }
    }

    pub fn wino_channel_reduce(
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    ) {
        for oo in 0..cout {
            let mut m = [0.0f32; 16];
            for cc in 0..cin {
                let ut = &u[oo * cin + cc];
                let vc = &v_slab[cc * 16..cc * 16 + 16];
                for k in 0..16 {
                    m[k] += ut[k] * vc[k];
                }
            }
            m_slab[oo * 16..oo * 16 + 16].copy_from_slice(&m);
        }
    }

    pub fn bias_act_row(row: &mut [f32], bias: f32, act: RowAct) {
        match act {
            RowAct::Linear => {
                for v in row.iter_mut() {
                    *v += bias;
                }
            }
            RowAct::Relu => {
                for v in row.iter_mut() {
                    *v = (*v + bias).max(0.0);
                }
            }
            RowAct::PRelu(al) => {
                for v in row.iter_mut() {
                    let t = *v + bias;
                    *v = if t >= 0.0 { t } else { al * t };
                }
            }
        }
    }

    pub fn add_row(row: &mut [f32], other: &[f32]) {
        for (v, &o) in row.iter_mut().zip(other) {
            *v += o;
        }
    }

    pub fn double_row(row: &mut [f32]) {
        for v in row.iter_mut() {
            *v += *v;
        }
    }
}

/// [`KernelVariant::Scalar`]: the always-available reference.
struct ScalarKernel;

impl Microkernel for ScalarKernel {
    fn variant(&self) -> KernelVariant {
        KernelVariant::Scalar
    }

    fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
        scalar::gemm_8x8(apanel, bstrip, kc, acc)
    }

    fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32) {
        scalar::axpy(acc, src, c)
    }

    fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
        scalar::axpy_taps(acc, ws, segs)
    }

    fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16] {
        crate::winograd::input_transform(d)
    }

    fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4] {
        crate::winograd::output_transform(m)
    }

    fn wino_channel_reduce(
        &self,
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    ) {
        scalar::wino_channel_reduce(m_slab, u, v_slab, cout, cin)
    }

    fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct) {
        scalar::bias_act_row(row, bias, act)
    }

    fn add_row(&self, row: &mut [f32], other: &[f32]) {
        scalar::add_row(row, other)
    }

    fn double_row(&self, row: &mut [f32]) {
        scalar::double_row(row)
    }
}

/// [`KernelVariant::Neon`]: aarch64 slot. The trait plumbing, detection
/// order, and tests are arch-neutral; the bodies currently execute the
/// scalar ops (bit-identical by construction) until 4-lane intrinsics
/// land. Kept cfg-gated so x86 builds cannot reference it by accident.
#[cfg(target_arch = "aarch64")]
struct NeonKernel;

#[cfg(target_arch = "aarch64")]
impl Microkernel for NeonKernel {
    fn variant(&self) -> KernelVariant {
        KernelVariant::Neon
    }

    fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
        scalar::gemm_8x8(apanel, bstrip, kc, acc)
    }

    fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32) {
        scalar::axpy(acc, src, c)
    }

    fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
        scalar::axpy_taps(acc, ws, segs)
    }

    fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16] {
        crate::winograd::input_transform(d)
    }

    fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4] {
        crate::winograd::output_transform(m)
    }

    fn wino_channel_reduce(
        &self,
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    ) {
        scalar::wino_channel_reduce(m_slab, u, v_slab, cout, cin)
    }

    fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct) {
        scalar::bias_act_row(row, bias, act)
    }

    fn add_row(&self, row: &mut [f32], other: &[f32]) {
        scalar::add_row(row, other)
    }

    fn double_row(&self, row: &mut [f32]) {
        scalar::double_row(row)
    }
}

// ---------------------------------------------------------------------------
// x86-64 AVX2 / AVX2+FMA implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::scalar;
    use super::RowAct;
    use std::arch::x86_64::*;

    /// Two-rounding multiply-add lane op, shared with the remainder
    /// helpers below so the non-FMA variant is bit-identical to scalar.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn madd_two_round(a: __m256, b: __m256, c: __m256) -> __m256 {
        _mm256_add_ps(c, _mm256_mul_ps(a, b))
    }

    /// Single-rounding fused multiply-add lane op.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 and FMA support.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn madd_fused(a: __m256, b: __m256, c: __m256) -> __m256 {
        _mm256_fmadd_ps(a, b, c)
    }

    /// Generates the arithmetic kernel set once per madd flavor. `$madd`
    /// is the 8-lane multiply-add and `$smadd` its scalar-remainder twin;
    /// the pair must round identically (`mul`+`add` / `f32::mul_add`, as
    /// probe-tested) so remainder columns match their vector lanes'
    /// variant semantics.
    macro_rules! madd_kernels {
        ($modname:ident, $feat:literal, $madd:path, $smadd:expr) => {
            pub mod $modname {
                use super::*;

                /// 8x8 register-tile GEMM update (see the trait doc).
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features, and
                /// `apanel`/`bstrip` must hold at least `kc * 8` floats.
                #[target_feature(enable = $feat)]
                pub unsafe fn gemm_8x8(
                    apanel: &[f32],
                    bstrip: &[f32],
                    kc: usize,
                    acc: &mut [[f32; 8]; 8],
                ) {
                    debug_assert!(apanel.len() >= kc * 8 && bstrip.len() >= kc * 8);
                    let ap = apanel.as_ptr();
                    let bp = bstrip.as_ptr();
                    // SAFETY: acc rows are contiguous [f32; 8]; loads and
                    // the final stores stay inside the 8x8 array.
                    unsafe {
                        let mut c: [__m256; 8] = [
                            _mm256_loadu_ps(acc[0].as_ptr()),
                            _mm256_loadu_ps(acc[1].as_ptr()),
                            _mm256_loadu_ps(acc[2].as_ptr()),
                            _mm256_loadu_ps(acc[3].as_ptr()),
                            _mm256_loadu_ps(acc[4].as_ptr()),
                            _mm256_loadu_ps(acc[5].as_ptr()),
                            _mm256_loadu_ps(acc[6].as_ptr()),
                            _mm256_loadu_ps(acc[7].as_ptr()),
                        ];
                        // SAFETY: p < kc, so the 8-float rows at p*8 are in
                        // bounds per this function's length contract.
                        for p in 0..kc {
                            let bv = _mm256_loadu_ps(bp.add(p * 8));
                            let arow = ap.add(p * 8);
                            for (i, ci) in c.iter_mut().enumerate() {
                                let av = _mm256_broadcast_ss(&*arow.add(i));
                                *ci = $madd(av, bv, *ci);
                            }
                        }
                        for (i, ci) in c.iter().enumerate() {
                            _mm256_storeu_ps(acc[i].as_mut_ptr(), *ci);
                        }
                    }
                }

                /// `acc += c * src` over equal-length slices.
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features;
                /// `src.len() >= acc.len()` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn axpy(acc: &mut [f32], src: &[f32], cval: f32) {
                    debug_assert!(src.len() >= acc.len());
                    let n = acc.len();
                    let ap = acc.as_mut_ptr();
                    let sp = src.as_ptr();
                    let cv = _mm256_set1_ps(cval);
                    let mut x = 0usize;
                    // SAFETY: x + 8 <= n, so all lane loads/stores are in
                    // bounds for both slices.
                    unsafe {
                        while x + 8 <= n {
                            let a = _mm256_loadu_ps(ap.add(x));
                            let s = _mm256_loadu_ps(sp.add(x));
                            _mm256_storeu_ps(ap.add(x), $madd(cv, s, a));
                            x += 8;
                        }
                    }
                    // Remainder columns use the scalar twin of $madd so
                    // their rounding matches the vector lanes.
                    for i in x..n {
                        // SAFETY: i < n <= src.len().
                        unsafe {
                            let a = *ap.add(i);
                            let s = *sp.add(i);
                            *ap.add(i) = $smadd(cval, s, a);
                        }
                    }
                }

                /// Multi-tap axpy with the accumulator registers held
                /// across the tap loop (taps ascending per element, same
                /// chain as successive `axpy` calls).
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features;
                /// `ws.len() == segs.len()` and every `segs[t].len() >=
                /// acc.len()` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn axpy_taps(acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
                    debug_assert_eq!(ws.len(), segs.len());
                    let n = acc.len();
                    let ap = acc.as_mut_ptr();
                    let mut x = 0usize;
                    // 32-column blocks: 4 accumulator registers stay live
                    // across every tap, quartering acc load/store traffic
                    // versus per-tap axpy.
                    // SAFETY: x + 64 (resp. 32, 8) <= n and segs[t].len()
                    // >= n, so every lane access below is in bounds.
                    unsafe {
                        // 64-column blocks: 8 accumulator chains in
                        // flight. The per-column chain must stay in tap
                        // order, so the only latency lever is more
                        // independent columns per block.
                        while x + 64 <= n {
                            let mut a0 = _mm256_loadu_ps(ap.add(x));
                            let mut a1 = _mm256_loadu_ps(ap.add(x + 8));
                            let mut a2 = _mm256_loadu_ps(ap.add(x + 16));
                            let mut a3 = _mm256_loadu_ps(ap.add(x + 24));
                            let mut a4 = _mm256_loadu_ps(ap.add(x + 32));
                            let mut a5 = _mm256_loadu_ps(ap.add(x + 40));
                            let mut a6 = _mm256_loadu_ps(ap.add(x + 48));
                            let mut a7 = _mm256_loadu_ps(ap.add(x + 56));
                            for (t, seg) in segs.iter().enumerate() {
                                let cv = _mm256_set1_ps(*ws.get_unchecked(t));
                                let sp = seg.as_ptr().add(x);
                                a0 = $madd(cv, _mm256_loadu_ps(sp), a0);
                                a1 = $madd(cv, _mm256_loadu_ps(sp.add(8)), a1);
                                a2 = $madd(cv, _mm256_loadu_ps(sp.add(16)), a2);
                                a3 = $madd(cv, _mm256_loadu_ps(sp.add(24)), a3);
                                a4 = $madd(cv, _mm256_loadu_ps(sp.add(32)), a4);
                                a5 = $madd(cv, _mm256_loadu_ps(sp.add(40)), a5);
                                a6 = $madd(cv, _mm256_loadu_ps(sp.add(48)), a6);
                                a7 = $madd(cv, _mm256_loadu_ps(sp.add(56)), a7);
                            }
                            _mm256_storeu_ps(ap.add(x), a0);
                            _mm256_storeu_ps(ap.add(x + 8), a1);
                            _mm256_storeu_ps(ap.add(x + 16), a2);
                            _mm256_storeu_ps(ap.add(x + 24), a3);
                            _mm256_storeu_ps(ap.add(x + 32), a4);
                            _mm256_storeu_ps(ap.add(x + 40), a5);
                            _mm256_storeu_ps(ap.add(x + 48), a6);
                            _mm256_storeu_ps(ap.add(x + 56), a7);
                            x += 64;
                        }
                        while x + 32 <= n {
                            let mut a0 = _mm256_loadu_ps(ap.add(x));
                            let mut a1 = _mm256_loadu_ps(ap.add(x + 8));
                            let mut a2 = _mm256_loadu_ps(ap.add(x + 16));
                            let mut a3 = _mm256_loadu_ps(ap.add(x + 24));
                            for (t, seg) in segs.iter().enumerate() {
                                let cv = _mm256_set1_ps(*ws.get_unchecked(t));
                                let sp = seg.as_ptr().add(x);
                                a0 = $madd(cv, _mm256_loadu_ps(sp), a0);
                                a1 = $madd(cv, _mm256_loadu_ps(sp.add(8)), a1);
                                a2 = $madd(cv, _mm256_loadu_ps(sp.add(16)), a2);
                                a3 = $madd(cv, _mm256_loadu_ps(sp.add(24)), a3);
                            }
                            _mm256_storeu_ps(ap.add(x), a0);
                            _mm256_storeu_ps(ap.add(x + 8), a1);
                            _mm256_storeu_ps(ap.add(x + 16), a2);
                            _mm256_storeu_ps(ap.add(x + 24), a3);
                            x += 32;
                        }
                        while x + 8 <= n {
                            let mut a0 = _mm256_loadu_ps(ap.add(x));
                            for (t, seg) in segs.iter().enumerate() {
                                let cv = _mm256_set1_ps(*ws.get_unchecked(t));
                                a0 = $madd(cv, _mm256_loadu_ps(seg.as_ptr().add(x)), a0);
                            }
                            _mm256_storeu_ps(ap.add(x), a0);
                            x += 8;
                        }
                    }
                    for i in x..n {
                        // SAFETY: i < n <= segs[t].len() for every t.
                        unsafe {
                            let mut a = *ap.add(i);
                            for (t, seg) in segs.iter().enumerate() {
                                a = $smadd(*ws.get_unchecked(t), *seg.as_ptr().add(i), a);
                            }
                            *ap.add(i) = a;
                        }
                    }
                }

                /// Winograd channel reduction with the two 8-lane m-tile
                /// accumulators register-resident across the whole `cin`
                /// loop, output channels blocked by four to share each
                /// `v` load.
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features;
                /// `m_slab.len() >= cout * 16`, `v_slab.len() >= cin * 16`
                /// and `u.len() >= cout * cin` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn wino_channel_reduce(
                    m_slab: &mut [f32],
                    u: &[[f32; 16]],
                    v_slab: &[f32],
                    cout: usize,
                    cin: usize,
                ) {
                    debug_assert!(m_slab.len() >= cout * 16);
                    debug_assert!(v_slab.len() >= cin * 16);
                    debug_assert!(u.len() >= cout * cin);
                    let vp = v_slab.as_ptr();
                    let mp = m_slab.as_mut_ptr();
                    let up = u.as_ptr() as *const f32;
                    let mut oo = 0usize;
                    // SAFETY: (whole body) all tile indices stay below the
                    // bounds asserted above; every load/store touches one
                    // 16-float tile at tile-index * 16.
                    unsafe {
                        while oo + 4 <= cout {
                            let mut m00 = _mm256_setzero_ps();
                            let mut m01 = _mm256_setzero_ps();
                            let mut m10 = _mm256_setzero_ps();
                            let mut m11 = _mm256_setzero_ps();
                            let mut m20 = _mm256_setzero_ps();
                            let mut m21 = _mm256_setzero_ps();
                            let mut m30 = _mm256_setzero_ps();
                            let mut m31 = _mm256_setzero_ps();
                            for cc in 0..cin {
                                let v0 = _mm256_loadu_ps(vp.add(cc * 16));
                                let v1 = _mm256_loadu_ps(vp.add(cc * 16 + 8));
                                let u0 = up.add((oo * cin + cc) * 16);
                                let u1 = up.add(((oo + 1) * cin + cc) * 16);
                                let u2 = up.add(((oo + 2) * cin + cc) * 16);
                                let u3 = up.add(((oo + 3) * cin + cc) * 16);
                                m00 = $madd(_mm256_loadu_ps(u0), v0, m00);
                                m01 = $madd(_mm256_loadu_ps(u0.add(8)), v1, m01);
                                m10 = $madd(_mm256_loadu_ps(u1), v0, m10);
                                m11 = $madd(_mm256_loadu_ps(u1.add(8)), v1, m11);
                                m20 = $madd(_mm256_loadu_ps(u2), v0, m20);
                                m21 = $madd(_mm256_loadu_ps(u2.add(8)), v1, m21);
                                m30 = $madd(_mm256_loadu_ps(u3), v0, m30);
                                m31 = $madd(_mm256_loadu_ps(u3.add(8)), v1, m31);
                            }
                            _mm256_storeu_ps(mp.add(oo * 16), m00);
                            _mm256_storeu_ps(mp.add(oo * 16 + 8), m01);
                            _mm256_storeu_ps(mp.add((oo + 1) * 16), m10);
                            _mm256_storeu_ps(mp.add((oo + 1) * 16 + 8), m11);
                            _mm256_storeu_ps(mp.add((oo + 2) * 16), m20);
                            _mm256_storeu_ps(mp.add((oo + 2) * 16 + 8), m21);
                            _mm256_storeu_ps(mp.add((oo + 3) * 16), m30);
                            _mm256_storeu_ps(mp.add((oo + 3) * 16 + 8), m31);
                            oo += 4;
                        }
                        while oo < cout {
                            let mut m0 = _mm256_setzero_ps();
                            let mut m1 = _mm256_setzero_ps();
                            for cc in 0..cin {
                                let ut = up.add((oo * cin + cc) * 16);
                                let v0 = _mm256_loadu_ps(vp.add(cc * 16));
                                let v1 = _mm256_loadu_ps(vp.add(cc * 16 + 8));
                                m0 = $madd(_mm256_loadu_ps(ut), v0, m0);
                                m1 = $madd(_mm256_loadu_ps(ut.add(8)), v1, m1);
                            }
                            _mm256_storeu_ps(mp.add(oo * 16), m0);
                            _mm256_storeu_ps(mp.add(oo * 16 + 8), m1);
                            oo += 1;
                        }
                    }
                }
            }
        };
    }

    madd_kernels!(
        two_round,
        "avx2",
        madd_two_round,
        |a: f32, b: f32, c: f32| c + a * b
    );
    madd_kernels!(fused, "avx2,fma", madd_fused, |a: f32, b: f32, c: f32| a
        .mul_add(b, c));

    // --- madd-free kernels, shared by both AVX2 variants ------------------

    /// Winograd input transform, SSE 4-lane over the row/column
    /// butterflies (pure add/sub: bit-identical to the scalar transform
    /// under any lane arrangement).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 (implies SSE) support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn wino_input_transform(d: &[f32; 16]) -> [f32; 16] {
        let mut out = [0.0f32; 16];
        // SAFETY: all loads/stores address one of the four 4-float rows of
        // the 16-float tiles.
        unsafe {
            let p = d.as_ptr();
            let d0 = _mm_loadu_ps(p);
            let d1 = _mm_loadu_ps(p.add(4));
            let d2 = _mm_loadu_ps(p.add(8));
            let d3 = _mm_loadu_ps(p.add(12));
            // Row pass (Bᵀ · d), 4 columns per op.
            let t0 = _mm_sub_ps(d0, d2);
            let t1 = _mm_add_ps(d1, d2);
            let t2 = _mm_sub_ps(d2, d1);
            let t3 = _mm_sub_ps(d1, d3);
            // Column pass (· B) via transpose, the same butterflies, and
            // transpose back: per-element operand pairs are unchanged.
            let (c0, c1, c2, c3) = transpose4(t0, t1, t2, t3);
            let o0 = _mm_sub_ps(c0, c2);
            let o1 = _mm_add_ps(c1, c2);
            let o2 = _mm_sub_ps(c2, c1);
            let o3 = _mm_sub_ps(c1, c3);
            let (r0, r1, r2, r3) = transpose4(o0, o1, o2, o3);
            let q = out.as_mut_ptr();
            _mm_storeu_ps(q, r0);
            _mm_storeu_ps(q.add(4), r1);
            _mm_storeu_ps(q.add(8), r2);
            _mm_storeu_ps(q.add(12), r3);
        }
        out
    }

    /// Fused interior gather + input transform over all channels (see
    /// the trait method doc): strided 4-float row loads straight from
    /// the channel planes, the same butterflies as
    /// [`wino_input_transform`], one store per tile row.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support, and that for every
    /// channel the 4x4 window is in bounds: `(cin-1)*plane_len + base +
    /// 3*stride + 4 <= src.len()` and `v_slab.len() >= cin * 16`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn wino_input_transform_interior(
        src: &[f32],
        plane_len: usize,
        base: usize,
        stride: usize,
        v_slab: &mut [f32],
        cin: usize,
    ) {
        debug_assert!(v_slab.len() >= cin * 16);
        debug_assert!(cin == 0 || (cin - 1) * plane_len + base + 3 * stride + 4 <= src.len());
        // SAFETY: the caller guarantees every strided 4-float row load
        // is in bounds; stores stay below `cin * 16`.
        unsafe {
            let q = v_slab.as_mut_ptr();
            for cc in 0..cin {
                let p = src.as_ptr().add(cc * plane_len + base);
                let d0 = _mm_loadu_ps(p);
                let d1 = _mm_loadu_ps(p.add(stride));
                let d2 = _mm_loadu_ps(p.add(2 * stride));
                let d3 = _mm_loadu_ps(p.add(3 * stride));
                let t0 = _mm_sub_ps(d0, d2);
                let t1 = _mm_add_ps(d1, d2);
                let t2 = _mm_sub_ps(d2, d1);
                let t3 = _mm_sub_ps(d1, d3);
                let (c0, c1, c2, c3) = transpose4(t0, t1, t2, t3);
                let o0 = _mm_sub_ps(c0, c2);
                let o1 = _mm_add_ps(c1, c2);
                let o2 = _mm_sub_ps(c2, c1);
                let o3 = _mm_sub_ps(c1, c3);
                let (r0, r1, r2, r3) = transpose4(o0, o1, o2, o3);
                let qq = q.add(cc * 16);
                _mm_storeu_ps(qq, r0);
                _mm_storeu_ps(qq.add(4), r1);
                _mm_storeu_ps(qq.add(8), r2);
                _mm_storeu_ps(qq.add(12), r3);
            }
        }
    }

    /// Winograd output transform (2x2 from the 4x4 m-tile). Pure add/sub.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 (implies SSE) support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn wino_output_transform(m: &[f32; 16]) -> [f32; 4] {
        // SAFETY: loads address the four 4-float rows of the tile.
        unsafe {
            let p = m.as_ptr();
            let m0 = _mm_loadu_ps(p);
            let m1 = _mm_loadu_ps(p.add(4));
            let m2 = _mm_loadu_ps(p.add(8));
            let m3 = _mm_loadu_ps(p.add(12));
            // Row pass (Aᵀ · m): two 4-wide rows.
            let t0 = _mm_add_ps(_mm_add_ps(m0, m1), m2);
            let t1 = _mm_sub_ps(_mm_sub_ps(m1, m2), m3);
            // Column pass: scalar butterflies on the 8 staged values, the
            // same operand pairs as the scalar transform.
            let mut t = [0.0f32; 8];
            _mm_storeu_ps(t.as_mut_ptr(), t0);
            _mm_storeu_ps(t.as_mut_ptr().add(4), t1);
            [
                t[0] + t[1] + t[2],
                t[1] - t[2] - t[3],
                t[4] + t[5] + t[6],
                t[5] - t[6] - t[7],
            ]
        }
    }

    /// 4x4 transpose of four SSE rows.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSE support (implied by AVX2).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose4(
        r0: __m128,
        r1: __m128,
        r2: __m128,
        r3: __m128,
    ) -> (__m128, __m128, __m128, __m128) {
        let lo01 = _mm_unpacklo_ps(r0, r1);
        let hi01 = _mm_unpackhi_ps(r0, r1);
        let lo23 = _mm_unpacklo_ps(r2, r3);
        let hi23 = _mm_unpackhi_ps(r2, r3);
        (
            _mm_movelh_ps(lo01, lo23),
            _mm_movehl_ps(lo23, lo01),
            _mm_movelh_ps(hi01, hi23),
            _mm_movehl_ps(hi23, hi01),
        )
    }

    /// Fused epilogue head: `row = act(row + bias)`. No multiply-add
    /// pairs, so one implementation serves both AVX2 variants and is
    /// bit-identical to scalar: the ReLU lane `max(t, +0.0)` (zero in the
    /// second operand) matches `f32::max` on -0.0/NaN, and the PReLU
    /// `GE_OQ` compare sends NaN to the `slope * t` arm exactly like the
    /// scalar `if t >= 0.0` test.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bias_act_row(row: &mut [f32], bias: f32, act: RowAct) {
        let n = row.len();
        let p = row.as_mut_ptr();
        let bv = _mm256_set1_ps(bias);
        let mut x = 0usize;
        // SAFETY: x + 8 <= n for every lane access.
        unsafe {
            match act {
                RowAct::Linear => {
                    while x + 8 <= n {
                        let t = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), bv);
                        _mm256_storeu_ps(p.add(x), t);
                        x += 8;
                    }
                }
                RowAct::Relu => {
                    let zero = _mm256_setzero_ps();
                    while x + 8 <= n {
                        let t = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), bv);
                        _mm256_storeu_ps(p.add(x), _mm256_max_ps(t, zero));
                        x += 8;
                    }
                }
                RowAct::PRelu(al) => {
                    let av = _mm256_set1_ps(al);
                    let zero = _mm256_setzero_ps();
                    while x + 8 <= n {
                        let t = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), bv);
                        let keep = _mm256_cmp_ps(t, zero, _CMP_GE_OQ);
                        let neg = _mm256_mul_ps(av, t);
                        _mm256_storeu_ps(p.add(x), _mm256_blendv_ps(neg, t, keep));
                        x += 8;
                    }
                }
            }
        }
        scalar::bias_act_row(&mut row[x..], bias, act);
    }

    /// Residual add, 8 lanes at a time.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `other.len() >= row.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_row(row: &mut [f32], other: &[f32]) {
        debug_assert!(other.len() >= row.len());
        let n = row.len();
        let p = row.as_mut_ptr();
        let q = other.as_ptr();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n <= other.len() for every lane access.
        unsafe {
            while x + 8 <= n {
                let s = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), _mm256_loadu_ps(q.add(x)));
                _mm256_storeu_ps(p.add(x), s);
                x += 8;
            }
        }
        scalar::add_row(&mut row[x..], &other[x..n]);
    }

    /// Doubled write, 8 lanes at a time.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn double_row(row: &mut [f32]) {
        let n = row.len();
        let p = row.as_mut_ptr();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n for every lane access.
        unsafe {
            while x + 8 <= n {
                let v = _mm256_loadu_ps(p.add(x));
                _mm256_storeu_ps(p.add(x), _mm256_add_ps(v, v));
                x += 8;
            }
        }
        scalar::double_row(&mut row[x..]);
    }
}

/// Implements the trait for one AVX2 flavor by delegating every method to
/// the matching `x86` free functions. Both structs are only ever handed
/// out by [`microkernel`] after `is_x86_feature_detected!` confirmed the
/// features, which is the safety argument each `unsafe` block relies on.
#[cfg(target_arch = "x86_64")]
macro_rules! avx2_trait_impl {
    ($name:ident, $variant:expr, $madd_mod:ident) => {
        struct $name;

        impl Microkernel for $name {
            fn variant(&self) -> KernelVariant {
                $variant
            }

            fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
                assert!(apanel.len() >= kc * 8, "A panel too short");
                assert!(bstrip.len() >= kc * 8, "B strip too short");
                // SAFETY: features verified at dispatch (see macro doc);
                // panel lengths asserted above.
                unsafe { x86::$madd_mod::gemm_8x8(apanel, bstrip, kc, acc) }
            }

            fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32) {
                assert!(src.len() >= acc.len(), "src shorter than acc");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::$madd_mod::axpy(acc, src, c) }
            }

            fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
                assert_eq!(ws.len(), segs.len(), "one weight per tap");
                for seg in segs {
                    assert!(seg.len() >= acc.len(), "tap segment shorter than acc");
                }
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::$madd_mod::axpy_taps(acc, ws, segs) }
            }

            fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16] {
                // SAFETY: features verified at dispatch.
                unsafe { x86::wino_input_transform(d) }
            }

            fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4] {
                // SAFETY: features verified at dispatch.
                unsafe { x86::wino_output_transform(m) }
            }

            fn wino_input_transform_interior(
                &self,
                src: &[f32],
                plane_len: usize,
                base: usize,
                stride: usize,
                v_slab: &mut [f32],
                cin: usize,
            ) {
                assert!(v_slab.len() >= cin * 16, "v slab too short");
                assert!(
                    cin == 0 || (cin - 1) * plane_len + base + 3 * stride + 4 <= src.len(),
                    "interior window out of bounds"
                );
                // SAFETY: features verified at dispatch; bounds asserted.
                unsafe {
                    x86::wino_input_transform_interior(src, plane_len, base, stride, v_slab, cin)
                }
            }

            fn wino_channel_reduce(
                &self,
                m_slab: &mut [f32],
                u: &[[f32; 16]],
                v_slab: &[f32],
                cout: usize,
                cin: usize,
            ) {
                assert!(m_slab.len() >= cout * 16, "m slab too short");
                assert!(v_slab.len() >= cin * 16, "v slab too short");
                assert!(u.len() >= cout * cin, "u tile table too short");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::$madd_mod::wino_channel_reduce(m_slab, u, v_slab, cout, cin) }
            }

            fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct) {
                // SAFETY: features verified at dispatch.
                unsafe { x86::bias_act_row(row, bias, act) }
            }

            fn add_row(&self, row: &mut [f32], other: &[f32]) {
                assert!(other.len() >= row.len(), "residual row too short");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::add_row(row, other) }
            }

            fn double_row(&self, row: &mut [f32]) {
                // SAFETY: features verified at dispatch.
                unsafe { x86::double_row(row) }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
avx2_trait_impl!(Avx2Kernel, KernelVariant::Avx2, two_round);
#[cfg(target_arch = "x86_64")]
avx2_trait_impl!(Avx2FmaKernel, KernelVariant::Avx2Fma, fused);

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Vec<f32> {
        crate::Tensor::randn(&[n.max(1)], 0.0, 1.0, seed).into_vec()[..n].to_vec()
    }

    /// Rough per-kernel GFLOP/s probe for hand-tuning; run with
    /// `cargo test --release -- --ignored --nocapture kernel_throughput`.
    #[test]
    #[ignore]
    fn kernel_throughput_probe() {
        use std::time::Instant;
        let mk = default_microkernel();
        println!("variant: {}", mk.variant().name());
        // axpy_taps: 400 taps x 316 columns (the m5 head shape).
        let (nt, n) = (400usize, 316usize);
        let ws = seeded(nt, 1);
        let backing = seeded(n + 64, 2);
        let segs: Vec<&[f32]> = (0..nt).map(|t| &backing[t % 32..]).collect();
        let mut acc = seeded(n, 3);
        let reps = 2000;
        let t0 = Instant::now();
        for _ in 0..reps {
            mk.axpy_taps(&mut acc, &ws, &segs);
        }
        let el = t0.elapsed().as_secs_f64();
        println!(
            "axpy_taps {}x{}: {:.1} GFLOP/s",
            nt,
            n,
            (2.0 * nt as f64 * n as f64 * reps as f64) / el / 1e9
        );
        // wino_channel_reduce: 16x16 channels (the m5 feature layers).
        let (cout, cin) = (16usize, 16usize);
        let uflat = seeded(cout * cin * 16, 4);
        let u: Vec<[f32; 16]> = uflat
            .chunks_exact(16)
            .map(|c| c.try_into().unwrap())
            .collect();
        let v = seeded(cin * 16, 5);
        let mut m = vec![0.0f32; cout * 16];
        let reps = 100_000;
        let t0 = Instant::now();
        for _ in 0..reps {
            mk.wino_channel_reduce(&mut m, &u, &v, cout, cin);
        }
        let el = t0.elapsed().as_secs_f64();
        println!(
            "wino_channel_reduce {}x{}: {:.1} GFLOP/s",
            cout,
            cin,
            (2.0 * cout as f64 * cin as f64 * 16.0 * reps as f64) / el / 1e9
        );
        assert!(acc[0].is_finite() && m[0].is_finite());
    }

    /// Variants whose arithmetic must equal scalar bit-for-bit.
    fn two_round_variants() -> Vec<KernelVariant> {
        detected_variants()
            .iter()
            .copied()
            .filter(|v| !v.fused_madd())
            .collect()
    }

    #[test]
    fn scalar_is_always_detected_and_first() {
        let vs = detected_variants();
        assert_eq!(vs[0], KernelVariant::Scalar);
        assert!(KernelVariant::Scalar.available());
    }

    #[test]
    fn names_round_trip() {
        for v in [
            KernelVariant::Scalar,
            KernelVariant::Avx2,
            KernelVariant::Avx2Fma,
            KernelVariant::Neon,
        ] {
            assert_eq!(KernelVariant::parse(v.name()), Some(v));
        }
        assert_eq!(KernelVariant::parse("mmx"), None);
    }

    #[test]
    fn set_variant_returns_previous_and_degrades() {
        let _guard = variant_test_lock();
        let base = kernel_variant();
        let prev = set_kernel_variant(KernelVariant::Scalar);
        assert_eq!(prev, base);
        assert_eq!(kernel_variant(), KernelVariant::Scalar);
        // Neon is never available on x86 (nor under force-scalar):
        // requesting it must degrade to the best available variant, not
        // panic or silently dispatch a stub.
        if !KernelVariant::Neon.available() {
            set_kernel_variant(KernelVariant::Neon);
            assert!(kernel_variant().available());
        }
        set_kernel_variant(base);
    }

    #[test]
    fn unavailable_variant_dispatches_to_available_kernel() {
        if !KernelVariant::Neon.available() {
            let mk = microkernel(KernelVariant::Neon);
            assert!(mk.variant().available());
        }
    }

    #[test]
    fn gemm_tile_two_round_variants_match_scalar_bitwise() {
        for kc in [1usize, 2, 7, 64, 256] {
            let a = seeded(kc * 8, 11 + kc as u64);
            let b = seeded(kc * 8, 23 + kc as u64);
            let mut want = [[0.1f32; 8]; 8];
            microkernel(KernelVariant::Scalar).gemm_8x8(&a, &b, kc, &mut want);
            for v in two_round_variants() {
                let mut got = [[0.1f32; 8]; 8];
                microkernel(v).gemm_8x8(&a, &b, kc, &mut got);
                for i in 0..8 {
                    for j in 0..8 {
                        assert_eq!(
                            want[i][j].to_bits(),
                            got[i][j].to_bits(),
                            "{} kc={kc} ({i},{j})",
                            v.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fma_gemm_tile_is_close_and_self_consistent() {
        if !KernelVariant::Avx2Fma.available() {
            return;
        }
        let kc = 96;
        let a = seeded(kc * 8, 31);
        let b = seeded(kc * 8, 37);
        let mut sc = [[0.0f32; 8]; 8];
        microkernel(KernelVariant::Scalar).gemm_8x8(&a, &b, kc, &mut sc);
        let mut f1 = [[0.0f32; 8]; 8];
        let mut f2 = [[0.0f32; 8]; 8];
        let mk = microkernel(KernelVariant::Avx2Fma);
        mk.gemm_8x8(&a, &b, kc, &mut f1);
        mk.gemm_8x8(&a, &b, kc, &mut f2);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(f1[i][j].to_bits(), f2[i][j].to_bits(), "not deterministic");
                assert!(
                    (f1[i][j] - sc[i][j]).abs() < 1e-3 * (kc as f32).sqrt(),
                    "fma too far from scalar at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn axpy_taps_matches_sequential_axpy_per_variant() {
        // The multi-tap kernel must equal T successive axpy calls *within
        // every variant* (that is the associativity contract the direct
        // convolution relies on).
        for v in detected_variants().iter().copied() {
            let mk = microkernel(v);
            for (n, t) in [(1usize, 1usize), (7, 3), (33, 5), (64, 25), (100, 2)] {
                let ws = seeded(t, 41 + n as u64);
                let backing: Vec<Vec<f32>> = (0..t)
                    .map(|i| seeded(n + 3, 100 + i as u64 + n as u64))
                    .collect();
                let segs: Vec<&[f32]> = backing.iter().map(|s| &s[..]).collect();
                let mut seq = seeded(n, 7);
                for (w, seg) in ws.iter().zip(&segs) {
                    mk.axpy(&mut seq, &seg[..n], *w);
                }
                let mut multi = seeded(n, 7);
                mk.axpy_taps(&mut multi, &ws, &segs);
                for (i, (a, b)) in seq.iter().zip(&multi).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} n={n} t={t} x={i}", v.name());
                }
            }
        }
    }

    #[test]
    fn axpy_two_round_variants_match_scalar_bitwise() {
        for n in [1usize, 5, 8, 17, 64, 129] {
            let src = seeded(n, 3 + n as u64);
            let mut want = seeded(n, 5);
            microkernel(KernelVariant::Scalar).axpy(&mut want, &src, 0.37);
            for v in two_round_variants() {
                let mut got = seeded(n, 5);
                microkernel(v).axpy(&mut got, &src, 0.37);
                assert_eq!(
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{} n={n}",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn wino_transforms_match_scalar_bitwise_for_all_variants() {
        // Transforms are pure add/sub: exact for every variant, fused or
        // not.
        for seed in 0..8u64 {
            let d: [f32; 16] = seeded(16, 60 + seed).try_into().unwrap();
            let want_in = crate::winograd::input_transform(&d);
            let want_out = crate::winograd::output_transform(&d);
            for v in detected_variants().iter().copied() {
                let mk = microkernel(v);
                let got_in = mk.wino_input_transform(&d);
                let got_out = mk.wino_output_transform(&d);
                for k in 0..16 {
                    assert_eq!(want_in[k].to_bits(), got_in[k].to_bits(), "{}", v.name());
                }
                for k in 0..4 {
                    assert_eq!(want_out[k].to_bits(), got_out[k].to_bits(), "{}", v.name());
                }
            }
        }
    }

    #[test]
    fn wino_channel_reduce_two_round_matches_scalar_bitwise() {
        for (cout, cin) in [(1usize, 1usize), (4, 3), (16, 16), (5, 7), (3, 16)] {
            let u: Vec<[f32; 16]> = (0..cout * cin)
                .map(|i| seeded(16, 200 + i as u64).try_into().unwrap())
                .collect();
            let v_slab = seeded(cin * 16, 300 + (cout * cin) as u64);
            let mut want = vec![0.0f32; cout * 16];
            microkernel(KernelVariant::Scalar)
                .wino_channel_reduce(&mut want, &u, &v_slab, cout, cin);
            for v in two_round_variants() {
                let mut got = vec![1.0f32; cout * 16];
                microkernel(v).wino_channel_reduce(&mut got, &u, &v_slab, cout, cin);
                assert_eq!(
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{} {cout}x{cin}",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn epilogue_rows_match_scalar_bitwise_for_all_variants() {
        // Epilogue ops carry no multiply-add pairs: every variant must be
        // bit-identical to scalar, including the IEEE corners (-0.0, NaN,
        // values that flip sign under bias).
        let mut base = seeded(37, 400);
        base[0] = -0.0;
        base[1] = 0.0;
        base[2] = f32::NAN;
        base[3] = -1.0e-30;
        for act in [RowAct::Linear, RowAct::Relu, RowAct::PRelu(-0.25)] {
            for bias in [0.0f32, -0.5, 0.37] {
                let mut want = base.clone();
                scalar::bias_act_row(&mut want, bias, act);
                for v in detected_variants().iter().copied() {
                    let mut got = base.clone();
                    microkernel(v).bias_act_row(&mut got, bias, act);
                    assert_eq!(
                        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{} {act:?} bias={bias}",
                        v.name()
                    );
                }
            }
        }
        let other = seeded(37, 401);
        let mut want = base.clone();
        scalar::add_row(&mut want, &other);
        scalar::double_row(&mut want);
        for v in detected_variants().iter().copied() {
            let mut got = base.clone();
            let mk = microkernel(v);
            mk.add_row(&mut got, &other);
            mk.double_row(&mut got);
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{}",
                v.name()
            );
        }
    }

    #[test]
    fn fma_scalar_remainder_matches_vector_lanes() {
        // One value processed in a vector lane (index 0 of a 9-long
        // buffer) and the same value in the scalar remainder (index 8)
        // must round identically under the fused variant.
        if !KernelVariant::Avx2Fma.available() {
            return;
        }
        let mk = microkernel(KernelVariant::Avx2Fma);
        let val = 3.000_000_4f32;
        let mut acc = vec![-3.0f32; 9];
        let src = vec![val; 9];
        mk.axpy(&mut acc, &src, 1.000_000_1);
        assert_eq!(acc[0].to_bits(), acc[8].to_bits());
        assert_eq!(
            acc[0].to_bits(),
            1.000_000_1f32.mul_add(val, -3.0).to_bits()
        );
    }
}
