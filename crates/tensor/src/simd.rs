//! Runtime-dispatched CPU microkernels: scalar, AVX2, and AVX2+FMA.
//!
//! Every hot inner loop of the planned executor — the packed GEMM's 8x8
//! register tile, the direct convolution's tap-accumulate, the Winograd
//! `F(2x2, 3x3)` transforms and channel reduction, and the fused epilogue
//! row passes — dispatches through one [`Microkernel`] trait object picked
//! at runtime with `is_x86_feature_detected!`. Three x86 variants exist:
//!
//! * [`KernelVariant::Scalar`] — the reference implementation; plain Rust
//!   with no intrinsics, auto-vectorized by the compiler. Always available.
//! * [`KernelVariant::Avx2`] — explicit 8-lane `std::arch` intrinsics with
//!   *separate* multiply and add. Rust never enables floating-point
//!   contraction, so `mul` + `add` round twice exactly like the scalar
//!   code: this variant is **bit-identical to `Scalar`** on every input
//!   (the identity proptests assert it).
//! * [`KernelVariant::Avx2Fma`] — same lane structure with single-rounding
//!   `fmadd`. Output bits *differ* from `Scalar`/`Avx2` (they are more
//!   accurate), but the variant is self-consistent: every multiply-add in
//!   both the planned and the reference path funnels through this module,
//!   so planned-vs-reference and 1-vs-N-thread bit identity hold *within*
//!   the variant. Scalar remainder lanes use [`f32::mul_add`], which the
//!   probe tests prove bit-equal to `vfmadd`.
//!
//! [`KernelVariant::Neon`] names the aarch64 slot behind the same trait;
//! its implementation is currently a guarded stub that executes the scalar
//! ops (structured so 4-lane intrinsics can drop in without touching call
//! sites). On aarch64 it is detected as the default so the dispatch layer
//! is exercised.
//!
//! The operations with no multiply-add pairs — the Winograd input/output
//! transforms (pure add/sub) and the epilogue rows (`+bias`, ReLU/PReLU,
//! residual adds) — are bit-identical across *all* variants: vectorizing
//! changes which lane computes an element, never the operand pair. The
//! one subtle case is ReLU: `_mm256_max_ps(t, +0.0)` with the zero in the
//! second operand returns `+0.0` for `t ∈ {-0.0, +0.0, NaN}` exactly like
//! `f32::max(t, 0.0)` (unit-tested below).
//!
//! The process default is chosen once by [`kernel_variant`] and can be
//! overridden with [`set_kernel_variant`] (benches align the global to a
//! plan's tuned variant before running the reference oracle). Building
//! with `--features force-scalar` pins the scalar path: detection reports
//! only `Scalar` and overrides are clamped to it, so a CI leg can prove
//! the non-SIMD path end to end.

use std::sync::atomic::{AtomicU8, Ordering};

/// Identifies one microkernel implementation. The variant is part of the
/// *numeric contract*: all kernels run under the same variant produce
/// outputs that are reproducible bit-for-bit across thread counts and
/// across the planned/reference executors; `Avx2Fma` outputs differ from
/// the two-rounding variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Plain Rust, no intrinsics. Always available; pinned by the
    /// `force-scalar` cargo feature.
    Scalar,
    /// AVX2 intrinsics, separate multiply and add (bit-identical to
    /// `Scalar`).
    Avx2,
    /// AVX2 + FMA intrinsics, single-rounding multiply-add.
    Avx2Fma,
    /// aarch64 NEON slot (currently a scalar-op stub behind the trait).
    Neon,
}

impl KernelVariant {
    /// Stable lowercase name, used in telemetry, bench JSON, and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            KernelVariant::Scalar => "scalar",
            KernelVariant::Avx2 => "avx2",
            KernelVariant::Avx2Fma => "avx2fma",
            KernelVariant::Neon => "neon",
        }
    }

    /// Parses [`KernelVariant::name`] output (CLI `--variant` flag).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "scalar" => Some(KernelVariant::Scalar),
            "avx2" => Some(KernelVariant::Avx2),
            "avx2fma" => Some(KernelVariant::Avx2Fma),
            "neon" => Some(KernelVariant::Neon),
            _ => None,
        }
    }

    /// Whether this variant's kernels can run on the current CPU (and are
    /// not pinned away by `force-scalar`).
    pub fn available(self) -> bool {
        detected_variants().contains(&self)
    }

    /// Whether the variant fuses multiply-add (single rounding). Variants
    /// that do NOT fuse are bit-identical to `Scalar`; variants that do
    /// are only self-consistent.
    pub fn fused_madd(self) -> bool {
        matches!(self, KernelVariant::Avx2Fma)
    }

    fn to_u8(self) -> u8 {
        match self {
            KernelVariant::Scalar => 0,
            KernelVariant::Avx2 => 1,
            KernelVariant::Avx2Fma => 2,
            KernelVariant::Neon => 3,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => KernelVariant::Avx2,
            2 => KernelVariant::Avx2Fma,
            3 => KernelVariant::Neon,
            _ => KernelVariant::Scalar,
        }
    }
}

/// The variants usable on this CPU, scalar first, fastest-candidate last.
/// Under `--features force-scalar` this is exactly `[Scalar]`. The list
/// (not just the best pick) is public so autotuners can enumerate
/// candidates deterministically.
pub fn detected_variants() -> &'static [KernelVariant] {
    if cfg!(feature = "force-scalar") {
        return &[KernelVariant::Scalar];
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            if is_x86_feature_detected!("fma") {
                return &[
                    KernelVariant::Scalar,
                    KernelVariant::Avx2,
                    KernelVariant::Avx2Fma,
                ];
            }
            return &[KernelVariant::Scalar, KernelVariant::Avx2];
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return &[KernelVariant::Scalar, KernelVariant::Neon];
    }
    #[allow(unreachable_code)]
    &[KernelVariant::Scalar]
}

/// Sentinel meaning "not chosen yet" in [`GLOBAL_VARIANT`].
const VARIANT_UNSET: u8 = u8::MAX;

/// Process-wide default variant, `VARIANT_UNSET` until first use.
static GLOBAL_VARIANT: AtomicU8 = AtomicU8::new(VARIANT_UNSET);

/// The process-default kernel variant: the last detected variant (the
/// fastest candidate) on first call, or whatever [`set_kernel_variant`]
/// pinned. Everything that does not carry an explicit variant — the
/// packed GEMM, the reference Winograd — reads this, which is what keeps
/// the reference and planned executors on the same arithmetic.
pub fn kernel_variant() -> KernelVariant {
    let raw = GLOBAL_VARIANT.load(Ordering::Relaxed);
    if raw != VARIANT_UNSET {
        return KernelVariant::from_u8(raw);
    }
    let v = *detected_variants().last().expect("scalar always present");
    // Racing first calls write the same detected value; either wins.
    GLOBAL_VARIANT.store(v.to_u8(), Ordering::Relaxed);
    v
}

/// Overrides the process-default variant, returning the previous value
/// (restore it when done — benches align the global to a tuned plan's
/// variant around a reference run). Requests for an unavailable variant
/// (or any non-scalar variant under `force-scalar`) degrade to the best
/// available one.
pub fn set_kernel_variant(v: KernelVariant) -> KernelVariant {
    let prev = kernel_variant();
    let eff = if v.available() {
        v
    } else {
        *detected_variants().last().expect("scalar always present")
    };
    GLOBAL_VARIANT.store(eff.to_u8(), Ordering::Relaxed);
    prev
}

/// Per-channel activation applied by [`Microkernel::bias_act_row`],
/// mirroring the planner's `ActKind` with the slope flattened to the one
/// channel the row belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RowAct {
    /// No activation.
    Linear,
    /// `max(t, 0.0)`.
    Relu,
    /// `if t >= 0 { t } else { slope * t }`.
    PRelu(f32),
}

/// Per-channel constants of the quantized executor's requantize-to-wire
/// epilogue. One output channel's pipeline, applied to each `i32`
/// accumulator `acc`:
///
/// ```text
/// v    = scale_io * (acc as f32) + bias      (unfused mul, then add)
/// v    = act(v)
/// q    = ((v / out_scale).round() as i32 + zero_point).clamp(0, 255)
/// wire = q - zero_point
/// ```
///
/// `round` is Rust's `f32::round` — half away from zero. SIMD
/// implementations must reproduce this chain bit for bit; see
/// [`Microkernel::qrequant_pack_row`] for why that is possible.
#[derive(Debug, Clone, Copy)]
pub struct QuantEpilogue {
    /// Accumulator-to-real factor (`input_scale * weight_scale[o]`).
    pub scale_io: f32,
    /// Per-channel bias, in real units.
    pub bias: f32,
    /// Activation applied between bias and requantization.
    pub act: RowAct,
    /// Outgoing wire step size.
    pub out_scale: f32,
    /// Outgoing wire zero point (in `[0, 255]`).
    pub zero_point: i32,
}

/// The microkernel surface: every hot per-element loop of the GEMM, the
/// direct convolution, the Winograd pipeline, and the fused epilogues.
///
/// Implementations must preserve the per-element *operand order* of the
/// scalar reference (taps in ascending k, channels in ascending c, the
/// epilogue op sequence) — lane assignment is free, association is not.
/// That is what makes `Avx2` bit-identical to `Scalar` and `Avx2Fma`
/// self-consistent.
pub trait Microkernel: Sync {
    /// Which variant this implementation realizes.
    fn variant(&self) -> KernelVariant;

    /// Rank-1-update GEMM register tile: `acc[i][j] += sum_p apanel[p*8+i]
    /// * bstrip[p*8+j]` with `p` ascending. Panels are packed p-major,
    /// 8-wide, `>= kc * 8` floats each.
    fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]);

    /// `acc[x] += c * src[x]`. Slices must be equal length.
    fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32);

    /// Multi-tap axpy: for each `x`, applies `acc[x] += ws[t] * segs[t][x]`
    /// for `t` ascending — the same per-element chain as `ws.len()`
    /// successive [`Microkernel::axpy`] calls, but with the accumulator
    /// kept in registers across taps (the direct convolution's hot loop).
    /// Every `segs[t]` must be at least `acc.len()` long.
    fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]);

    /// Integer multi-tap multiply-accumulate for the quantized planned
    /// executor. Every `i32` element packs a *pair* of `i16` lanes (two
    /// adjacent input channels, low channel in the low half): for each
    /// `x` and each tap `t`,
    /// `acc[x] += lo(segs[t][x]) * lo(ws[t]) + hi(segs[t][x]) * hi(ws[t])`
    /// where `lo`/`hi` sign-extend the 16-bit halves. This is exactly one
    /// `vpmaddwd` per tap on AVX2 — and because the packed values are
    /// zero-point-subtracted uint8 activations (`|v| <= 255`) against
    /// int8 weights (`|w| <= 127`), each pair sum is at most `2 * 255 *
    /// 127`, far inside `i32`: no saturation, so every implementation is
    /// **bit-identical** (integer addition is associative). Every
    /// `segs[t]` must be at least `acc.len()` long and `ws.len() ==
    /// segs.len()`.
    fn qmadd_taps(&self, acc: &mut [i32], ws: &[i32], segs: &[&[i32]]) {
        scalar::qmadd_taps(acc, ws, segs);
    }

    /// Two-output-channel [`Microkernel::qmadd_taps`]: accumulates the
    /// same tap segments into `acc0` (with weights `ws0`) and `acc1`
    /// (with `ws1`), so wide implementations load each activation vector
    /// once and feed both channels' `vpmaddwd` from it — the segments
    /// are shared by every output channel, and they dominate the tap
    /// loop's memory traffic. Bit-identical to two independent
    /// [`Microkernel::qmadd_taps`] calls for the same reason any blocking
    /// is: integer addition is associative and exact. `acc0` and `acc1`
    /// must be equal length; `ws0`/`ws1` each match `segs.len()`.
    fn qmadd_taps2(
        &self,
        acc0: &mut [i32],
        acc1: &mut [i32],
        ws0: &[i32],
        ws1: &[i32],
        segs: &[&[i32]],
    ) {
        scalar::qmadd_taps(acc0, ws0, segs);
        scalar::qmadd_taps(acc1, ws1, segs);
    }

    /// Requantize-to-wire for one output-channel *pair* row: applies
    /// [`QuantEpilogue`] `e0` to `acc0` (low lane) and `e1` to `acc1`
    /// (high lane; `None` packs zero — an odd trailing channel), writing
    /// `dst[x] = (lo & 0xffff) | (hi << 16)`.
    ///
    /// SIMD implementations are **bit-identical** to the scalar chain:
    /// `i32 -> f32` conversion, multiply, add, divide, and the activation
    /// select are all exact per-lane IEEE ops, and `f32::round` (half away
    /// from zero) equals `trunc(f + copysign(0.5, f))` exactly for
    /// `|f| < 2^22` — `f + copysign(0.5, f)` is exact there because
    /// `ulp(f) <= 0.25`. Beyond that magnitude both paths saturate to the
    /// same clamp bound (`|wire| <= 255 << 2^22`), so the packed integer
    /// result agrees for every finite input. `acc0`/`acc1` must be at
    /// least `dst.len()` long.
    fn qrequant_pack_row(
        &self,
        acc0: &[i32],
        acc1: &[i32],
        dst: &mut [i32],
        e0: &QuantEpilogue,
        e1: Option<&QuantEpilogue>,
    ) {
        scalar::qrequant_pack_row(acc0, acc1, dst, e0, e1);
    }

    /// [`Microkernel::qrequant_pack_row`] fused with the long feature
    /// residual: each lane is requantized to its own wire, dequantized
    /// (`out_scale * wire`), added to the dequantized `first`-plane lane
    /// (`first_scale * lane`), and the sum is requantized onto the widened
    /// wire (`wide_scale`, `wide_zp`) before packing. Same per-lane
    /// exactness argument as `qrequant_pack_row`; `first` holds the packed
    /// layer-0 pair plane row. `acc0`/`acc1`/`first` must be at least
    /// `dst.len()` long.
    #[allow(clippy::too_many_arguments)]
    fn qresidual_pack_row(
        &self,
        acc0: &[i32],
        acc1: &[i32],
        first: &[i32],
        dst: &mut [i32],
        e0: &QuantEpilogue,
        e1: Option<&QuantEpilogue>,
        first_scale: f32,
        wide_scale: f32,
        wide_zp: i32,
    ) {
        scalar::qresidual_pack_row(
            acc0,
            acc1,
            first,
            dst,
            e0,
            e1,
            first_scale,
            wide_scale,
            wide_zp,
        );
    }

    /// Head epilogue for one output channel row: the `qrequant` chain plus
    /// an optional input residual (`v += in_scale * lo16(input[x])`,
    /// applied after the activation), emitting **dequantized** levels
    /// `vals[x] = out_scale * wire` instead of packed integers — the head
    /// leaves on its wire and callers scatter real values. Same exactness
    /// argument as [`Microkernel::qrequant_pack_row`]. `acc` (and the
    /// input row, when present) must be at least `vals.len()` long.
    fn qhead_row(
        &self,
        acc: &[i32],
        input: Option<(&[i32], f32)>,
        vals: &mut [f32],
        e: &QuantEpilogue,
    ) {
        scalar::qhead_row(acc, input, vals, e);
    }

    /// Input quantization for the quantized executor: `dst[x] =
    /// pack(clamp(round(src[x] / scale) + zp, 0, 255) - zp, 0)` — the
    /// zero-point-subtracted wire level in the low lane, zero in the high
    /// lane. Same rounding-emulation exactness as
    /// [`Microkernel::qrequant_pack_row`]. `src` must be at least
    /// `dst.len()` long.
    fn qquantize_row(&self, src: &[f32], dst: &mut [i32], scale: f32, zp: i32) {
        scalar::qquantize_row(src, dst, scale, zp);
    }

    /// Winograd `Bᵀ d B` on one 4x4 tile. Pure add/sub: bit-identical
    /// across all variants.
    fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16];

    /// Winograd `Aᵀ m A`, producing the 2x2 output tile. Pure add/sub.
    fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4];

    /// [`Microkernel::wino_input_transform`] over `cin` consecutive tiles:
    /// `v_slab[cc*16..] = BᵀdB(d_slab[cc*16..])`. One virtual call per
    /// tile *set* instead of per tile — the default body is monomorphized
    /// per implementation, so the inner per-tile calls dispatch
    /// statically. Both slabs must hold `cin * 16` floats.
    fn wino_input_transform_many(&self, d_slab: &[f32], v_slab: &mut [f32], cin: usize) {
        for cc in 0..cin {
            let d: &[f32; 16] = d_slab[cc * 16..cc * 16 + 16]
                .try_into()
                .expect("16-element tile");
            v_slab[cc * 16..cc * 16 + 16].copy_from_slice(&self.wino_input_transform(d));
        }
    }

    /// [`Microkernel::wino_output_transform`] over `cout` consecutive
    /// tiles: `y_slab[oo*4..] = AᵀmA(m_slab[oo*16..])`. Same batching
    /// rationale as [`Microkernel::wino_input_transform_many`].
    fn wino_output_transform_many(&self, m_slab: &[f32], y_slab: &mut [f32], cout: usize) {
        for oo in 0..cout {
            let m: &[f32; 16] = m_slab[oo * 16..oo * 16 + 16]
                .try_into()
                .expect("16-element tile");
            y_slab[oo * 4..oo * 4 + 4].copy_from_slice(&self.wino_output_transform(m));
        }
    }

    /// Fused gather + input transform for an *interior* tile: reads the
    /// 4x4 window whose top-left element sits at `base` (rows `stride`
    /// apart) of each `plane_len`-float channel plane in `src`, and
    /// writes the transformed tile to `v_slab[cc*16..]` — no staging
    /// copy. Bit-identical to gathering into a d-tile first (the
    /// transform is pure add/sub). The window must be fully in bounds
    /// for every channel: `(cin-1)*plane_len + base + 3*stride + 4 <=
    /// src.len()`, and `v_slab` must hold `cin * 16` floats.
    fn wino_input_transform_interior(
        &self,
        src: &[f32],
        plane_len: usize,
        base: usize,
        stride: usize,
        v_slab: &mut [f32],
        cin: usize,
    ) {
        for cc in 0..cin {
            let plane = &src[cc * plane_len..];
            let mut d = [0.0f32; 16];
            for dy in 0..4 {
                d[4 * dy..4 * dy + 4].copy_from_slice(&plane[base + dy * stride..][..4]);
            }
            v_slab[cc * 16..cc * 16 + 16].copy_from_slice(&self.wino_input_transform(&d));
        }
    }

    /// The Winograd channel reduction: for each output channel `oo`,
    /// `m_slab[oo*16 + k] = sum_cc u[oo*cin + cc][k] * v_slab[cc*16 + k]`
    /// with `cc` ascending. `m_slab` is `cout * 16`, `v_slab` is
    /// `cin * 16`, `u` holds at least `cout * cin` tiles.
    fn wino_channel_reduce(
        &self,
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    );

    /// Fused epilogue head: `row[x] = act(row[x] + bias)`. Bit-identical
    /// across variants (no multiply-add pairs).
    fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct);

    /// Residual add: `row[x] += other[x]`. Equal lengths.
    fn add_row(&self, row: &mut [f32], other: &[f32]);

    /// Doubled write (degenerate 2-layer feature residual): `row[x] +=
    /// row[x]`.
    fn double_row(&self, row: &mut [f32]);
}

/// The implementation for `v`, falling back to the best available variant
/// when `v` cannot run here (wrong arch, missing CPU features, or pinned
/// by `force-scalar`). The returned reference is `'static`: hoist it out
/// of loops and reuse it freely.
pub fn microkernel(v: KernelVariant) -> &'static dyn Microkernel {
    let eff = if v.available() {
        v
    } else {
        *detected_variants().last().expect("scalar always present")
    };
    match eff {
        KernelVariant::Scalar => &ScalarKernel,
        #[cfg(target_arch = "x86_64")]
        KernelVariant::Avx2 => &Avx2Kernel,
        #[cfg(target_arch = "x86_64")]
        KernelVariant::Avx2Fma => &Avx2FmaKernel,
        #[cfg(target_arch = "aarch64")]
        KernelVariant::Neon => &NeonKernel,
        #[allow(unreachable_patterns)]
        _ => &ScalarKernel,
    }
}

/// Shorthand for `microkernel(kernel_variant())`.
pub fn default_microkernel() -> &'static dyn Microkernel {
    microkernel(kernel_variant())
}

/// Serializes tests that mutate the process-global variant against tests
/// whose assertions compare bitwise outputs of repeated kernel calls (a
/// mid-test variant flip would make those flaky). Test support only; not
/// part of the public API.
#[doc(hidden)]
pub fn variant_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Scalar reference implementation
// ---------------------------------------------------------------------------

/// Scalar ops shared by [`ScalarKernel`], the NEON stub, and the SIMD
/// variants' remainder lanes. These are the bit-exact reference: the GEMM
/// tile matches `gemm.rs`'s historic microkernel, the epilogue ops match
/// the planner's unfused `emit_row`, and `axpy` matches the direct
/// convolution's historic tap loop.
mod scalar {
    use super::RowAct;

    pub fn gemm_8x8(apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
        for p in 0..kc {
            let av: &[f32; 8] = apanel[p * 8..p * 8 + 8].try_into().expect("panel row");
            let bv: &[f32; 8] = bstrip[p * 8..p * 8 + 8].try_into().expect("strip row");
            for (accrow, &aval) in acc.iter_mut().zip(av.iter()) {
                for (slot, &bval) in accrow.iter_mut().zip(bv.iter()) {
                    *slot += aval * bval;
                }
            }
        }
    }

    pub fn axpy(acc: &mut [f32], src: &[f32], c: f32) {
        for (a, &v) in acc.iter_mut().zip(src) {
            *a += c * v;
        }
    }

    pub fn axpy_taps(acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
        for (&c, seg) in ws.iter().zip(segs) {
            axpy(acc, &seg[..acc.len()], c);
        }
    }

    /// Integer paired-lane multiply-accumulate — the scalar model of
    /// `vpmaddwd`. See [`super::Microkernel::qmadd_taps`] for the packing
    /// contract.
    pub fn qmadd_taps(acc: &mut [i32], ws: &[i32], segs: &[&[i32]]) {
        debug_assert_eq!(ws.len(), segs.len());
        for (x, a) in acc.iter_mut().enumerate() {
            let mut sum = *a;
            for (&w, seg) in ws.iter().zip(segs) {
                let s = seg[x];
                let (wlo, whi) = (w as i16 as i32, w >> 16);
                let (slo, shi) = (s as i16 as i32, s >> 16);
                sum += slo * wlo + shi * whi;
            }
            *a = sum;
        }
    }

    /// The scalar requantize-to-wire reference for one lane — the chain
    /// documented on [`super::QuantEpilogue`], verbatim.
    pub fn quant_wire(e: &super::QuantEpilogue, acc: i32) -> i32 {
        let mut v = e.scale_io * acc as f32 + e.bias;
        v = match e.act {
            RowAct::Linear => v,
            RowAct::Relu => v.max(0.0),
            RowAct::PRelu(a) => {
                if v >= 0.0 {
                    v
                } else {
                    a * v
                }
            }
        };
        let q = ((v / e.out_scale).round() as i32 + e.zero_point).clamp(0, 255);
        q - e.zero_point
    }

    pub fn qrequant_pack_row(
        acc0: &[i32],
        acc1: &[i32],
        dst: &mut [i32],
        e0: &super::QuantEpilogue,
        e1: Option<&super::QuantEpilogue>,
    ) {
        for (x, d) in dst.iter_mut().enumerate() {
            let lo = quant_wire(e0, acc0[x]);
            let hi = match e1 {
                Some(e1) => quant_wire(e1, acc1[x]),
                None => 0,
            };
            *d = (lo & 0xffff) | (hi << 16);
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn qresidual_pack_row(
        acc0: &[i32],
        acc1: &[i32],
        first: &[i32],
        dst: &mut [i32],
        e0: &super::QuantEpilogue,
        e1: Option<&super::QuantEpilogue>,
        first_scale: f32,
        wide_scale: f32,
        wide_zp: i32,
    ) {
        let fuse = |e: &super::QuantEpilogue, acc: i32, f_lane: i32| -> i32 {
            let a = e.out_scale * quant_wire(e, acc) as f32;
            let b = first_scale * f_lane as f32;
            let qr = (((a + b) / wide_scale).round() as i32 + wide_zp).clamp(0, 255);
            qr - wide_zp
        };
        for (x, d) in dst.iter_mut().enumerate() {
            let fv = first[x];
            let lo = fuse(e0, acc0[x], fv as i16 as i32);
            let hi = match e1 {
                Some(e1) => fuse(e1, acc1[x], fv >> 16),
                None => 0,
            };
            *d = (lo & 0xffff) | (hi << 16);
        }
    }

    pub fn qhead_row(
        acc: &[i32],
        input: Option<(&[i32], f32)>,
        vals: &mut [f32],
        e: &super::QuantEpilogue,
    ) {
        for (x, out) in vals.iter_mut().enumerate() {
            let mut v = e.scale_io * acc[x] as f32 + e.bias;
            v = match e.act {
                RowAct::Linear => v,
                RowAct::Relu => v.max(0.0),
                RowAct::PRelu(a) => {
                    if v >= 0.0 {
                        v
                    } else {
                        a * v
                    }
                }
            };
            if let Some((ir, iscale)) = input {
                v += iscale * (ir[x] as i16 as i32) as f32;
            }
            let q = ((v / e.out_scale).round() as i32 + e.zero_point).clamp(0, 255);
            *out = e.out_scale * (q - e.zero_point) as f32;
        }
    }

    pub fn qquantize_row(src: &[f32], dst: &mut [i32], scale: f32, zp: i32) {
        for (x, d) in dst.iter_mut().enumerate() {
            let q = ((src[x] / scale).round() as i32 + zp).clamp(0, 255);
            *d = (q - zp) & 0xffff;
        }
    }

    pub fn wino_channel_reduce(
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    ) {
        for oo in 0..cout {
            let mut m = [0.0f32; 16];
            for cc in 0..cin {
                let ut = &u[oo * cin + cc];
                let vc = &v_slab[cc * 16..cc * 16 + 16];
                for k in 0..16 {
                    m[k] += ut[k] * vc[k];
                }
            }
            m_slab[oo * 16..oo * 16 + 16].copy_from_slice(&m);
        }
    }

    pub fn bias_act_row(row: &mut [f32], bias: f32, act: RowAct) {
        match act {
            RowAct::Linear => {
                for v in row.iter_mut() {
                    *v += bias;
                }
            }
            RowAct::Relu => {
                for v in row.iter_mut() {
                    *v = (*v + bias).max(0.0);
                }
            }
            RowAct::PRelu(al) => {
                for v in row.iter_mut() {
                    let t = *v + bias;
                    *v = if t >= 0.0 { t } else { al * t };
                }
            }
        }
    }

    pub fn add_row(row: &mut [f32], other: &[f32]) {
        for (v, &o) in row.iter_mut().zip(other) {
            *v += o;
        }
    }

    pub fn double_row(row: &mut [f32]) {
        for v in row.iter_mut() {
            *v += *v;
        }
    }
}

/// [`KernelVariant::Scalar`]: the always-available reference.
struct ScalarKernel;

impl Microkernel for ScalarKernel {
    fn variant(&self) -> KernelVariant {
        KernelVariant::Scalar
    }

    fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
        scalar::gemm_8x8(apanel, bstrip, kc, acc)
    }

    fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32) {
        scalar::axpy(acc, src, c)
    }

    fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
        scalar::axpy_taps(acc, ws, segs)
    }

    fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16] {
        crate::winograd::input_transform(d)
    }

    fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4] {
        crate::winograd::output_transform(m)
    }

    fn wino_channel_reduce(
        &self,
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    ) {
        scalar::wino_channel_reduce(m_slab, u, v_slab, cout, cin)
    }

    fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct) {
        scalar::bias_act_row(row, bias, act)
    }

    fn add_row(&self, row: &mut [f32], other: &[f32]) {
        scalar::add_row(row, other)
    }

    fn double_row(&self, row: &mut [f32]) {
        scalar::double_row(row)
    }
}

/// [`KernelVariant::Neon`]: aarch64 slot. The trait plumbing, detection
/// order, and tests are arch-neutral; the bodies currently execute the
/// scalar ops (bit-identical by construction) until 4-lane intrinsics
/// land. Kept cfg-gated so x86 builds cannot reference it by accident.
#[cfg(target_arch = "aarch64")]
struct NeonKernel;

#[cfg(target_arch = "aarch64")]
impl Microkernel for NeonKernel {
    fn variant(&self) -> KernelVariant {
        KernelVariant::Neon
    }

    fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
        scalar::gemm_8x8(apanel, bstrip, kc, acc)
    }

    fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32) {
        scalar::axpy(acc, src, c)
    }

    fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
        scalar::axpy_taps(acc, ws, segs)
    }

    fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16] {
        crate::winograd::input_transform(d)
    }

    fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4] {
        crate::winograd::output_transform(m)
    }

    fn wino_channel_reduce(
        &self,
        m_slab: &mut [f32],
        u: &[[f32; 16]],
        v_slab: &[f32],
        cout: usize,
        cin: usize,
    ) {
        scalar::wino_channel_reduce(m_slab, u, v_slab, cout, cin)
    }

    fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct) {
        scalar::bias_act_row(row, bias, act)
    }

    fn add_row(&self, row: &mut [f32], other: &[f32]) {
        scalar::add_row(row, other)
    }

    fn double_row(&self, row: &mut [f32]) {
        scalar::double_row(row)
    }
}

// ---------------------------------------------------------------------------
// x86-64 AVX2 / AVX2+FMA implementations
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::scalar;
    use super::RowAct;
    use std::arch::x86_64::*;

    /// Two-rounding multiply-add lane op, shared with the remainder
    /// helpers below so the non-FMA variant is bit-identical to scalar.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    pub unsafe fn madd_two_round(a: __m256, b: __m256, c: __m256) -> __m256 {
        _mm256_add_ps(c, _mm256_mul_ps(a, b))
    }

    /// Single-rounding fused multiply-add lane op.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 and FMA support.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn madd_fused(a: __m256, b: __m256, c: __m256) -> __m256 {
        _mm256_fmadd_ps(a, b, c)
    }

    /// Generates the arithmetic kernel set once per madd flavor. `$madd`
    /// is the 8-lane multiply-add and `$smadd` its scalar-remainder twin;
    /// the pair must round identically (`mul`+`add` / `f32::mul_add`, as
    /// probe-tested) so remainder columns match their vector lanes'
    /// variant semantics.
    macro_rules! madd_kernels {
        ($modname:ident, $feat:literal, $madd:path, $smadd:expr) => {
            pub mod $modname {
                use super::*;

                /// 8x8 register-tile GEMM update (see the trait doc).
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features, and
                /// `apanel`/`bstrip` must hold at least `kc * 8` floats.
                #[target_feature(enable = $feat)]
                pub unsafe fn gemm_8x8(
                    apanel: &[f32],
                    bstrip: &[f32],
                    kc: usize,
                    acc: &mut [[f32; 8]; 8],
                ) {
                    debug_assert!(apanel.len() >= kc * 8 && bstrip.len() >= kc * 8);
                    let ap = apanel.as_ptr();
                    let bp = bstrip.as_ptr();
                    // SAFETY: acc rows are contiguous [f32; 8]; loads and
                    // the final stores stay inside the 8x8 array.
                    unsafe {
                        let mut c: [__m256; 8] = [
                            _mm256_loadu_ps(acc[0].as_ptr()),
                            _mm256_loadu_ps(acc[1].as_ptr()),
                            _mm256_loadu_ps(acc[2].as_ptr()),
                            _mm256_loadu_ps(acc[3].as_ptr()),
                            _mm256_loadu_ps(acc[4].as_ptr()),
                            _mm256_loadu_ps(acc[5].as_ptr()),
                            _mm256_loadu_ps(acc[6].as_ptr()),
                            _mm256_loadu_ps(acc[7].as_ptr()),
                        ];
                        // SAFETY: p < kc, so the 8-float rows at p*8 are in
                        // bounds per this function's length contract.
                        for p in 0..kc {
                            let bv = _mm256_loadu_ps(bp.add(p * 8));
                            let arow = ap.add(p * 8);
                            for (i, ci) in c.iter_mut().enumerate() {
                                let av = _mm256_broadcast_ss(&*arow.add(i));
                                *ci = $madd(av, bv, *ci);
                            }
                        }
                        for (i, ci) in c.iter().enumerate() {
                            _mm256_storeu_ps(acc[i].as_mut_ptr(), *ci);
                        }
                    }
                }

                /// `acc += c * src` over equal-length slices.
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features;
                /// `src.len() >= acc.len()` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn axpy(acc: &mut [f32], src: &[f32], cval: f32) {
                    debug_assert!(src.len() >= acc.len());
                    let n = acc.len();
                    let ap = acc.as_mut_ptr();
                    let sp = src.as_ptr();
                    let cv = _mm256_set1_ps(cval);
                    let mut x = 0usize;
                    // SAFETY: x + 8 <= n, so all lane loads/stores are in
                    // bounds for both slices.
                    unsafe {
                        while x + 8 <= n {
                            let a = _mm256_loadu_ps(ap.add(x));
                            let s = _mm256_loadu_ps(sp.add(x));
                            _mm256_storeu_ps(ap.add(x), $madd(cv, s, a));
                            x += 8;
                        }
                    }
                    // Remainder columns use the scalar twin of $madd so
                    // their rounding matches the vector lanes.
                    for i in x..n {
                        // SAFETY: i < n <= src.len().
                        unsafe {
                            let a = *ap.add(i);
                            let s = *sp.add(i);
                            *ap.add(i) = $smadd(cval, s, a);
                        }
                    }
                }

                /// Multi-tap axpy with the accumulator registers held
                /// across the tap loop (taps ascending per element, same
                /// chain as successive `axpy` calls).
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features;
                /// `ws.len() == segs.len()` and every `segs[t].len() >=
                /// acc.len()` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn axpy_taps(acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
                    debug_assert_eq!(ws.len(), segs.len());
                    let n = acc.len();
                    let ap = acc.as_mut_ptr();
                    let mut x = 0usize;
                    // 32-column blocks: 4 accumulator registers stay live
                    // across every tap, quartering acc load/store traffic
                    // versus per-tap axpy.
                    // SAFETY: x + 64 (resp. 32, 8) <= n and segs[t].len()
                    // >= n, so every lane access below is in bounds.
                    unsafe {
                        // 64-column blocks: 8 accumulator chains in
                        // flight. The per-column chain must stay in tap
                        // order, so the only latency lever is more
                        // independent columns per block.
                        while x + 64 <= n {
                            let mut a0 = _mm256_loadu_ps(ap.add(x));
                            let mut a1 = _mm256_loadu_ps(ap.add(x + 8));
                            let mut a2 = _mm256_loadu_ps(ap.add(x + 16));
                            let mut a3 = _mm256_loadu_ps(ap.add(x + 24));
                            let mut a4 = _mm256_loadu_ps(ap.add(x + 32));
                            let mut a5 = _mm256_loadu_ps(ap.add(x + 40));
                            let mut a6 = _mm256_loadu_ps(ap.add(x + 48));
                            let mut a7 = _mm256_loadu_ps(ap.add(x + 56));
                            for (t, seg) in segs.iter().enumerate() {
                                let cv = _mm256_set1_ps(*ws.get_unchecked(t));
                                let sp = seg.as_ptr().add(x);
                                a0 = $madd(cv, _mm256_loadu_ps(sp), a0);
                                a1 = $madd(cv, _mm256_loadu_ps(sp.add(8)), a1);
                                a2 = $madd(cv, _mm256_loadu_ps(sp.add(16)), a2);
                                a3 = $madd(cv, _mm256_loadu_ps(sp.add(24)), a3);
                                a4 = $madd(cv, _mm256_loadu_ps(sp.add(32)), a4);
                                a5 = $madd(cv, _mm256_loadu_ps(sp.add(40)), a5);
                                a6 = $madd(cv, _mm256_loadu_ps(sp.add(48)), a6);
                                a7 = $madd(cv, _mm256_loadu_ps(sp.add(56)), a7);
                            }
                            _mm256_storeu_ps(ap.add(x), a0);
                            _mm256_storeu_ps(ap.add(x + 8), a1);
                            _mm256_storeu_ps(ap.add(x + 16), a2);
                            _mm256_storeu_ps(ap.add(x + 24), a3);
                            _mm256_storeu_ps(ap.add(x + 32), a4);
                            _mm256_storeu_ps(ap.add(x + 40), a5);
                            _mm256_storeu_ps(ap.add(x + 48), a6);
                            _mm256_storeu_ps(ap.add(x + 56), a7);
                            x += 64;
                        }
                        while x + 32 <= n {
                            let mut a0 = _mm256_loadu_ps(ap.add(x));
                            let mut a1 = _mm256_loadu_ps(ap.add(x + 8));
                            let mut a2 = _mm256_loadu_ps(ap.add(x + 16));
                            let mut a3 = _mm256_loadu_ps(ap.add(x + 24));
                            for (t, seg) in segs.iter().enumerate() {
                                let cv = _mm256_set1_ps(*ws.get_unchecked(t));
                                let sp = seg.as_ptr().add(x);
                                a0 = $madd(cv, _mm256_loadu_ps(sp), a0);
                                a1 = $madd(cv, _mm256_loadu_ps(sp.add(8)), a1);
                                a2 = $madd(cv, _mm256_loadu_ps(sp.add(16)), a2);
                                a3 = $madd(cv, _mm256_loadu_ps(sp.add(24)), a3);
                            }
                            _mm256_storeu_ps(ap.add(x), a0);
                            _mm256_storeu_ps(ap.add(x + 8), a1);
                            _mm256_storeu_ps(ap.add(x + 16), a2);
                            _mm256_storeu_ps(ap.add(x + 24), a3);
                            x += 32;
                        }
                        while x + 8 <= n {
                            let mut a0 = _mm256_loadu_ps(ap.add(x));
                            for (t, seg) in segs.iter().enumerate() {
                                let cv = _mm256_set1_ps(*ws.get_unchecked(t));
                                a0 = $madd(cv, _mm256_loadu_ps(seg.as_ptr().add(x)), a0);
                            }
                            _mm256_storeu_ps(ap.add(x), a0);
                            x += 8;
                        }
                    }
                    for i in x..n {
                        // SAFETY: i < n <= segs[t].len() for every t.
                        unsafe {
                            let mut a = *ap.add(i);
                            for (t, seg) in segs.iter().enumerate() {
                                a = $smadd(*ws.get_unchecked(t), *seg.as_ptr().add(i), a);
                            }
                            *ap.add(i) = a;
                        }
                    }
                }

                /// Winograd channel reduction with the two 8-lane m-tile
                /// accumulators register-resident across the whole `cin`
                /// loop, output channels blocked by four to share each
                /// `v` load.
                ///
                /// # Safety
                ///
                /// Caller must have verified the `$feat` CPU features;
                /// `m_slab.len() >= cout * 16`, `v_slab.len() >= cin * 16`
                /// and `u.len() >= cout * cin` must hold.
                #[target_feature(enable = $feat)]
                pub unsafe fn wino_channel_reduce(
                    m_slab: &mut [f32],
                    u: &[[f32; 16]],
                    v_slab: &[f32],
                    cout: usize,
                    cin: usize,
                ) {
                    debug_assert!(m_slab.len() >= cout * 16);
                    debug_assert!(v_slab.len() >= cin * 16);
                    debug_assert!(u.len() >= cout * cin);
                    let vp = v_slab.as_ptr();
                    let mp = m_slab.as_mut_ptr();
                    let up = u.as_ptr() as *const f32;
                    let mut oo = 0usize;
                    // SAFETY: (whole body) all tile indices stay below the
                    // bounds asserted above; every load/store touches one
                    // 16-float tile at tile-index * 16.
                    unsafe {
                        while oo + 4 <= cout {
                            let mut m00 = _mm256_setzero_ps();
                            let mut m01 = _mm256_setzero_ps();
                            let mut m10 = _mm256_setzero_ps();
                            let mut m11 = _mm256_setzero_ps();
                            let mut m20 = _mm256_setzero_ps();
                            let mut m21 = _mm256_setzero_ps();
                            let mut m30 = _mm256_setzero_ps();
                            let mut m31 = _mm256_setzero_ps();
                            for cc in 0..cin {
                                let v0 = _mm256_loadu_ps(vp.add(cc * 16));
                                let v1 = _mm256_loadu_ps(vp.add(cc * 16 + 8));
                                let u0 = up.add((oo * cin + cc) * 16);
                                let u1 = up.add(((oo + 1) * cin + cc) * 16);
                                let u2 = up.add(((oo + 2) * cin + cc) * 16);
                                let u3 = up.add(((oo + 3) * cin + cc) * 16);
                                m00 = $madd(_mm256_loadu_ps(u0), v0, m00);
                                m01 = $madd(_mm256_loadu_ps(u0.add(8)), v1, m01);
                                m10 = $madd(_mm256_loadu_ps(u1), v0, m10);
                                m11 = $madd(_mm256_loadu_ps(u1.add(8)), v1, m11);
                                m20 = $madd(_mm256_loadu_ps(u2), v0, m20);
                                m21 = $madd(_mm256_loadu_ps(u2.add(8)), v1, m21);
                                m30 = $madd(_mm256_loadu_ps(u3), v0, m30);
                                m31 = $madd(_mm256_loadu_ps(u3.add(8)), v1, m31);
                            }
                            _mm256_storeu_ps(mp.add(oo * 16), m00);
                            _mm256_storeu_ps(mp.add(oo * 16 + 8), m01);
                            _mm256_storeu_ps(mp.add((oo + 1) * 16), m10);
                            _mm256_storeu_ps(mp.add((oo + 1) * 16 + 8), m11);
                            _mm256_storeu_ps(mp.add((oo + 2) * 16), m20);
                            _mm256_storeu_ps(mp.add((oo + 2) * 16 + 8), m21);
                            _mm256_storeu_ps(mp.add((oo + 3) * 16), m30);
                            _mm256_storeu_ps(mp.add((oo + 3) * 16 + 8), m31);
                            oo += 4;
                        }
                        while oo < cout {
                            let mut m0 = _mm256_setzero_ps();
                            let mut m1 = _mm256_setzero_ps();
                            for cc in 0..cin {
                                let ut = up.add((oo * cin + cc) * 16);
                                let v0 = _mm256_loadu_ps(vp.add(cc * 16));
                                let v1 = _mm256_loadu_ps(vp.add(cc * 16 + 8));
                                m0 = $madd(_mm256_loadu_ps(ut), v0, m0);
                                m1 = $madd(_mm256_loadu_ps(ut.add(8)), v1, m1);
                            }
                            _mm256_storeu_ps(mp.add(oo * 16), m0);
                            _mm256_storeu_ps(mp.add(oo * 16 + 8), m1);
                            oo += 1;
                        }
                    }
                }
            }
        };
    }

    madd_kernels!(
        two_round,
        "avx2",
        madd_two_round,
        |a: f32, b: f32, c: f32| c + a * b
    );
    madd_kernels!(fused, "avx2,fma", madd_fused, |a: f32, b: f32, c: f32| a
        .mul_add(b, c));

    // --- madd-free kernels, shared by both AVX2 variants ------------------

    /// Integer paired-lane multiply-accumulate: one `vpmaddwd` + `vpaddd`
    /// per tap per 8 output columns, with four accumulator registers live
    /// across the tap loop on the wide path. Integer adds are associative
    /// and `vpmaddwd` cannot saturate under the quantized executor's
    /// operand bounds (see the trait doc), so this is bit-identical to
    /// [`scalar::qmadd_taps`] for any blocking.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `ws.len() == segs.len()`
    /// and every `segs[t].len() >= acc.len()` must hold.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qmadd_taps(acc: &mut [i32], ws: &[i32], segs: &[&[i32]]) {
        debug_assert_eq!(ws.len(), segs.len());
        let n = acc.len();
        let ap = acc.as_mut_ptr();
        let mut x = 0usize;
        // SAFETY: x + 32 (resp. 8) <= n and segs[t].len() >= n, so every
        // lane load/store below is in bounds.
        unsafe {
            while x + 32 <= n {
                let mut a0 = _mm256_loadu_si256(ap.add(x) as *const __m256i);
                let mut a1 = _mm256_loadu_si256(ap.add(x + 8) as *const __m256i);
                let mut a2 = _mm256_loadu_si256(ap.add(x + 16) as *const __m256i);
                let mut a3 = _mm256_loadu_si256(ap.add(x + 24) as *const __m256i);
                for (t, seg) in segs.iter().enumerate() {
                    let wv = _mm256_set1_epi32(*ws.get_unchecked(t));
                    let sp = seg.as_ptr().add(x);
                    a0 = _mm256_add_epi32(
                        a0,
                        _mm256_madd_epi16(_mm256_loadu_si256(sp as *const __m256i), wv),
                    );
                    a1 = _mm256_add_epi32(
                        a1,
                        _mm256_madd_epi16(_mm256_loadu_si256(sp.add(8) as *const __m256i), wv),
                    );
                    a2 = _mm256_add_epi32(
                        a2,
                        _mm256_madd_epi16(_mm256_loadu_si256(sp.add(16) as *const __m256i), wv),
                    );
                    a3 = _mm256_add_epi32(
                        a3,
                        _mm256_madd_epi16(_mm256_loadu_si256(sp.add(24) as *const __m256i), wv),
                    );
                }
                _mm256_storeu_si256(ap.add(x) as *mut __m256i, a0);
                _mm256_storeu_si256(ap.add(x + 8) as *mut __m256i, a1);
                _mm256_storeu_si256(ap.add(x + 16) as *mut __m256i, a2);
                _mm256_storeu_si256(ap.add(x + 24) as *mut __m256i, a3);
                x += 32;
            }
            while x + 8 <= n {
                let mut a0 = _mm256_loadu_si256(ap.add(x) as *const __m256i);
                for (t, seg) in segs.iter().enumerate() {
                    let wv = _mm256_set1_epi32(*ws.get_unchecked(t));
                    let sv = _mm256_loadu_si256(seg.as_ptr().add(x) as *const __m256i);
                    a0 = _mm256_add_epi32(a0, _mm256_madd_epi16(sv, wv));
                }
                _mm256_storeu_si256(ap.add(x) as *mut __m256i, a0);
                x += 8;
            }
        }
        for i in x..n {
            // SAFETY: i < n <= segs[t].len() for every t.
            unsafe {
                let mut sum = *ap.add(i);
                for (t, seg) in segs.iter().enumerate() {
                    let w = *ws.get_unchecked(t);
                    let s = *seg.as_ptr().add(i);
                    sum += (s as i16 as i32) * (w as i16 as i32) + (s >> 16) * (w >> 16);
                }
                *ap.add(i) = sum;
            }
        }
    }

    /// Dual-channel [`qmadd_taps`]: each activation vector is loaded once
    /// and multiplied against both channels' weights, halving segment
    /// traffic through the tap loop. Same no-saturation argument, so
    /// bit-identical to two single-channel passes.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `acc0.len() ==
    /// acc1.len()`, `ws0.len() == ws1.len() == segs.len()`, and every
    /// `segs[t].len() >= acc0.len()` must hold.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qmadd_taps2(
        acc0: &mut [i32],
        acc1: &mut [i32],
        ws0: &[i32],
        ws1: &[i32],
        segs: &[&[i32]],
    ) {
        debug_assert_eq!(acc0.len(), acc1.len());
        debug_assert_eq!(ws0.len(), segs.len());
        debug_assert_eq!(ws1.len(), segs.len());
        let n = acc0.len();
        let p = acc0.as_mut_ptr();
        let q = acc1.as_mut_ptr();
        let mut x = 0usize;
        // SAFETY: x + 16 (resp. 8) <= n and segs[t].len() >= n, so every
        // lane load/store below is in bounds.
        unsafe {
            while x + 16 <= n {
                let mut p0 = _mm256_loadu_si256(p.add(x) as *const __m256i);
                let mut p1 = _mm256_loadu_si256(p.add(x + 8) as *const __m256i);
                let mut q0 = _mm256_loadu_si256(q.add(x) as *const __m256i);
                let mut q1 = _mm256_loadu_si256(q.add(x + 8) as *const __m256i);
                for (t, seg) in segs.iter().enumerate() {
                    let w0 = _mm256_set1_epi32(*ws0.get_unchecked(t));
                    let w1 = _mm256_set1_epi32(*ws1.get_unchecked(t));
                    let sp = seg.as_ptr().add(x);
                    let s0 = _mm256_loadu_si256(sp as *const __m256i);
                    let s1 = _mm256_loadu_si256(sp.add(8) as *const __m256i);
                    p0 = _mm256_add_epi32(p0, _mm256_madd_epi16(s0, w0));
                    p1 = _mm256_add_epi32(p1, _mm256_madd_epi16(s1, w0));
                    q0 = _mm256_add_epi32(q0, _mm256_madd_epi16(s0, w1));
                    q1 = _mm256_add_epi32(q1, _mm256_madd_epi16(s1, w1));
                }
                _mm256_storeu_si256(p.add(x) as *mut __m256i, p0);
                _mm256_storeu_si256(p.add(x + 8) as *mut __m256i, p1);
                _mm256_storeu_si256(q.add(x) as *mut __m256i, q0);
                _mm256_storeu_si256(q.add(x + 8) as *mut __m256i, q1);
                x += 16;
            }
            while x + 8 <= n {
                let mut p0 = _mm256_loadu_si256(p.add(x) as *const __m256i);
                let mut q0 = _mm256_loadu_si256(q.add(x) as *const __m256i);
                for (t, seg) in segs.iter().enumerate() {
                    let s0 = _mm256_loadu_si256(seg.as_ptr().add(x) as *const __m256i);
                    p0 = _mm256_add_epi32(
                        p0,
                        _mm256_madd_epi16(s0, _mm256_set1_epi32(*ws0.get_unchecked(t))),
                    );
                    q0 = _mm256_add_epi32(
                        q0,
                        _mm256_madd_epi16(s0, _mm256_set1_epi32(*ws1.get_unchecked(t))),
                    );
                }
                _mm256_storeu_si256(p.add(x) as *mut __m256i, p0);
                _mm256_storeu_si256(q.add(x) as *mut __m256i, q0);
                x += 8;
            }
        }
        for i in x..n {
            // SAFETY: i < n <= segs[t].len() for every t.
            unsafe {
                let mut s0 = *p.add(i);
                let mut s1 = *q.add(i);
                for (t, seg) in segs.iter().enumerate() {
                    let s = *seg.as_ptr().add(i);
                    let (slo, shi) = (s as i16 as i32, s >> 16);
                    let w0 = *ws0.get_unchecked(t);
                    let w1 = *ws1.get_unchecked(t);
                    s0 += slo * (w0 as i16 as i32) + shi * (w0 >> 16);
                    s1 += slo * (w1 as i16 as i32) + shi * (w1 >> 16);
                }
                *p.add(i) = s0;
                *q.add(i) = s1;
            }
        }
    }

    /// `f32::round` (half away from zero) on 8 lanes, then clamp to the
    /// wire range `[-zp, 255 - zp]`, returned as *integral floats*.
    ///
    /// `trunc(f + copysign(0.5, f))` equals `f.round()` exactly for
    /// `|f| < 2^22` (the add is exact: `ulp(f) <= 0.25` there); larger
    /// magnitudes land outside the clamp bounds (`<= 255`) on both paths,
    /// so the clamped result is bit-identical to the scalar chain
    /// `((f.round() as i32 + zp).clamp(0, 255) - zp)` for every value the
    /// quantized executor can produce (finite, `|round| < i32::MAX`).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn round_clamp_wire8(f: __m256, zp: i32) -> __m256 {
        let half = _mm256_or_ps(_mm256_and_ps(f, _mm256_set1_ps(-0.0)), _mm256_set1_ps(0.5));
        let t =
            _mm256_round_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(_mm256_add_ps(f, half));
        let lo = _mm256_set1_ps(-(zp as f32));
        let hi = _mm256_set1_ps((255 - zp) as f32);
        _mm256_min_ps(_mm256_max_ps(t, lo), hi)
    }

    /// The [`super::QuantEpilogue`] chain on 8 accumulator lanes, up to
    /// and including the wire clamp — returned as integral floats (the
    /// wire value; still to be converted or rescaled by the caller).
    /// Multiply and add are separate (unfused) ops mirroring the scalar
    /// reference; see [`x86::round_clamp_wire8`] for the rounding
    /// argument.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn requant_wire8(acc: __m256i, e: &super::QuantEpilogue) -> __m256 {
        // SAFETY: pure register ops.
        unsafe {
            let af = _mm256_cvtepi32_ps(acc);
            let mut v = _mm256_add_ps(
                _mm256_mul_ps(af, _mm256_set1_ps(e.scale_io)),
                _mm256_set1_ps(e.bias),
            );
            v = match e.act {
                RowAct::Linear => v,
                RowAct::Relu => _mm256_max_ps(v, _mm256_setzero_ps()),
                RowAct::PRelu(a) => {
                    let neg = _mm256_mul_ps(_mm256_set1_ps(a), v);
                    let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(v, _mm256_setzero_ps());
                    _mm256_blendv_ps(neg, v, keep)
                }
            };
            round_clamp_wire8(_mm256_div_ps(v, _mm256_set1_ps(e.out_scale)), e.zero_point)
        }
    }

    /// Packs two integral-float wire vectors into `(lo & 0xffff) | (hi <<
    /// 16)` words. `cvtps_epi32` is exact on integral values in
    /// `[-255, 255]` regardless of rounding mode.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pack_wire8(lo: __m256, hi: __m256) -> __m256i {
        _mm256_or_si256(
            _mm256_and_si256(_mm256_cvtps_epi32(lo), _mm256_set1_epi32(0xffff)),
            _mm256_slli_epi32::<16>(_mm256_cvtps_epi32(hi)),
        )
    }

    /// Vectorized [`scalar::qrequant_pack_row`], 8 column pairs at a time.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `acc0.len()` and
    /// `acc1.len()` must be at least `dst.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qrequant_pack_row(
        acc0: &[i32],
        acc1: &[i32],
        dst: &mut [i32],
        e0: &super::QuantEpilogue,
        e1: Option<&super::QuantEpilogue>,
    ) {
        let n = dst.len();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n <= acc{0,1}.len() for every lane access.
        unsafe {
            while x + 8 <= n {
                let lo = requant_wire8(
                    _mm256_loadu_si256(acc0.as_ptr().add(x) as *const __m256i),
                    e0,
                );
                let hi = match e1 {
                    Some(e1) => requant_wire8(
                        _mm256_loadu_si256(acc1.as_ptr().add(x) as *const __m256i),
                        e1,
                    ),
                    None => _mm256_setzero_ps(),
                };
                _mm256_storeu_si256(dst.as_mut_ptr().add(x) as *mut __m256i, pack_wire8(lo, hi));
                x += 8;
            }
        }
        scalar::qrequant_pack_row(&acc0[x..], &acc1[x..], &mut dst[x..], e0, e1);
    }

    /// Vectorized [`scalar::qresidual_pack_row`]: requantize each lane,
    /// dequantize, add the dequantized `first` lane, requantize onto the
    /// widened wire, pack. All float steps are unfused per-lane ops.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `acc0`/`acc1`/`first` must
    /// be at least `dst.len()` long.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub unsafe fn qresidual_pack_row(
        acc0: &[i32],
        acc1: &[i32],
        first: &[i32],
        dst: &mut [i32],
        e0: &super::QuantEpilogue,
        e1: Option<&super::QuantEpilogue>,
        first_scale: f32,
        wide_scale: f32,
        wide_zp: i32,
    ) {
        let n = dst.len();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n and every source is at least n long.
        unsafe {
            let vfirst = _mm256_set1_ps(first_scale);
            let vwide = _mm256_set1_ps(wide_scale);
            while x + 8 <= n {
                let fv = _mm256_loadu_si256(first.as_ptr().add(x) as *const __m256i);
                // Sign-extend the two packed 16-bit lanes.
                let flo = _mm256_cvtepi32_ps(_mm256_srai_epi32::<16>(_mm256_slli_epi32::<16>(fv)));
                let fhi = _mm256_cvtepi32_ps(_mm256_srai_epi32::<16>(fv));
                let a0 = _mm256_mul_ps(
                    _mm256_set1_ps(e0.out_scale),
                    requant_wire8(
                        _mm256_loadu_si256(acc0.as_ptr().add(x) as *const __m256i),
                        e0,
                    ),
                );
                let s0 = _mm256_div_ps(_mm256_add_ps(a0, _mm256_mul_ps(vfirst, flo)), vwide);
                let lo = round_clamp_wire8(s0, wide_zp);
                let hi = match e1 {
                    Some(e1) => {
                        let a1 = _mm256_mul_ps(
                            _mm256_set1_ps(e1.out_scale),
                            requant_wire8(
                                _mm256_loadu_si256(acc1.as_ptr().add(x) as *const __m256i),
                                e1,
                            ),
                        );
                        let s1 =
                            _mm256_div_ps(_mm256_add_ps(a1, _mm256_mul_ps(vfirst, fhi)), vwide);
                        round_clamp_wire8(s1, wide_zp)
                    }
                    None => _mm256_setzero_ps(),
                };
                _mm256_storeu_si256(dst.as_mut_ptr().add(x) as *mut __m256i, pack_wire8(lo, hi));
                x += 8;
            }
        }
        scalar::qresidual_pack_row(
            &acc0[x..],
            &acc1[x..],
            &first[x..],
            &mut dst[x..],
            e0,
            e1,
            first_scale,
            wide_scale,
            wide_zp,
        );
    }

    /// Vectorized [`scalar::qhead_row`]: the requant chain with an
    /// optional input residual, emitting dequantized levels.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `acc` (and the input row,
    /// when present) must be at least `vals.len()` long.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qhead_row(
        acc: &[i32],
        input: Option<(&[i32], f32)>,
        vals: &mut [f32],
        e: &super::QuantEpilogue,
    ) {
        let n = vals.len();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n and every source is at least n long.
        unsafe {
            while x + 8 <= n {
                let af =
                    _mm256_cvtepi32_ps(_mm256_loadu_si256(acc.as_ptr().add(x) as *const __m256i));
                let mut v = _mm256_add_ps(
                    _mm256_mul_ps(af, _mm256_set1_ps(e.scale_io)),
                    _mm256_set1_ps(e.bias),
                );
                v = match e.act {
                    RowAct::Linear => v,
                    RowAct::Relu => _mm256_max_ps(v, _mm256_setzero_ps()),
                    RowAct::PRelu(a) => {
                        let neg = _mm256_mul_ps(_mm256_set1_ps(a), v);
                        let keep = _mm256_cmp_ps::<_CMP_GE_OQ>(v, _mm256_setzero_ps());
                        _mm256_blendv_ps(neg, v, keep)
                    }
                };
                if let Some((ir, iscale)) = input {
                    let iv = _mm256_loadu_si256(ir.as_ptr().add(x) as *const __m256i);
                    let il =
                        _mm256_cvtepi32_ps(_mm256_srai_epi32::<16>(_mm256_slli_epi32::<16>(iv)));
                    v = _mm256_add_ps(v, _mm256_mul_ps(_mm256_set1_ps(iscale), il));
                }
                let wire =
                    round_clamp_wire8(_mm256_div_ps(v, _mm256_set1_ps(e.out_scale)), e.zero_point);
                // Round-trip through integer lanes like the scalar chain's
                // `as i32` / `as f32` pair: exact for integral |wire| <=
                // 255, and it canonicalizes a rounded `-0.0` to `+0.0` so
                // the dequantized output is bit-identical.
                let wi = _mm256_cvtepi32_ps(_mm256_cvtps_epi32(wire));
                _mm256_storeu_ps(
                    vals.as_mut_ptr().add(x),
                    _mm256_mul_ps(_mm256_set1_ps(e.out_scale), wi),
                );
                x += 8;
            }
        }
        scalar::qhead_row(
            &acc[x..],
            input.map(|(ir, s)| (&ir[x..], s)),
            &mut vals[x..],
            e,
        );
    }

    /// Vectorized [`scalar::qquantize_row`]: quantize real inputs onto the
    /// zero-point-subtracted wire, low lane only.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `src.len() >= dst.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn qquantize_row(src: &[f32], dst: &mut [i32], scale: f32, zp: i32) {
        let n = dst.len();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n <= src.len() for every lane access.
        unsafe {
            let vscale = _mm256_set1_ps(scale);
            let mask = _mm256_set1_epi32(0xffff);
            while x + 8 <= n {
                let f = _mm256_div_ps(_mm256_loadu_ps(src.as_ptr().add(x)), vscale);
                let wire = _mm256_cvtps_epi32(round_clamp_wire8(f, zp));
                _mm256_storeu_si256(
                    dst.as_mut_ptr().add(x) as *mut __m256i,
                    _mm256_and_si256(wire, mask),
                );
                x += 8;
            }
        }
        scalar::qquantize_row(&src[x..], &mut dst[x..], scale, zp);
    }

    /// Winograd input transform, SSE 4-lane over the row/column
    /// butterflies (pure add/sub: bit-identical to the scalar transform
    /// under any lane arrangement).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 (implies SSE) support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn wino_input_transform(d: &[f32; 16]) -> [f32; 16] {
        let mut out = [0.0f32; 16];
        // SAFETY: all loads/stores address one of the four 4-float rows of
        // the 16-float tiles.
        unsafe {
            let p = d.as_ptr();
            let d0 = _mm_loadu_ps(p);
            let d1 = _mm_loadu_ps(p.add(4));
            let d2 = _mm_loadu_ps(p.add(8));
            let d3 = _mm_loadu_ps(p.add(12));
            // Row pass (Bᵀ · d), 4 columns per op.
            let t0 = _mm_sub_ps(d0, d2);
            let t1 = _mm_add_ps(d1, d2);
            let t2 = _mm_sub_ps(d2, d1);
            let t3 = _mm_sub_ps(d1, d3);
            // Column pass (· B) via transpose, the same butterflies, and
            // transpose back: per-element operand pairs are unchanged.
            let (c0, c1, c2, c3) = transpose4(t0, t1, t2, t3);
            let o0 = _mm_sub_ps(c0, c2);
            let o1 = _mm_add_ps(c1, c2);
            let o2 = _mm_sub_ps(c2, c1);
            let o3 = _mm_sub_ps(c1, c3);
            let (r0, r1, r2, r3) = transpose4(o0, o1, o2, o3);
            let q = out.as_mut_ptr();
            _mm_storeu_ps(q, r0);
            _mm_storeu_ps(q.add(4), r1);
            _mm_storeu_ps(q.add(8), r2);
            _mm_storeu_ps(q.add(12), r3);
        }
        out
    }

    /// Fused interior gather + input transform over all channels (see
    /// the trait method doc): strided 4-float row loads straight from
    /// the channel planes, the same butterflies as
    /// [`wino_input_transform`], one store per tile row.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support, and that for every
    /// channel the 4x4 window is in bounds: `(cin-1)*plane_len + base +
    /// 3*stride + 4 <= src.len()` and `v_slab.len() >= cin * 16`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn wino_input_transform_interior(
        src: &[f32],
        plane_len: usize,
        base: usize,
        stride: usize,
        v_slab: &mut [f32],
        cin: usize,
    ) {
        debug_assert!(v_slab.len() >= cin * 16);
        debug_assert!(cin == 0 || (cin - 1) * plane_len + base + 3 * stride + 4 <= src.len());
        // SAFETY: the caller guarantees every strided 4-float row load
        // is in bounds; stores stay below `cin * 16`.
        unsafe {
            let q = v_slab.as_mut_ptr();
            for cc in 0..cin {
                let p = src.as_ptr().add(cc * plane_len + base);
                let d0 = _mm_loadu_ps(p);
                let d1 = _mm_loadu_ps(p.add(stride));
                let d2 = _mm_loadu_ps(p.add(2 * stride));
                let d3 = _mm_loadu_ps(p.add(3 * stride));
                let t0 = _mm_sub_ps(d0, d2);
                let t1 = _mm_add_ps(d1, d2);
                let t2 = _mm_sub_ps(d2, d1);
                let t3 = _mm_sub_ps(d1, d3);
                let (c0, c1, c2, c3) = transpose4(t0, t1, t2, t3);
                let o0 = _mm_sub_ps(c0, c2);
                let o1 = _mm_add_ps(c1, c2);
                let o2 = _mm_sub_ps(c2, c1);
                let o3 = _mm_sub_ps(c1, c3);
                let (r0, r1, r2, r3) = transpose4(o0, o1, o2, o3);
                let qq = q.add(cc * 16);
                _mm_storeu_ps(qq, r0);
                _mm_storeu_ps(qq.add(4), r1);
                _mm_storeu_ps(qq.add(8), r2);
                _mm_storeu_ps(qq.add(12), r3);
            }
        }
    }

    /// Winograd output transform (2x2 from the 4x4 m-tile). Pure add/sub.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 (implies SSE) support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn wino_output_transform(m: &[f32; 16]) -> [f32; 4] {
        // SAFETY: loads address the four 4-float rows of the tile.
        unsafe {
            let p = m.as_ptr();
            let m0 = _mm_loadu_ps(p);
            let m1 = _mm_loadu_ps(p.add(4));
            let m2 = _mm_loadu_ps(p.add(8));
            let m3 = _mm_loadu_ps(p.add(12));
            // Row pass (Aᵀ · m): two 4-wide rows.
            let t0 = _mm_add_ps(_mm_add_ps(m0, m1), m2);
            let t1 = _mm_sub_ps(_mm_sub_ps(m1, m2), m3);
            // Column pass: scalar butterflies on the 8 staged values, the
            // same operand pairs as the scalar transform.
            let mut t = [0.0f32; 8];
            _mm_storeu_ps(t.as_mut_ptr(), t0);
            _mm_storeu_ps(t.as_mut_ptr().add(4), t1);
            [
                t[0] + t[1] + t[2],
                t[1] - t[2] - t[3],
                t[4] + t[5] + t[6],
                t[5] - t[6] - t[7],
            ]
        }
    }

    /// 4x4 transpose of four SSE rows.
    ///
    /// # Safety
    ///
    /// Caller must have verified SSE support (implied by AVX2).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn transpose4(
        r0: __m128,
        r1: __m128,
        r2: __m128,
        r3: __m128,
    ) -> (__m128, __m128, __m128, __m128) {
        let lo01 = _mm_unpacklo_ps(r0, r1);
        let hi01 = _mm_unpackhi_ps(r0, r1);
        let lo23 = _mm_unpacklo_ps(r2, r3);
        let hi23 = _mm_unpackhi_ps(r2, r3);
        (
            _mm_movelh_ps(lo01, lo23),
            _mm_movehl_ps(lo23, lo01),
            _mm_movelh_ps(hi01, hi23),
            _mm_movehl_ps(hi23, hi01),
        )
    }

    /// Fused epilogue head: `row = act(row + bias)`. No multiply-add
    /// pairs, so one implementation serves both AVX2 variants and is
    /// bit-identical to scalar: the ReLU lane `max(t, +0.0)` (zero in the
    /// second operand) matches `f32::max` on -0.0/NaN, and the PReLU
    /// `GE_OQ` compare sends NaN to the `slope * t` arm exactly like the
    /// scalar `if t >= 0.0` test.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bias_act_row(row: &mut [f32], bias: f32, act: RowAct) {
        let n = row.len();
        let p = row.as_mut_ptr();
        let bv = _mm256_set1_ps(bias);
        let mut x = 0usize;
        // SAFETY: x + 8 <= n for every lane access.
        unsafe {
            match act {
                RowAct::Linear => {
                    while x + 8 <= n {
                        let t = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), bv);
                        _mm256_storeu_ps(p.add(x), t);
                        x += 8;
                    }
                }
                RowAct::Relu => {
                    let zero = _mm256_setzero_ps();
                    while x + 8 <= n {
                        let t = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), bv);
                        _mm256_storeu_ps(p.add(x), _mm256_max_ps(t, zero));
                        x += 8;
                    }
                }
                RowAct::PRelu(al) => {
                    let av = _mm256_set1_ps(al);
                    let zero = _mm256_setzero_ps();
                    while x + 8 <= n {
                        let t = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), bv);
                        let keep = _mm256_cmp_ps(t, zero, _CMP_GE_OQ);
                        let neg = _mm256_mul_ps(av, t);
                        _mm256_storeu_ps(p.add(x), _mm256_blendv_ps(neg, t, keep));
                        x += 8;
                    }
                }
            }
        }
        scalar::bias_act_row(&mut row[x..], bias, act);
    }

    /// Residual add, 8 lanes at a time.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `other.len() >= row.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_row(row: &mut [f32], other: &[f32]) {
        debug_assert!(other.len() >= row.len());
        let n = row.len();
        let p = row.as_mut_ptr();
        let q = other.as_ptr();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n <= other.len() for every lane access.
        unsafe {
            while x + 8 <= n {
                let s = _mm256_add_ps(_mm256_loadu_ps(p.add(x)), _mm256_loadu_ps(q.add(x)));
                _mm256_storeu_ps(p.add(x), s);
                x += 8;
            }
        }
        scalar::add_row(&mut row[x..], &other[x..n]);
    }

    /// Doubled write, 8 lanes at a time.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub unsafe fn double_row(row: &mut [f32]) {
        let n = row.len();
        let p = row.as_mut_ptr();
        let mut x = 0usize;
        // SAFETY: x + 8 <= n for every lane access.
        unsafe {
            while x + 8 <= n {
                let v = _mm256_loadu_ps(p.add(x));
                _mm256_storeu_ps(p.add(x), _mm256_add_ps(v, v));
                x += 8;
            }
        }
        scalar::double_row(&mut row[x..]);
    }
}

/// Implements the trait for one AVX2 flavor by delegating every method to
/// the matching `x86` free functions. Both structs are only ever handed
/// out by [`microkernel`] after `is_x86_feature_detected!` confirmed the
/// features, which is the safety argument each `unsafe` block relies on.
#[cfg(target_arch = "x86_64")]
macro_rules! avx2_trait_impl {
    ($name:ident, $variant:expr, $madd_mod:ident) => {
        struct $name;

        impl Microkernel for $name {
            fn variant(&self) -> KernelVariant {
                $variant
            }

            fn gemm_8x8(&self, apanel: &[f32], bstrip: &[f32], kc: usize, acc: &mut [[f32; 8]; 8]) {
                assert!(apanel.len() >= kc * 8, "A panel too short");
                assert!(bstrip.len() >= kc * 8, "B strip too short");
                // SAFETY: features verified at dispatch (see macro doc);
                // panel lengths asserted above.
                unsafe { x86::$madd_mod::gemm_8x8(apanel, bstrip, kc, acc) }
            }

            fn axpy(&self, acc: &mut [f32], src: &[f32], c: f32) {
                assert!(src.len() >= acc.len(), "src shorter than acc");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::$madd_mod::axpy(acc, src, c) }
            }

            fn axpy_taps(&self, acc: &mut [f32], ws: &[f32], segs: &[&[f32]]) {
                assert_eq!(ws.len(), segs.len(), "one weight per tap");
                for seg in segs {
                    assert!(seg.len() >= acc.len(), "tap segment shorter than acc");
                }
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::$madd_mod::axpy_taps(acc, ws, segs) }
            }

            fn qmadd_taps(&self, acc: &mut [i32], ws: &[i32], segs: &[&[i32]]) {
                assert_eq!(ws.len(), segs.len(), "one packed weight per tap");
                for seg in segs {
                    assert!(seg.len() >= acc.len(), "tap segment shorter than acc");
                }
                // Integer kernel shared by both AVX2 variants: `vpmaddwd`
                // has exactly one (rounding-free) form, no madd flavor.
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::qmadd_taps(acc, ws, segs) }
            }

            fn qmadd_taps2(
                &self,
                acc0: &mut [i32],
                acc1: &mut [i32],
                ws0: &[i32],
                ws1: &[i32],
                segs: &[&[i32]],
            ) {
                assert_eq!(acc0.len(), acc1.len(), "accumulator rows differ");
                assert_eq!(ws0.len(), segs.len(), "one packed weight per tap");
                assert_eq!(ws1.len(), segs.len(), "one packed weight per tap");
                for seg in segs {
                    assert!(seg.len() >= acc0.len(), "tap segment shorter than acc");
                }
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::qmadd_taps2(acc0, acc1, ws0, ws1, segs) }
            }

            fn qrequant_pack_row(
                &self,
                acc0: &[i32],
                acc1: &[i32],
                dst: &mut [i32],
                e0: &QuantEpilogue,
                e1: Option<&QuantEpilogue>,
            ) {
                assert!(acc0.len() >= dst.len(), "acc0 shorter than dst");
                assert!(acc1.len() >= dst.len(), "acc1 shorter than dst");
                // Shared by both AVX2 variants: the epilogue mirrors the
                // scalar chain with unfused mul/add, so there is no madd
                // flavor to diverge on.
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::qrequant_pack_row(acc0, acc1, dst, e0, e1) }
            }

            fn qresidual_pack_row(
                &self,
                acc0: &[i32],
                acc1: &[i32],
                first: &[i32],
                dst: &mut [i32],
                e0: &QuantEpilogue,
                e1: Option<&QuantEpilogue>,
                first_scale: f32,
                wide_scale: f32,
                wide_zp: i32,
            ) {
                assert!(acc0.len() >= dst.len(), "acc0 shorter than dst");
                assert!(acc1.len() >= dst.len(), "acc1 shorter than dst");
                assert!(first.len() >= dst.len(), "first shorter than dst");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe {
                    x86::qresidual_pack_row(
                        acc0,
                        acc1,
                        first,
                        dst,
                        e0,
                        e1,
                        first_scale,
                        wide_scale,
                        wide_zp,
                    )
                }
            }

            fn qhead_row(
                &self,
                acc: &[i32],
                input: Option<(&[i32], f32)>,
                vals: &mut [f32],
                e: &QuantEpilogue,
            ) {
                assert!(acc.len() >= vals.len(), "acc shorter than vals");
                if let Some((ir, _)) = input {
                    assert!(ir.len() >= vals.len(), "input row shorter than vals");
                }
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::qhead_row(acc, input, vals, e) }
            }

            fn qquantize_row(&self, src: &[f32], dst: &mut [i32], scale: f32, zp: i32) {
                assert!(src.len() >= dst.len(), "src shorter than dst");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::qquantize_row(src, dst, scale, zp) }
            }

            fn wino_input_transform(&self, d: &[f32; 16]) -> [f32; 16] {
                // SAFETY: features verified at dispatch.
                unsafe { x86::wino_input_transform(d) }
            }

            fn wino_output_transform(&self, m: &[f32; 16]) -> [f32; 4] {
                // SAFETY: features verified at dispatch.
                unsafe { x86::wino_output_transform(m) }
            }

            fn wino_input_transform_interior(
                &self,
                src: &[f32],
                plane_len: usize,
                base: usize,
                stride: usize,
                v_slab: &mut [f32],
                cin: usize,
            ) {
                assert!(v_slab.len() >= cin * 16, "v slab too short");
                assert!(
                    cin == 0 || (cin - 1) * plane_len + base + 3 * stride + 4 <= src.len(),
                    "interior window out of bounds"
                );
                // SAFETY: features verified at dispatch; bounds asserted.
                unsafe {
                    x86::wino_input_transform_interior(src, plane_len, base, stride, v_slab, cin)
                }
            }

            fn wino_channel_reduce(
                &self,
                m_slab: &mut [f32],
                u: &[[f32; 16]],
                v_slab: &[f32],
                cout: usize,
                cin: usize,
            ) {
                assert!(m_slab.len() >= cout * 16, "m slab too short");
                assert!(v_slab.len() >= cin * 16, "v slab too short");
                assert!(u.len() >= cout * cin, "u tile table too short");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::$madd_mod::wino_channel_reduce(m_slab, u, v_slab, cout, cin) }
            }

            fn bias_act_row(&self, row: &mut [f32], bias: f32, act: RowAct) {
                // SAFETY: features verified at dispatch.
                unsafe { x86::bias_act_row(row, bias, act) }
            }

            fn add_row(&self, row: &mut [f32], other: &[f32]) {
                assert!(other.len() >= row.len(), "residual row too short");
                // SAFETY: features verified at dispatch; lengths asserted.
                unsafe { x86::add_row(row, other) }
            }

            fn double_row(&self, row: &mut [f32]) {
                // SAFETY: features verified at dispatch.
                unsafe { x86::double_row(row) }
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
avx2_trait_impl!(Avx2Kernel, KernelVariant::Avx2, two_round);
#[cfg(target_arch = "x86_64")]
avx2_trait_impl!(Avx2FmaKernel, KernelVariant::Avx2Fma, fused);

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded(n: usize, seed: u64) -> Vec<f32> {
        crate::Tensor::randn(&[n.max(1)], 0.0, 1.0, seed).into_vec()[..n].to_vec()
    }

    /// Rough per-kernel GFLOP/s probe for hand-tuning; run with
    /// `cargo test --release -- --ignored --nocapture kernel_throughput`.
    #[test]
    #[ignore]
    fn kernel_throughput_probe() {
        use std::time::Instant;
        let mk = default_microkernel();
        println!("variant: {}", mk.variant().name());
        // axpy_taps: 400 taps x 316 columns (the m5 head shape).
        let (nt, n) = (400usize, 316usize);
        let ws = seeded(nt, 1);
        let backing = seeded(n + 64, 2);
        let segs: Vec<&[f32]> = (0..nt).map(|t| &backing[t % 32..]).collect();
        let mut acc = seeded(n, 3);
        let reps = 2000;
        let t0 = Instant::now();
        for _ in 0..reps {
            mk.axpy_taps(&mut acc, &ws, &segs);
        }
        let el = t0.elapsed().as_secs_f64();
        println!(
            "axpy_taps {}x{}: {:.1} GFLOP/s",
            nt,
            n,
            (2.0 * nt as f64 * n as f64 * reps as f64) / el / 1e9
        );
        // wino_channel_reduce: 16x16 channels (the m5 feature layers).
        let (cout, cin) = (16usize, 16usize);
        let uflat = seeded(cout * cin * 16, 4);
        let u: Vec<[f32; 16]> = uflat
            .chunks_exact(16)
            .map(|c| c.try_into().unwrap())
            .collect();
        let v = seeded(cin * 16, 5);
        let mut m = vec![0.0f32; cout * 16];
        let reps = 100_000;
        let t0 = Instant::now();
        for _ in 0..reps {
            mk.wino_channel_reduce(&mut m, &u, &v, cout, cin);
        }
        let el = t0.elapsed().as_secs_f64();
        println!(
            "wino_channel_reduce {}x{}: {:.1} GFLOP/s",
            cout,
            cin,
            (2.0 * cout as f64 * cin as f64 * 16.0 * reps as f64) / el / 1e9
        );
        assert!(acc[0].is_finite() && m[0].is_finite());
    }

    /// Variants whose arithmetic must equal scalar bit-for-bit.
    fn two_round_variants() -> Vec<KernelVariant> {
        detected_variants()
            .iter()
            .copied()
            .filter(|v| !v.fused_madd())
            .collect()
    }

    #[test]
    fn scalar_is_always_detected_and_first() {
        let vs = detected_variants();
        assert_eq!(vs[0], KernelVariant::Scalar);
        assert!(KernelVariant::Scalar.available());
    }

    #[test]
    fn names_round_trip() {
        for v in [
            KernelVariant::Scalar,
            KernelVariant::Avx2,
            KernelVariant::Avx2Fma,
            KernelVariant::Neon,
        ] {
            assert_eq!(KernelVariant::parse(v.name()), Some(v));
        }
        assert_eq!(KernelVariant::parse("mmx"), None);
    }

    #[test]
    fn set_variant_returns_previous_and_degrades() {
        let _guard = variant_test_lock();
        let base = kernel_variant();
        let prev = set_kernel_variant(KernelVariant::Scalar);
        assert_eq!(prev, base);
        assert_eq!(kernel_variant(), KernelVariant::Scalar);
        // Neon is never available on x86 (nor under force-scalar):
        // requesting it must degrade to the best available variant, not
        // panic or silently dispatch a stub.
        if !KernelVariant::Neon.available() {
            set_kernel_variant(KernelVariant::Neon);
            assert!(kernel_variant().available());
        }
        set_kernel_variant(base);
    }

    #[test]
    fn unavailable_variant_dispatches_to_available_kernel() {
        if !KernelVariant::Neon.available() {
            let mk = microkernel(KernelVariant::Neon);
            assert!(mk.variant().available());
        }
    }

    #[test]
    fn gemm_tile_two_round_variants_match_scalar_bitwise() {
        for kc in [1usize, 2, 7, 64, 256] {
            let a = seeded(kc * 8, 11 + kc as u64);
            let b = seeded(kc * 8, 23 + kc as u64);
            let mut want = [[0.1f32; 8]; 8];
            microkernel(KernelVariant::Scalar).gemm_8x8(&a, &b, kc, &mut want);
            for v in two_round_variants() {
                let mut got = [[0.1f32; 8]; 8];
                microkernel(v).gemm_8x8(&a, &b, kc, &mut got);
                for i in 0..8 {
                    for j in 0..8 {
                        assert_eq!(
                            want[i][j].to_bits(),
                            got[i][j].to_bits(),
                            "{} kc={kc} ({i},{j})",
                            v.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fma_gemm_tile_is_close_and_self_consistent() {
        if !KernelVariant::Avx2Fma.available() {
            return;
        }
        let kc = 96;
        let a = seeded(kc * 8, 31);
        let b = seeded(kc * 8, 37);
        let mut sc = [[0.0f32; 8]; 8];
        microkernel(KernelVariant::Scalar).gemm_8x8(&a, &b, kc, &mut sc);
        let mut f1 = [[0.0f32; 8]; 8];
        let mut f2 = [[0.0f32; 8]; 8];
        let mk = microkernel(KernelVariant::Avx2Fma);
        mk.gemm_8x8(&a, &b, kc, &mut f1);
        mk.gemm_8x8(&a, &b, kc, &mut f2);
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(f1[i][j].to_bits(), f2[i][j].to_bits(), "not deterministic");
                assert!(
                    (f1[i][j] - sc[i][j]).abs() < 1e-3 * (kc as f32).sqrt(),
                    "fma too far from scalar at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn axpy_taps_matches_sequential_axpy_per_variant() {
        // The multi-tap kernel must equal T successive axpy calls *within
        // every variant* (that is the associativity contract the direct
        // convolution relies on).
        for v in detected_variants().iter().copied() {
            let mk = microkernel(v);
            for (n, t) in [(1usize, 1usize), (7, 3), (33, 5), (64, 25), (100, 2)] {
                let ws = seeded(t, 41 + n as u64);
                let backing: Vec<Vec<f32>> = (0..t)
                    .map(|i| seeded(n + 3, 100 + i as u64 + n as u64))
                    .collect();
                let segs: Vec<&[f32]> = backing.iter().map(|s| &s[..]).collect();
                let mut seq = seeded(n, 7);
                for (w, seg) in ws.iter().zip(&segs) {
                    mk.axpy(&mut seq, &seg[..n], *w);
                }
                let mut multi = seeded(n, 7);
                mk.axpy_taps(&mut multi, &ws, &segs);
                for (i, (a, b)) in seq.iter().zip(&multi).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{} n={n} t={t} x={i}", v.name());
                }
            }
        }
    }

    #[test]
    fn qmadd_taps_known_answer() {
        // One tap, one column: 2*5 + 3*7 = 31 on top of acc = 10.
        let pack = |lo: i32, hi: i32| (lo & 0xFFFF) | (hi << 16);
        let seg = [pack(5, 7)];
        let mut acc = [10i32];
        microkernel(KernelVariant::Scalar).qmadd_taps(&mut acc, &[pack(2, 3)], &[&seg]);
        assert_eq!(acc, [41]);
        // Negative halves must sign-extend: (-2)*5 + 3*(-7) = -31.
        let mut acc = [0i32];
        microkernel(KernelVariant::Scalar).qmadd_taps(&mut acc, &[pack(-2, 3)], &[&seg[..1]]);
        assert_eq!(acc, [(-2) * 5 + 3 * 7]);
        let neg = [pack(5, -7)];
        let mut acc = [0i32];
        microkernel(KernelVariant::Scalar).qmadd_taps(&mut acc, &[pack(-2, 3)], &[&neg]);
        assert_eq!(acc, [(-2) * 5 + 3 * (-7)]);
    }

    #[test]
    fn qmadd_taps_matches_scalar_exactly_for_all_variants() {
        // Pseudo-random packed i16 pairs in the quantized executor's
        // operand range (activations |v| <= 255, weights |w| <= 127);
        // every variant must agree bit-for-bit (integer arithmetic).
        let pack = |lo: i32, hi: i32| (lo & 0xFFFF) | (hi << 16);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move |m: i32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % (2 * m + 1)) - m
        };
        for n in [1usize, 5, 8, 31, 32, 63, 200] {
            for nt in [1usize, 3, 25] {
                let rows: Vec<Vec<i32>> = (0..nt)
                    .map(|_| (0..n).map(|_| pack(next(255), next(255))).collect())
                    .collect();
                let ws: Vec<i32> = (0..nt).map(|_| pack(next(127), next(127))).collect();
                let segs: Vec<&[i32]> = rows.iter().map(|r| r.as_slice()).collect();
                let base: Vec<i32> = (0..n).map(|_| next(1000)).collect();
                let mut want = base.clone();
                microkernel(KernelVariant::Scalar).qmadd_taps(&mut want, &ws, &segs);
                for v in detected_variants() {
                    let mut got = base.clone();
                    microkernel(*v).qmadd_taps(&mut got, &ws, &segs);
                    assert_eq!(got, want, "variant {} n={n} nt={nt}", v.name());
                }
            }
        }
    }

    #[test]
    fn qmadd_taps2_matches_two_single_calls_for_all_variants() {
        let pack = |lo: i32, hi: i32| (lo & 0xFFFF) | (hi << 16);
        let mut state = 0xD1B5_4A32_D192_ED03u64;
        let mut next = move |m: i32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % (2 * m + 1)) - m
        };
        for n in [1usize, 7, 8, 16, 17, 40, 177] {
            for nt in [1usize, 9, 50] {
                let rows: Vec<Vec<i32>> = (0..nt)
                    .map(|_| (0..n).map(|_| pack(next(255), next(255))).collect())
                    .collect();
                let ws0: Vec<i32> = (0..nt).map(|_| pack(next(127), next(127))).collect();
                let ws1: Vec<i32> = (0..nt).map(|_| pack(next(127), next(127))).collect();
                let segs: Vec<&[i32]> = rows.iter().map(|r| r.as_slice()).collect();
                let base0: Vec<i32> = (0..n).map(|_| next(1000)).collect();
                let base1: Vec<i32> = (0..n).map(|_| next(1000)).collect();
                let (mut want0, mut want1) = (base0.clone(), base1.clone());
                let sc = microkernel(KernelVariant::Scalar);
                sc.qmadd_taps(&mut want0, &ws0, &segs);
                sc.qmadd_taps(&mut want1, &ws1, &segs);
                for v in detected_variants() {
                    let (mut got0, mut got1) = (base0.clone(), base1.clone());
                    microkernel(*v).qmadd_taps2(&mut got0, &mut got1, &ws0, &ws1, &segs);
                    assert_eq!(got0, want0, "variant {} n={n} nt={nt} lane0", v.name());
                    assert_eq!(got1, want1, "variant {} n={n} nt={nt} lane1", v.name());
                }
            }
        }
    }

    /// Adversarial epilogue sweep: every variant's requantization row ops
    /// must equal the scalar reference bit for bit — including round
    /// half-ties (odd accumulators against `out_scale` 2.0 land real
    /// values exactly on `x.5`), clamp saturation from huge accumulators,
    /// zero-point extremes, PRelu with negative slopes, and tiny negative
    /// values whose rounding produces `-0.0`.
    #[test]
    fn quant_epilogues_match_scalar_exactly_for_all_variants() {
        let mut state = 0x8091_A2B3_C4D5_E6F7u64;
        let mut next = move |m: i32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as i32 % (2 * m + 1)) - m
        };
        let sc = microkernel(KernelVariant::Scalar);
        for n in [1usize, 5, 8, 13, 24, 100] {
            for (zp, out_scale) in [(0i32, 2.0f32), (128, 0.0173), (255, 0.5), (37, 3.25e-3)] {
                for act in [
                    RowAct::Linear,
                    RowAct::Relu,
                    RowAct::PRelu(-0.7),
                    RowAct::PRelu(0.4),
                ] {
                    let e0 = QuantEpilogue {
                        scale_io: 1.0, // odd accs hit exact .5 ties at out_scale 2.0
                        bias: 0.25,
                        act,
                        out_scale,
                        zero_point: zp,
                    };
                    let e1 = QuantEpilogue {
                        scale_io: 3.1e-4,
                        bias: -0.125,
                        act,
                        out_scale,
                        zero_point: zp,
                    };
                    // Mix huge magnitudes (clamp saturation on both
                    // sides) with small ones (tie and -0.0 territory).
                    let acc0: Vec<i32> = (0..n)
                        .map(|i| if i % 3 == 0 { next(2_000_000) } else { next(7) })
                        .collect();
                    let acc1: Vec<i32> = (0..n).map(|_| next(2_000_000)).collect();
                    let first: Vec<i32> = (0..n)
                        .map(|_| ((next(255) & 0xFFFF) | (next(255) << 16)))
                        .collect();

                    let mut want = vec![0i32; n];
                    sc.qrequant_pack_row(&acc0, &acc1, &mut want, &e0, Some(&e1));
                    let mut want_half = vec![0i32; n];
                    sc.qrequant_pack_row(&acc0, &acc1, &mut want_half, &e0, None);
                    let mut want_res = vec![0i32; n];
                    sc.qresidual_pack_row(
                        &acc0,
                        &acc1,
                        &first,
                        &mut want_res,
                        &e0,
                        Some(&e1),
                        0.021,
                        0.044,
                        116,
                    );
                    let mut want_head = vec![0f32; n];
                    sc.qhead_row(&acc0, Some((&first, 0.013)), &mut want_head, &e0);
                    let mut want_head_plain = vec![0f32; n];
                    sc.qhead_row(&acc0, None, &mut want_head_plain, &e1);
                    let floats: Vec<f32> = (0..n).map(|_| next(1000) as f32 * 0.37e-2).collect();
                    let mut want_q = vec![0i32; n];
                    sc.qquantize_row(&floats, &mut want_q, 0.01937, zp);

                    for v in detected_variants() {
                        let mk = microkernel(*v);
                        let ctx = format!("variant {} n={n} zp={zp} act={act:?}", v.name());
                        let mut got = vec![0i32; n];
                        mk.qrequant_pack_row(&acc0, &acc1, &mut got, &e0, Some(&e1));
                        assert_eq!(got, want, "qrequant_pack_row {ctx}");
                        let mut got = vec![0i32; n];
                        mk.qrequant_pack_row(&acc0, &acc1, &mut got, &e0, None);
                        assert_eq!(got, want_half, "qrequant_pack_row(half) {ctx}");
                        let mut got = vec![0i32; n];
                        mk.qresidual_pack_row(
                            &acc0,
                            &acc1,
                            &first,
                            &mut got,
                            &e0,
                            Some(&e1),
                            0.021,
                            0.044,
                            116,
                        );
                        assert_eq!(got, want_res, "qresidual_pack_row {ctx}");
                        let mut got = vec![0f32; n];
                        mk.qhead_row(&acc0, Some((&first, 0.013)), &mut got, &e0);
                        let same = got
                            .iter()
                            .zip(&want_head)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                        assert!(same, "qhead_row {ctx}");
                        let mut got = vec![0f32; n];
                        mk.qhead_row(&acc0, None, &mut got, &e1);
                        let same = got
                            .iter()
                            .zip(&want_head_plain)
                            .all(|(a, b)| a.to_bits() == b.to_bits());
                        assert!(same, "qhead_row(no residual) {ctx}");
                        let mut got = vec![0i32; n];
                        mk.qquantize_row(&floats, &mut got, 0.01937, zp);
                        assert_eq!(got, want_q, "qquantize_row {ctx}");
                    }
                }
            }
        }
    }

    #[test]
    fn axpy_two_round_variants_match_scalar_bitwise() {
        for n in [1usize, 5, 8, 17, 64, 129] {
            let src = seeded(n, 3 + n as u64);
            let mut want = seeded(n, 5);
            microkernel(KernelVariant::Scalar).axpy(&mut want, &src, 0.37);
            for v in two_round_variants() {
                let mut got = seeded(n, 5);
                microkernel(v).axpy(&mut got, &src, 0.37);
                assert_eq!(
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{} n={n}",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn wino_transforms_match_scalar_bitwise_for_all_variants() {
        // Transforms are pure add/sub: exact for every variant, fused or
        // not.
        for seed in 0..8u64 {
            let d: [f32; 16] = seeded(16, 60 + seed).try_into().unwrap();
            let want_in = crate::winograd::input_transform(&d);
            let want_out = crate::winograd::output_transform(&d);
            for v in detected_variants().iter().copied() {
                let mk = microkernel(v);
                let got_in = mk.wino_input_transform(&d);
                let got_out = mk.wino_output_transform(&d);
                for k in 0..16 {
                    assert_eq!(want_in[k].to_bits(), got_in[k].to_bits(), "{}", v.name());
                }
                for k in 0..4 {
                    assert_eq!(want_out[k].to_bits(), got_out[k].to_bits(), "{}", v.name());
                }
            }
        }
    }

    #[test]
    fn wino_channel_reduce_two_round_matches_scalar_bitwise() {
        for (cout, cin) in [(1usize, 1usize), (4, 3), (16, 16), (5, 7), (3, 16)] {
            let u: Vec<[f32; 16]> = (0..cout * cin)
                .map(|i| seeded(16, 200 + i as u64).try_into().unwrap())
                .collect();
            let v_slab = seeded(cin * 16, 300 + (cout * cin) as u64);
            let mut want = vec![0.0f32; cout * 16];
            microkernel(KernelVariant::Scalar)
                .wino_channel_reduce(&mut want, &u, &v_slab, cout, cin);
            for v in two_round_variants() {
                let mut got = vec![1.0f32; cout * 16];
                microkernel(v).wino_channel_reduce(&mut got, &u, &v_slab, cout, cin);
                assert_eq!(
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{} {cout}x{cin}",
                    v.name()
                );
            }
        }
    }

    #[test]
    fn epilogue_rows_match_scalar_bitwise_for_all_variants() {
        // Epilogue ops carry no multiply-add pairs: every variant must be
        // bit-identical to scalar, including the IEEE corners (-0.0, NaN,
        // values that flip sign under bias).
        let mut base = seeded(37, 400);
        base[0] = -0.0;
        base[1] = 0.0;
        base[2] = f32::NAN;
        base[3] = -1.0e-30;
        for act in [RowAct::Linear, RowAct::Relu, RowAct::PRelu(-0.25)] {
            for bias in [0.0f32, -0.5, 0.37] {
                let mut want = base.clone();
                scalar::bias_act_row(&mut want, bias, act);
                for v in detected_variants().iter().copied() {
                    let mut got = base.clone();
                    microkernel(v).bias_act_row(&mut got, bias, act);
                    assert_eq!(
                        want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{} {act:?} bias={bias}",
                        v.name()
                    );
                }
            }
        }
        let other = seeded(37, 401);
        let mut want = base.clone();
        scalar::add_row(&mut want, &other);
        scalar::double_row(&mut want);
        for v in detected_variants().iter().copied() {
            let mut got = base.clone();
            let mk = microkernel(v);
            mk.add_row(&mut got, &other);
            mk.double_row(&mut got);
            assert_eq!(
                want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "{}",
                v.name()
            );
        }
    }

    #[test]
    fn fma_scalar_remainder_matches_vector_lanes() {
        // One value processed in a vector lane (index 0 of a 9-long
        // buffer) and the same value in the scalar remainder (index 8)
        // must round identically under the fused variant.
        if !KernelVariant::Avx2Fma.available() {
            return;
        }
        let mk = microkernel(KernelVariant::Avx2Fma);
        let val = 3.000_000_4f32;
        let mut acc = vec![-3.0f32; 9];
        let src = vec![val; 9];
        mk.axpy(&mut acc, &src, 1.000_000_1);
        assert_eq!(acc[0].to_bits(), acc[8].to_bits());
        assert_eq!(
            acc[0].to_bits(),
            1.000_000_1f32.mul_add(val, -3.0).to_bits()
        );
    }
}
