//! im2col / col2im lowering for GEMM-based convolution.
//!
//! `im2col` unfolds every receptive field of a (single-image) CHW input into
//! a column of a `(C*KH*KW) x (OH*OW)` matrix so convolution becomes one
//! GEMM against the `(O) x (C*KH*KW)` weight matrix. `col2im` is its adjoint
//! (scatter-accumulate), used by the convolution input-gradient.

/// Geometry of one convolution, resolved to explicit padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels.
    pub channels: usize,
    /// Input height / width.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride along height / width.
    pub stride_h: usize,
    /// Stride along width.
    pub stride_w: usize,
    /// Padding rows added above the image.
    pub pad_top: usize,
    /// Padding rows added below the image.
    pub pad_bottom: usize,
    /// Padding columns added left of the image.
    pub pad_left: usize,
    /// Padding columns added right of the image.
    pub pad_right: usize,
}

impl ConvGeometry {
    /// Output height for this geometry.
    pub fn out_h(&self) -> usize {
        (self.in_h + self.pad_top + self.pad_bottom - self.kh) / self.stride_h + 1
    }

    /// Output width for this geometry.
    pub fn out_w(&self) -> usize {
        (self.in_w + self.pad_left + self.pad_right - self.kw) / self.stride_w + 1
    }

    /// Rows of the im2col matrix (`channels * kh * kw`).
    pub fn col_rows(&self) -> usize {
        self.channels * self.kh * self.kw
    }

    /// Columns of the im2col matrix (`out_h * out_w`).
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validates that the geometry produces a non-degenerate output.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn validate(&self) {
        assert!(
            self.in_h + self.pad_top + self.pad_bottom >= self.kh
                && self.in_w + self.pad_left + self.pad_right >= self.kw,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            self.in_h + self.pad_top + self.pad_bottom,
            self.in_w + self.pad_left + self.pad_right
        );
        assert!(
            self.stride_h > 0 && self.stride_w > 0,
            "stride must be positive"
        );
    }
}

/// Unfolds a CHW image into the im2col matrix.
///
/// `input` must hold `channels * in_h * in_w` elements; `col` must hold
/// `col_rows() * col_cols()` elements and is fully overwritten.
///
/// # Panics
///
/// Panics if buffer sizes disagree with the geometry.
pub fn im2col(input: &[f32], geo: &ConvGeometry, col: &mut [f32]) {
    geo.validate();
    assert_eq!(
        input.len(),
        geo.channels * geo.in_h * geo.in_w,
        "input size"
    );
    assert_eq!(col.len(), geo.col_rows() * geo.col_cols(), "col size");
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let ncols = oh * ow;
    let mut row = 0usize;
    for c in 0..geo.channels {
        let plane = &input[c * geo.in_h * geo.in_w..(c + 1) * geo.in_h * geo.in_w];
        for ky in 0..geo.kh {
            for kx in 0..geo.kw {
                let dst = &mut col[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * geo.stride_h + ky) as isize - geo.pad_top as isize;
                    let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= geo.in_h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * geo.in_w..(iy as usize + 1) * geo.in_w];
                    for (ox, slot) in dst_row.iter_mut().enumerate() {
                        let ix = (ox * geo.stride_w + kx) as isize - geo.pad_left as isize;
                        *slot = if ix < 0 || ix >= geo.in_w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

/// Banded [`im2col`]: unfolds only output rows `[y0, y1)` into `col`,
/// which must hold `col_rows() * (y1 - y0) * out_w()` elements. Column
/// `j` of the result equals column `y0 * out_w() + j` of the full im2col
/// matrix — the loops and reads are the same, only the output-row range
/// and destination offset differ.
///
/// # Panics
///
/// Panics if buffer sizes disagree with the geometry or the band is out of
/// range.
pub fn im2col_rows(input: &[f32], geo: &ConvGeometry, y0: usize, y1: usize, col: &mut [f32]) {
    geo.validate();
    assert_eq!(
        input.len(),
        geo.channels * geo.in_h * geo.in_w,
        "input size"
    );
    let (oh, ow) = (geo.out_h(), geo.out_w());
    assert!(
        y0 <= y1 && y1 <= oh,
        "band [{y0}, {y1}) out of range 0..{oh}"
    );
    let ncols = (y1 - y0) * ow;
    assert_eq!(col.len(), geo.col_rows() * ncols, "col size");
    if ncols == 0 {
        return;
    }
    let mut row = 0usize;
    for c in 0..geo.channels {
        let plane = &input[c * geo.in_h * geo.in_w..(c + 1) * geo.in_h * geo.in_w];
        for ky in 0..geo.kh {
            for kx in 0..geo.kw {
                let dst = &mut col[row * ncols..(row + 1) * ncols];
                for oy in y0..y1 {
                    let iy = (oy * geo.stride_h + ky) as isize - geo.pad_top as isize;
                    let dst_row = &mut dst[(oy - y0) * ow..(oy - y0 + 1) * ow];
                    if iy < 0 || iy >= geo.in_h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * geo.in_w..(iy as usize + 1) * geo.in_w];
                    for (ox, slot) in dst_row.iter_mut().enumerate() {
                        let ix = (ox * geo.stride_w + kx) as isize - geo.pad_left as isize;
                        *slot = if ix < 0 || ix >= geo.in_w as isize {
                            0.0
                        } else {
                            src_row[ix as usize]
                        };
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-accumulates a column matrix back into a
/// CHW image buffer. `output` is zeroed first.
///
/// # Panics
///
/// Panics if buffer sizes disagree with the geometry.
pub fn col2im(col: &[f32], geo: &ConvGeometry, output: &mut [f32]) {
    geo.validate();
    assert_eq!(
        output.len(),
        geo.channels * geo.in_h * geo.in_w,
        "output size"
    );
    assert_eq!(col.len(), geo.col_rows() * geo.col_cols(), "col size");
    output.fill(0.0);
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let ncols = oh * ow;
    let mut row = 0usize;
    for c in 0..geo.channels {
        let base = c * geo.in_h * geo.in_w;
        for ky in 0..geo.kh {
            for kx in 0..geo.kw {
                let src = &col[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * geo.stride_h + ky) as isize - geo.pad_top as isize;
                    if iy < 0 || iy >= geo.in_h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * geo.stride_w + kx) as isize - geo.pad_left as isize;
                        if ix < 0 || ix >= geo.in_w as isize {
                            continue;
                        }
                        output[base + iy as usize * geo.in_w + ix as usize] += src[oy * ow + ox];
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(c: usize, h: usize, w: usize, kh: usize, kw: usize, pad: usize) -> ConvGeometry {
        ConvGeometry {
            channels: c,
            in_h: h,
            in_w: w,
            kh,
            kw,
            stride_h: 1,
            stride_w: 1,
            pad_top: pad,
            pad_bottom: pad,
            pad_left: pad,
            pad_right: pad,
        }
    }

    #[test]
    fn identity_kernel_geometry() {
        let g = geo(1, 4, 4, 1, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
        let input: Vec<f32> = (0..16).map(|x| x as f32).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&input, &g, &mut col);
        assert_eq!(col, input); // 1x1 kernel: im2col is identity
    }

    #[test]
    fn same_padding_3x3_center_column() {
        let g = geo(1, 3, 3, 3, 3, 1);
        assert_eq!((g.out_h(), g.out_w()), (3, 3));
        let input: Vec<f32> = (1..=9).map(|x| x as f32).collect();
        let mut col = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&input, &g, &mut col);
        // Center tap row (ky=1, kx=1 => row 4) must equal the input itself.
        let ncols = 9;
        assert_eq!(&col[4 * ncols..5 * ncols], input.as_slice());
        // Top-left tap at output (0,0) reads padding => 0.
        assert_eq!(col[0], 0.0);
        // Top-left tap at output (2,2) reads input (1,1) = 5.
        assert_eq!(col[8], 5.0);
    }

    #[test]
    fn im2col_rows_matches_full_band_by_band() {
        let g = geo(2, 7, 5, 3, 3, 1);
        let x = crate::Tensor::randn(&[g.channels * g.in_h * g.in_w], 0.0, 1.0, 13).into_vec();
        let (oh, ow) = (g.out_h(), g.out_w());
        let mut full = vec![0.0; g.col_rows() * g.col_cols()];
        im2col(&x, &g, &mut full);
        for &(y0, y1) in &[(0usize, oh), (0, 3), (3, oh), (2, 2), (oh - 1, oh)] {
            let ncols = (y1 - y0) * ow;
            let mut band = vec![f32::NAN; g.col_rows() * ncols];
            im2col_rows(&x, &g, y0, y1, &mut band);
            for r in 0..g.col_rows() {
                let want = &full[r * oh * ow + y0 * ow..r * oh * ow + y1 * ow];
                let got = &band[r * ncols..(r + 1) * ncols];
                assert_eq!(got, want, "row {r}, band [{y0},{y1})");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y.
        let g = geo(2, 5, 4, 3, 2, 1);
        let x = crate::Tensor::randn(&[g.channels * g.in_h * g.in_w], 0.0, 1.0, 11).into_vec();
        let y = crate::Tensor::randn(&[g.col_rows() * g.col_cols()], 0.0, 1.0, 12).into_vec();
        let mut cx = vec![0.0; y.len()];
        im2col(&x, &g, &mut cx);
        let lhs: f64 = cx.iter().zip(y.iter()).map(|(&a, &b)| (a * b) as f64).sum();
        let mut aty = vec![0.0; x.len()];
        col2im(&y, &g, &mut aty);
        let rhs: f64 = x
            .iter()
            .zip(aty.iter())
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_geometry_shrinks_output() {
        let g = ConvGeometry {
            stride_h: 2,
            stride_w: 2,
            ..geo(1, 8, 8, 3, 3, 1)
        };
        assert_eq!((g.out_h(), g.out_w()), (4, 4));
    }

    #[test]
    fn asymmetric_padding_for_even_kernel() {
        // 2x2 kernel, "same": pad (0,1,0,1) keeps the size.
        let g = ConvGeometry {
            kh: 2,
            kw: 2,
            pad_top: 0,
            pad_bottom: 1,
            pad_left: 0,
            pad_right: 1,
            ..geo(1, 5, 5, 2, 2, 0)
        };
        assert_eq!((g.out_h(), g.out_w()), (5, 5));
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_rejected() {
        geo(1, 2, 2, 5, 5, 0).validate();
    }
}
