//! # sesr-tensor
//!
//! Minimal, dependency-light CPU tensor library underpinning the SESR
//! (Super-Efficient Super Resolution, MLSys 2022) reproduction.
//!
//! The crate provides exactly what a compact SISR training/inference stack
//! needs and nothing more:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with NCHW conventions for
//!   4-D data (`[batch, channels, height, width]`) and OIHW for weights
//!   (`[out_channels, in_channels, kernel_h, kernel_w]`).
//! * 2-D convolution forward and backward passes (direct and im2col/GEMM
//!   paths), including asymmetric and even-sized kernels as used by the
//!   paper's NAS search space (Sec. 3.4).
//! * Transposed convolution (needed by the FSRCNN baseline's deconvolution
//!   head).
//! * `depth_to_space` / `space_to_depth` (pixel shuffle), the paper's
//!   upsampling primitive (Sec. 3.1).
//! * ReLU / PReLU forward and backward.
//! * A tiny scoped thread pool ([`parallel`]) used by the GEMM kernel.
//!
//! ## Example
//!
//! ```
//! use sesr_tensor::{Tensor, conv::{conv2d, Conv2dParams}};
//!
//! let input = Tensor::randn(&[1, 1, 8, 8], 0.0, 1.0, 42);
//! let weight = Tensor::randn(&[16, 1, 3, 3], 0.0, 0.1, 7);
//! let out = conv2d(&input, &weight, None, Conv2dParams::same());
//! assert_eq!(out.shape(), &[1, 16, 8, 8]);
//! ```

// Every `unsafe` operation must sit in an explicit `unsafe` block with its
// own `// SAFETY:` argument, even inside `unsafe fn` — enforced repo-wide
// by `scripts/verify.sh simd`.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod activations;
pub mod autotune;
pub mod conv;
pub mod gemm;
pub mod im2col;
pub mod parallel;
pub mod pixel_shuffle;
pub mod shape;
pub mod simd;
pub mod tensor;
pub mod winograd;

pub use shape::Shape;
pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    #[test]
    fn crate_reexports_work() {
        let t = crate::Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
    }
}
