//! Winograd fast convolution `F(2x2, 3x3)` for stride-1, same-padding 3x3
//! convolutions — the kernel shape that dominates collapsed SESR networks
//! (`m` of the `m + 2` layers are 3x3).
//!
//! Winograd computes each 2x2 output tile with 16 multiplies instead of
//! the direct method's 36 (2.25x fewer), at the cost of small linear
//! transforms. Production NPU/CPU runtimes (including the compilers that
//! would deploy SESR) use exactly this transformation; having it here lets
//! the benchmarks compare direct, GEMM-lowered, and Winograd execution of
//! the same collapsed network.
//!
//! Transforms (Lavin & Gray, 2016):
//!
//! ```text
//! Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with the canonical 4x4/4x3/4x2 matrices `B`, `G`, `A` below.

use crate::conv::{Conv2dParams, Padding};
use crate::simd::default_microkernel;
use crate::tensor::Tensor;

/// Applies `Bᵀ d B` to a 4x4 input tile (in place on a scratch array).
/// Public so inference planners can run the tile pipeline with their own
/// buffers while staying bit-identical to [`winograd_conv3x3`].
#[inline]
pub fn input_transform(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ = [1 0 -1 0; 0 1 1 0; 0 -1 1 0; 0 1 0 -1]
    let mut tmp = [0.0f32; 16];
    // rows: tmp = Bᵀ * d
    for c in 0..4 {
        tmp[c] = d[c] - d[8 + c];
        tmp[4 + c] = d[4 + c] + d[8 + c];
        tmp[8 + c] = d[8 + c] - d[4 + c];
        tmp[12 + c] = d[4 + c] - d[12 + c];
    }
    // cols: out = tmp * B
    let mut out = [0.0f32; 16];
    for r in 0..4 {
        let row = &tmp[4 * r..4 * r + 4];
        out[4 * r] = row[0] - row[2];
        out[4 * r + 1] = row[1] + row[2];
        out[4 * r + 2] = row[2] - row[1];
        out[4 * r + 3] = row[1] - row[3];
    }
    out
}

/// Applies `G g Gᵀ` to a 3x3 kernel, producing the 4x4 transformed kernel.
#[inline]
pub fn kernel_transform(g: &[f32]) -> [f32; 16] {
    // G = [1 0 0; 1/2 1/2 1/2; 1/2 -1/2 1/2; 0 0 1]
    debug_assert_eq!(g.len(), 9);
    let mut tmp = [0.0f32; 12]; // 4x3 = G * g
    for c in 0..3 {
        let (g0, g1, g2) = (g[c], g[3 + c], g[6 + c]);
        tmp[c] = g0;
        tmp[3 + c] = 0.5 * (g0 + g1 + g2);
        tmp[6 + c] = 0.5 * (g0 - g1 + g2);
        tmp[9 + c] = g2;
    }
    let mut out = [0.0f32; 16]; // 4x4 = tmp * Gᵀ
    for r in 0..4 {
        let (t0, t1, t2) = (tmp[3 * r], tmp[3 * r + 1], tmp[3 * r + 2]);
        out[4 * r] = t0;
        out[4 * r + 1] = 0.5 * (t0 + t1 + t2);
        out[4 * r + 2] = 0.5 * (t0 - t1 + t2);
        out[4 * r + 3] = t2;
    }
    out
}

/// Applies `Aᵀ m A` to a 4x4 element-product tile, producing 2x2 outputs.
#[inline]
pub fn output_transform(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ = [1 1 1 0; 0 1 -1 -1]
    let mut tmp = [0.0f32; 8]; // 2x4
    for c in 0..4 {
        tmp[c] = m[c] + m[4 + c] + m[8 + c];
        tmp[4 + c] = m[4 + c] - m[8 + c] - m[12 + c];
    }
    [
        tmp[0] + tmp[1] + tmp[2],
        tmp[1] - tmp[2] - tmp[3],
        tmp[4] + tmp[5] + tmp[6],
        tmp[5] - tmp[6] - tmp[7],
    ]
}

/// Winograd `F(2x2, 3x3)` convolution: stride 1, "same" padding, square
/// 3x3 kernels. Bit-compatible (up to ~1e-4 float error) with
/// [`crate::conv::conv2d`] under [`Conv2dParams::same`].
///
/// # Panics
///
/// Panics if the weight is not 3x3 or channel counts disagree.
pub fn winograd_conv3x3(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) -> Tensor {
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (o, ci, kh, kw) = weight.shape_obj().as_nchw();
    assert_eq!((kh, kw), (3, 3), "winograd_conv3x3 requires 3x3 kernels");
    assert_eq!(c, ci, "input channels {c} != weight in-channels {ci}");
    if let Some(b) = bias {
        assert_eq!(b.shape(), &[o], "bias must have one element per channel");
    }

    // Transform all kernels once: U[o][i] is a 4x4 tile.
    let mut u = vec![[0.0f32; 16]; o * c];
    for oo in 0..o {
        for ii in 0..c {
            let base = (oo * c + ii) * 9;
            u[oo * c + ii] = kernel_transform(&weight.data()[base..base + 9]);
        }
    }

    let tiles_y = h.div_ceil(2);
    let tiles_x = w.div_ceil(2);
    let mut out = Tensor::zeros(&[n, o, h, w]);
    let in_data = input.data();
    let mk = default_microkernel();

    // Scratch for the transformed input tiles of one spatial tile, plus
    // the element-product tiles of every output channel.
    let mut v = vec![[0.0f32; 16]; c];
    let mut m_slab = vec![0.0f32; o * 16];
    for ni in 0..n {
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                // Gather the 4x4 input patch (with same-padding offset -1).
                let oy = 2 * ty;
                let ox = 2 * tx;
                for (cc, v_cc) in v.iter_mut().enumerate() {
                    let plane = &in_data[(ni * c + cc) * h * w..(ni * c + cc + 1) * h * w];
                    let mut d = [0.0f32; 16];
                    for dy in 0..4 {
                        let iy = oy as isize + dy as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for dx in 0..4 {
                            let ix = ox as isize + dx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            d[4 * dy + dx] = plane[iy as usize * w + ix as usize];
                        }
                    }
                    *v_cc = mk.wino_input_transform(&d);
                }
                // Accumulate per output channel (the hot loop: dispatched
                // so SIMD variants keep the tile accumulators in registers
                // across the channel reduction).
                mk.wino_channel_reduce(&mut m_slab, &u, v.as_flattened(), o, c);
                for oo in 0..o {
                    let m: &[f32; 16] = m_slab[oo * 16..oo * 16 + 16]
                        .try_into()
                        .expect("16-element tile");
                    let y = mk.wino_output_transform(m);
                    let b = bias.map_or(0.0, |b| b.data()[oo]);
                    let out_plane = (ni * o + oo) * h * w;
                    for dy in 0..2 {
                        let yy = oy + dy;
                        if yy >= h {
                            continue;
                        }
                        for dx in 0..2 {
                            let xx = ox + dx;
                            if xx >= w {
                                continue;
                            }
                            out.data_mut()[out_plane + yy * w + xx] = y[2 * dy + dx] + b;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Multiplications per output element for Winograd vs direct 3x3
/// convolution: `(16/4) / 9 = 4/9`, i.e. 2.25x fewer.
pub const WINOGRAD_MUL_RATIO: f64 = 4.0 / 9.0;

/// Dispatches to Winograd for 3x3 same-padding kernels, falling back to
/// [`crate::conv::conv2d`] otherwise. Drop-in for inference runtimes.
pub fn conv2d_auto(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Tensor {
    let is_3x3_same = weight.shape()[2] == 3
        && weight.shape()[3] == 3
        && params.stride_h == 1
        && params.stride_w == 1
        && matches!(params.padding, Padding::Same);
    if is_3x3_same {
        winograd_conv3x3(input, weight, bias)
    } else {
        crate::conv::conv2d(input, weight, bias, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d;

    #[test]
    fn matches_direct_conv_even_sizes() {
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, 1);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, 2);
        let b = Tensor::randn(&[4], 0.0, 0.5, 3);
        let fast = winograd_conv3x3(&x, &w, Some(&b));
        let refr = conv2d(&x, &w, Some(&b), Conv2dParams::same());
        assert!(
            fast.approx_eq(&refr, 1e-4),
            "diff {}",
            fast.max_abs_diff(&refr)
        );
    }

    #[test]
    fn matches_direct_conv_odd_sizes() {
        // Odd spatial sizes exercise the partial boundary tiles.
        for (h, w) in [(5usize, 7usize), (7, 5), (9, 9), (2, 2), (1, 6)] {
            let x = Tensor::randn(&[1, 2, h, w], 0.0, 1.0, 10 + h as u64);
            let k = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, 20 + w as u64);
            let fast = winograd_conv3x3(&x, &k, None);
            let refr = conv2d(&x, &k, None, Conv2dParams::same());
            assert!(
                fast.approx_eq(&refr, 1e-4),
                "{h}x{w}: diff {}",
                fast.max_abs_diff(&refr)
            );
        }
    }

    #[test]
    fn identity_kernel_is_identity() {
        let x = Tensor::randn(&[1, 4, 6, 6], 0.0, 1.0, 30);
        let w = Tensor::identity_kernel(4, 3);
        let y = winograd_conv3x3(&x, &w, None);
        assert!(y.approx_eq(&x, 1e-5));
    }

    #[test]
    fn kernel_transform_of_delta_is_consistent() {
        // A centered delta kernel transforms to a tile that reconstructs
        // the identity under the output transform.
        let mut g = [0.0f32; 9];
        g[4] = 1.0;
        let u = kernel_transform(&g);
        // Convolving a constant-1 input tile must produce 1s.
        let d = [1.0f32; 16];
        let v = input_transform(&d);
        let mut m = [0.0f32; 16];
        for k in 0..16 {
            m[k] = u[k] * v[k];
        }
        let y = output_transform(&m);
        for &val in &y {
            assert!((val - 1.0).abs() < 1e-6, "{y:?}");
        }
    }

    #[test]
    fn auto_dispatch_matches_reference_for_both_shapes() {
        let x = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, 40);
        // 3x3 path.
        let w3 = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.5, 41);
        let auto3 = conv2d_auto(&x, &w3, None, Conv2dParams::same());
        let ref3 = conv2d(&x, &w3, None, Conv2dParams::same());
        assert!(auto3.approx_eq(&ref3, 1e-4));
        // 5x5 fallback path.
        let w5 = Tensor::randn(&[2, 2, 5, 5], 0.0, 0.5, 42);
        let auto5 = conv2d_auto(&x, &w5, None, Conv2dParams::same());
        let ref5 = conv2d(&x, &w5, None, Conv2dParams::same());
        assert!(auto5.approx_eq(&ref5, 0.0));
    }

    #[test]
    fn linearity_holds() {
        let x1 = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, 50);
        let x2 = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, 51);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 0.5, 52);
        let lhs = winograd_conv3x3(&x1.add(&x2), &w, None);
        let rhs = winograd_conv3x3(&x1, &w, None).add(&winograd_conv3x3(&x2, &w, None));
        assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    #[test]
    #[should_panic(expected = "3x3")]
    fn rejects_non_3x3() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 5, 5]);
        winograd_conv3x3(&x, &w, None);
    }
}
