//! Shape bookkeeping for dense row-major tensors.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// For activations the convention is NCHW (`[batch, channels, height,
/// width]`); for convolution weights it is OIHW (`[out_channels,
/// in_channels, kernel_h, kernel_w]`).
///
/// # Example
///
/// ```
/// use sesr_tensor::Shape;
/// let s = Shape::new(&[2, 16, 32, 32]);
/// assert_eq!(s.len(), 2 * 16 * 32 * 32);
/// assert_eq!(s.strides(), vec![16 * 32 * 32, 32 * 32, 32, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; zero-sized tensors are never
    /// meaningful in this codebase and always indicate a logic error.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when the shape has no dimensions (rank 0). Rank-0 shapes are
    /// treated as scalars with one element.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Row-major strides (in elements) for each dimension.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &stride)) in index.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.dims[d],
                "index {i} out of bounds for dimension {d} of size {}",
                self.dims[d]
            );
            off += i * stride;
        }
        off
    }

    /// Interprets this shape as NCHW, returning `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if the rank is not 4.
    pub fn as_nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected a 4-D shape, got {self:?}");
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_manual_computation() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::new(&[2, 16, 8, 9]);
        assert_eq!(s.as_nchw(), (2, 16, 8, 9));
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert!(s.is_empty());
    }
}
