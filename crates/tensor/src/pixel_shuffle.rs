//! Depth-to-space (pixel shuffle) and its inverse.
//!
//! SESR upsamples by emitting `scale^2` channels from its last convolution
//! and rearranging them into a `scale x` larger image (paper Sec. 3.1); the
//! ×4 variant applies a ×2 depth-to-space twice (Sec. 5.1).

use crate::tensor::Tensor;

/// Rearranges `[N, C*r^2, H, W]` into `[N, C, H*r, W*r]`.
///
/// Channel `c*r^2 + dy*r + dx` supplies the output pixel at sub-position
/// `(dy, dx)` inside each `r x r` block (the standard sub-pixel convolution
/// layout of Shi et al.).
///
/// # Panics
///
/// Panics if the channel count is not divisible by `r^2` or `r == 0`.
///
/// # Example
///
/// ```
/// use sesr_tensor::{Tensor, pixel_shuffle::depth_to_space};
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4, 1, 1]);
/// let y = depth_to_space(&x, 2);
/// assert_eq!(y.shape(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn depth_to_space(input: &Tensor, r: usize) -> Tensor {
    assert!(r > 0, "scale factor must be positive");
    let (n, c, h, w) = input.shape_obj().as_nchw();
    assert_eq!(
        c % (r * r),
        0,
        "channels {c} not divisible by scale^2 = {}",
        r * r
    );
    let oc = c / (r * r);
    let mut out = Tensor::zeros(&[n, oc, h * r, w * r]);
    for ni in 0..n {
        for co in 0..oc {
            for dy in 0..r {
                for dx in 0..r {
                    let ci = co * r * r + dy * r + dx;
                    for y in 0..h {
                        for x in 0..w {
                            *out.at_mut(&[ni, co, y * r + dy, x * r + dx]) =
                                input.at(&[ni, ci, y, x]);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Inverse of [`depth_to_space`]: `[N, C, H*r, W*r]` → `[N, C*r^2, H, W]`.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `r` or `r == 0`.
pub fn space_to_depth(input: &Tensor, r: usize) -> Tensor {
    assert!(r > 0, "scale factor must be positive");
    let (n, c, h, w) = input.shape_obj().as_nchw();
    assert_eq!(h % r, 0, "height {h} not divisible by scale {r}");
    assert_eq!(w % r, 0, "width {w} not divisible by scale {r}");
    let (oh, ow) = (h / r, w / r);
    let mut out = Tensor::zeros(&[n, c * r * r, oh, ow]);
    for ni in 0..n {
        for co in 0..c {
            for dy in 0..r {
                for dx in 0..r {
                    let ci = co * r * r + dy * r + dx;
                    for y in 0..oh {
                        for x in 0..ow {
                            *out.at_mut(&[ni, ci, y, x]) =
                                input.at(&[ni, co, y * r + dy, x * r + dx]);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Backward pass of [`depth_to_space`]: routes the upstream gradient back to
/// the packed-channel layout. Because depth-to-space is a permutation, its
/// adjoint is exactly [`space_to_depth`].
pub fn depth_to_space_backward(d_out: &Tensor, r: usize) -> Tensor {
    space_to_depth(d_out, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_identity() {
        let x = Tensor::randn(&[2, 8, 3, 5], 0.0, 1.0, 1);
        let y = depth_to_space(&x, 2);
        assert_eq!(y.shape(), &[2, 2, 6, 10]);
        let back = space_to_depth(&y, 2);
        assert_eq!(back, x);
    }

    #[test]
    fn roundtrip_other_direction() {
        let x = Tensor::randn(&[1, 1, 6, 6], 0.0, 1.0, 2);
        let packed = space_to_depth(&x, 3);
        assert_eq!(packed.shape(), &[1, 9, 2, 2]);
        assert_eq!(depth_to_space(&packed, 3), x);
    }

    #[test]
    fn scale_one_is_identity() {
        let x = Tensor::randn(&[1, 3, 4, 4], 0.0, 1.0, 3);
        assert_eq!(depth_to_space(&x, 1), x);
        assert_eq!(space_to_depth(&x, 1), x);
    }

    #[test]
    fn two_x2_shuffles_match_spatial_x4_structure() {
        // The paper's x4 head applies depth-to-space twice on 16 channels.
        let x = Tensor::randn(&[1, 16, 2, 2], 0.0, 1.0, 4);
        let y = depth_to_space(&depth_to_space(&x, 2), 2);
        assert_eq!(y.shape(), &[1, 1, 8, 8]);
        // Energy is preserved (pure permutation).
        let ex: f64 = x.data().iter().map(|&v| (v * v) as f64).sum();
        let ey: f64 = y.data().iter().map(|&v| (v * v) as f64).sum();
        assert!((ex - ey).abs() < 1e-4);
    }

    #[test]
    fn layout_matches_subpixel_convention() {
        // channels [c0..c3], r=2: output block rows are (c0 c1 / c2 c3).
        let x = Tensor::from_vec((1..=8).map(|v| v as f32).collect(), &[1, 8, 1, 1]);
        let y = depth_to_space(&x, 2);
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn backward_is_adjoint() {
        // <d2s(x), g> == <x, s2d(g)>
        let x = Tensor::randn(&[1, 4, 3, 3], 0.0, 1.0, 5);
        let g = Tensor::randn(&[1, 1, 6, 6], 0.0, 1.0, 6);
        let lhs = depth_to_space(&x, 2).mul(&g).sum();
        let rhs = x.mul(&depth_to_space_backward(&g, 2)).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_channels() {
        depth_to_space(&Tensor::ones(&[1, 3, 2, 2]), 2);
    }
}
