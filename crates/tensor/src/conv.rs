//! 2-D convolution: forward, backward, and transposed variants.
//!
//! The fast path lowers each batch image with [`crate::im2col`] and runs a
//! single GEMM; a direct (naive) implementation is kept as the
//! property-tested reference. All kernels support rectangular (asymmetric)
//! and even-sized kernels — the paper's NAS search space (Sec. 3.4) uses
//! 2x2, 2x1, 3x2 and 2x3 kernels, which require asymmetric "same" padding.

use crate::gemm::{gemm, gemm_a_bt, gemm_at_b};
use crate::im2col::{col2im, im2col, ConvGeometry};
use crate::parallel::{parallel_for, SendPtr};
use crate::tensor::Tensor;

/// Padding policy for a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// Output spatial size equals input size (stride 1); for even kernels
    /// the extra padding goes on the bottom/right (TensorFlow convention).
    Same,
    /// No padding.
    Valid,
    /// Explicit `(top, bottom, left, right)` padding.
    Explicit(usize, usize, usize, usize),
}

/// Stride and padding of a convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Stride along the height axis.
    pub stride_h: usize,
    /// Stride along the width axis.
    pub stride_w: usize,
    /// Padding policy.
    pub padding: Padding,
}

impl Conv2dParams {
    /// Stride 1, "same" padding — the configuration used by every layer of
    /// the SESR inference network.
    pub fn same() -> Self {
        Self {
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Same,
        }
    }

    /// Stride 1, no padding.
    pub fn valid() -> Self {
        Self {
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Valid,
        }
    }

    /// Resolves the padding policy to explicit amounts for a `kh x kw`
    /// kernel.
    pub fn resolve_padding(&self, kh: usize, kw: usize) -> (usize, usize, usize, usize) {
        match self.padding {
            Padding::Valid => (0, 0, 0, 0),
            Padding::Explicit(t, b, l, r) => (t, b, l, r),
            Padding::Same => {
                let ph = kh - 1;
                let pw = kw - 1;
                (ph / 2, ph - ph / 2, pw / 2, pw - pw / 2)
            }
        }
    }

    fn geometry(&self, c: usize, h: usize, w: usize, kh: usize, kw: usize) -> ConvGeometry {
        let (pt, pb, pl, pr) = self.resolve_padding(kh, kw);
        ConvGeometry {
            channels: c,
            in_h: h,
            in_w: w,
            kh,
            kw,
            stride_h: self.stride_h,
            stride_w: self.stride_w,
            pad_top: pt,
            pad_bottom: pb,
            pad_left: pl,
            pad_right: pr,
        }
    }
}

fn check_conv_args(input: &Tensor, weight: &Tensor, bias: Option<&Tensor>) {
    assert_eq!(input.shape().len(), 4, "input must be NCHW");
    assert_eq!(weight.shape().len(), 4, "weight must be OIHW");
    assert_eq!(
        input.shape()[1],
        weight.shape()[1],
        "input channels {} != weight in-channels {}",
        input.shape()[1],
        weight.shape()[1]
    );
    if let Some(b) = bias {
        assert_eq!(
            b.shape(),
            &[weight.shape()[0]],
            "bias must have one element per output channel"
        );
    }
}

/// GEMM-based 2-D convolution.
///
/// `input` is NCHW, `weight` is OIHW, `bias` (optional) has one element per
/// output channel.
///
/// # Panics
///
/// Panics on layout mismatches or degenerate geometry.
///
/// # Example
///
/// ```
/// use sesr_tensor::{Tensor, conv::{conv2d, Conv2dParams}};
/// let x = Tensor::ones(&[1, 1, 4, 4]);
/// let w = Tensor::ones(&[1, 1, 3, 3]);
/// let y = conv2d(&x, &w, None, Conv2dParams::same());
/// // Center pixels see all nine taps.
/// assert_eq!(y.at(&[0, 0, 1, 1]), 9.0);
/// // Corner pixels see four taps.
/// assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Tensor {
    check_conv_args(input, weight, bias);
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (o, _, kh, kw) = weight.shape_obj().as_nchw();
    let geo = params.geometry(c, h, w, kh, kw);
    geo.validate();
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let image = c * h * w;
    let out_image = o * oh * ow;
    let plane = oh * ow;
    let in_data = input.data();
    let w_data = weight.data();
    let bias_data = bias.map(Tensor::data);
    let op = SendPtr(out.data_mut().as_mut_ptr());
    // Batch-parallel: images are independent and write disjoint output
    // slices. Each image's arithmetic is identical no matter which thread
    // runs it, so results stay bit-identical across thread counts.
    parallel_for(n, 1, |img_start, img_end| {
        let mut col = vec![0.0f32; geo.col_rows() * geo.col_cols()];
        for ni in img_start..img_end {
            im2col(&in_data[ni * image..(ni + 1) * image], &geo, &mut col);
            // SAFETY: image slices [ni*out_image, (ni+1)*out_image) are
            // disjoint across parallel_for chunks.
            let out_img = unsafe { op.slice_mut(ni * out_image, out_image) };
            gemm(w_data, &col, out_img, o, geo.col_rows(), geo.col_cols());
            if let Some(b) = bias_data {
                for (oi, &bv) in b.iter().enumerate() {
                    for v in &mut out_img[oi * plane..(oi + 1) * plane] {
                        *v += bv;
                    }
                }
            }
        }
    });
    out
}

/// Naive direct convolution used as the property-test reference.
///
/// # Panics
///
/// Same contract as [`conv2d`].
pub fn conv2d_direct(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
) -> Tensor {
    check_conv_args(input, weight, bias);
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (o, _, kh, kw) = weight.shape_obj().as_nchw();
    let geo = params.geometry(c, h, w, kh, kw);
    geo.validate();
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    for ni in 0..n {
        for oi in 0..o {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.map_or(0.0, |b| b.data()[oi]);
                    for ci in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * geo.stride_h + ky) as isize - geo.pad_top as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * geo.stride_w + kx) as isize - geo.pad_left as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at(&[ni, ci, iy as usize, ix as usize])
                                    * weight.at(&[oi, ci, ky, kx]);
                            }
                        }
                    }
                    *out.at_mut(&[ni, oi, oy, ox]) = acc;
                }
            }
        }
    }
    out
}

/// Gradients of a convolution: `(d_input, d_weight, d_bias)`.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, same shape as the input.
    pub d_input: Tensor,
    /// Gradient with respect to the weight, same shape as the weight.
    pub d_weight: Tensor,
    /// Gradient with respect to the bias (one element per output channel).
    pub d_bias: Tensor,
}

/// Backward pass of [`conv2d`].
///
/// Given `d_out = dL/d(conv2d(input, weight))`, returns gradients with
/// respect to input, weight and bias.
///
/// # Panics
///
/// Panics if `d_out` does not have the forward output's shape.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
) -> Conv2dGrads {
    check_conv_args(input, weight, None);
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (o, _, kh, kw) = weight.shape_obj().as_nchw();
    let geo = params.geometry(c, h, w, kh, kw);
    let (oh, ow) = (geo.out_h(), geo.out_w());
    assert_eq!(
        d_out.shape(),
        &[n, o, oh, ow],
        "d_out shape mismatch: expected {:?}",
        [n, o, oh, ow]
    );
    let col_rows = geo.col_rows();
    let col_cols = geo.col_cols();
    let image = c * h * w;
    let out_image = o * oh * ow;

    let mut d_input = Tensor::zeros(input.shape());
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros(&[o]);

    // Batch-parallel with per-image accumulators: every image's weight and
    // bias gradients land in their own slice of these staging buffers, and
    // the reduction below folds them in fixed image order. That keeps the
    // floating-point accumulation order identical whether the images were
    // processed by one thread or eight (and identical to the old
    // sequential loop), so loss trajectories are bit-reproducible across
    // thread counts.
    let wlen = o * col_rows;
    let mut dw_all = vec![0.0f32; n * wlen];
    let mut db_all = vec![0.0f32; n * o];
    let in_data = input.data();
    let out_data = d_out.data();
    let w_data = weight.data();
    let dip = SendPtr(d_input.data_mut().as_mut_ptr());
    let dwp = SendPtr(dw_all.as_mut_ptr());
    let dbp = SendPtr(db_all.as_mut_ptr());
    parallel_for(n, 1, |img_start, img_end| {
        let mut col = vec![0.0f32; col_rows * col_cols];
        let mut dcol = vec![0.0f32; col_rows * col_cols];
        for ni in img_start..img_end {
            let dy = &out_data[ni * out_image..(ni + 1) * out_image];
            // d_bias: sum of dy over spatial positions.
            for oi in 0..o {
                let mut s = 0.0f32;
                for v in &dy[oi * col_cols..(oi + 1) * col_cols] {
                    s += v;
                }
                // SAFETY: per-image slices of the staging buffers are
                // disjoint across parallel_for chunks.
                unsafe { dbp.write(ni * o + oi, s) };
            }
            // d_weight (this image) = dy (o x col_cols) * col^T.
            im2col(&in_data[ni * image..(ni + 1) * image], &geo, &mut col);
            // SAFETY: as above — image `ni` owns dw_all[ni*wlen..][..wlen].
            let dw_img = unsafe { dwp.slice_mut(ni * wlen, wlen) };
            gemm_a_bt(dy, &col, dw_img, o, col_cols, col_rows);
            // d_input = col2im( W^T (col_rows x o) * dy (o x col_cols) );
            // each image writes its own input-gradient slice.
            gemm_at_b(w_data, dy, &mut dcol, col_rows, o, col_cols);
            // SAFETY: image slices of d_input are disjoint across chunks.
            let dx_img = unsafe { dip.slice_mut(ni * image, image) };
            col2im(&dcol, &geo, dx_img);
        }
    });
    // Deterministic merge: image order, not thread completion order.
    for ni in 0..n {
        for (dst, src) in d_weight
            .data_mut()
            .iter_mut()
            .zip(dw_all[ni * wlen..(ni + 1) * wlen].iter())
        {
            *dst += src;
        }
        for (dst, src) in d_bias
            .data_mut()
            .iter_mut()
            .zip(db_all[ni * o..(ni + 1) * o].iter())
        {
            *dst += src;
        }
    }
    Conv2dGrads {
        d_input,
        d_weight,
        d_bias,
    }
}

/// Grouped 2-D convolution: input channels are split into `groups`
/// contiguous chunks, each convolved with its own weight slice. Weight
/// layout is `[O, C/groups, kh, kw]` with the first `O/groups` output
/// channels reading group 0, and so on — the layout CARN-M-style
/// efficient residual blocks use.
///
/// # Panics
///
/// Panics if channel counts are not divisible by `groups` or layouts
/// disagree.
pub fn conv2d_grouped(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    params: Conv2dParams,
    groups: usize,
) -> Tensor {
    if groups == 1 {
        return conv2d(input, weight, bias, params);
    }
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (o, cg, kh, kw) = weight.shape_obj().as_nchw();
    assert!(groups > 0, "groups must be positive");
    assert_eq!(
        c % groups,
        0,
        "input channels {c} not divisible by {groups}"
    );
    assert_eq!(
        o % groups,
        0,
        "output channels {o} not divisible by {groups}"
    );
    assert_eq!(cg, c / groups, "weight in-channels must be C/groups");
    let (og, icg) = (o / groups, c / groups);
    let geo = params.geometry(icg, h, w, kh, kw);
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    for g in 0..groups {
        // Slice input channels of this group.
        let mut xin = Tensor::zeros(&[n, icg, h, w]);
        for ni in 0..n {
            for cc in 0..icg {
                let src = ((ni * c) + g * icg + cc) * h * w;
                let dst = (ni * icg + cc) * h * w;
                xin.data_mut()[dst..dst + h * w].copy_from_slice(&input.data()[src..src + h * w]);
            }
        }
        let wslice = Tensor::from_vec(
            weight.data()[g * og * icg * kh * kw..(g + 1) * og * icg * kh * kw].to_vec(),
            &[og, icg, kh, kw],
        );
        let bslice = bias.map(|b| Tensor::from_vec(b.data()[g * og..(g + 1) * og].to_vec(), &[og]));
        let y = conv2d(&xin, &wslice, bslice.as_ref(), params);
        for ni in 0..n {
            for oo in 0..og {
                let src = (ni * og + oo) * oh * ow;
                let dst = ((ni * o) + g * og + oo) * oh * ow;
                out.data_mut()[dst..dst + oh * ow].copy_from_slice(&y.data()[src..src + oh * ow]);
            }
        }
    }
    out
}

/// Backward pass of [`conv2d_grouped`].
///
/// # Panics
///
/// Same contract as [`conv2d_grouped`]; `d_out` must match the forward
/// output's shape.
pub fn conv2d_grouped_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    params: Conv2dParams,
    groups: usize,
) -> Conv2dGrads {
    if groups == 1 {
        return conv2d_backward(input, weight, d_out, params);
    }
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (o, _, kh, kw) = weight.shape_obj().as_nchw();
    let (og, icg) = (o / groups, c / groups);
    let geo = params.geometry(icg, h, w, kh, kw);
    let (oh, ow) = (geo.out_h(), geo.out_w());
    let mut d_input = Tensor::zeros(input.shape());
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros(&[o]);
    for g in 0..groups {
        let mut xin = Tensor::zeros(&[n, icg, h, w]);
        let mut gout = Tensor::zeros(&[n, og, oh, ow]);
        for ni in 0..n {
            for cc in 0..icg {
                let src = ((ni * c) + g * icg + cc) * h * w;
                let dst = (ni * icg + cc) * h * w;
                xin.data_mut()[dst..dst + h * w].copy_from_slice(&input.data()[src..src + h * w]);
            }
            for oo in 0..og {
                let src = ((ni * o) + g * og + oo) * oh * ow;
                let dst = (ni * og + oo) * oh * ow;
                gout.data_mut()[dst..dst + oh * ow]
                    .copy_from_slice(&d_out.data()[src..src + oh * ow]);
            }
        }
        let wslice = Tensor::from_vec(
            weight.data()[g * og * icg * kh * kw..(g + 1) * og * icg * kh * kw].to_vec(),
            &[og, icg, kh, kw],
        );
        let grads = conv2d_backward(&xin, &wslice, &gout, params);
        for ni in 0..n {
            for cc in 0..icg {
                let dst = ((ni * c) + g * icg + cc) * h * w;
                let src = (ni * icg + cc) * h * w;
                d_input.data_mut()[dst..dst + h * w]
                    .copy_from_slice(&grads.d_input.data()[src..src + h * w]);
            }
        }
        let wbase = g * og * icg * kh * kw;
        d_weight.data_mut()[wbase..wbase + og * icg * kh * kw]
            .copy_from_slice(grads.d_weight.data());
        d_bias.data_mut()[g * og..(g + 1) * og].copy_from_slice(grads.d_bias.data());
    }
    Conv2dGrads {
        d_input,
        d_weight,
        d_bias,
    }
}

/// Transposed convolution (a.k.a. deconvolution), weight layout IOHW
/// (`[in_channels, out_channels, kh, kw]`), as used by the FSRCNN baseline's
/// upsampling head.
///
/// Output size follows the usual formula
/// `out = (in - 1) * stride - pad_total + k + output_padding` per axis, with
/// symmetric padding `pad` on both sides.
///
/// # Panics
///
/// Panics on layout mismatch or if padding exceeds what the kernel allows.
pub fn conv_transpose2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
    output_padding: usize,
) -> Tensor {
    assert_eq!(input.shape().len(), 4, "input must be NCHW");
    assert_eq!(weight.shape().len(), 4, "weight must be IOHW");
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (wi, o, kh, kw) = weight.shape_obj().as_nchw();
    assert_eq!(c, wi, "input channels {c} != weight in-channels {wi}");
    assert!(
        output_padding < stride.max(1),
        "output_padding must be < stride"
    );
    let oh = (h - 1) * stride + kh + output_padding;
    let ow = (w - 1) * stride + kw + output_padding;
    assert!(oh > 2 * pad && ow > 2 * pad, "padding too large for output");
    let (oh, ow) = (oh - 2 * pad, ow - 2 * pad);
    if let Some(b) = bias {
        assert_eq!(
            b.shape(),
            &[o],
            "bias must have one element per output channel"
        );
    }
    let mut out = Tensor::zeros(&[n, o, oh, ow]);
    let in_data = input.data();
    let w_data = weight.data();
    let out_data = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let w_base_c = ci * o * kh * kw;
            for iy in 0..h {
                for ix in 0..w {
                    let x = in_data[in_base + iy * w + ix];
                    if x == 0.0 {
                        continue;
                    }
                    for oi in 0..o {
                        let out_base = (ni * o + oi) * oh * ow;
                        let w_base = w_base_c + oi * kh * kw;
                        for ky in 0..kh {
                            let oy = (iy * stride + ky) as isize - pad as isize;
                            if oy < 0 || oy >= oh as isize {
                                continue;
                            }
                            let out_row = out_base + oy as usize * ow;
                            let w_row = w_base + ky * kw;
                            for kx in 0..kw {
                                let ox = (ix * stride + kx) as isize - pad as isize;
                                if ox < 0 || ox >= ow as isize {
                                    continue;
                                }
                                out_data[out_row + ox as usize] += x * w_data[w_row + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some(b) = bias {
        let plane = oh * ow;
        for ni in 0..n {
            for oi in 0..o {
                let bv = b.data()[oi];
                let base = (ni * o + oi) * plane;
                for v in &mut out.data_mut()[base..base + plane] {
                    *v += bv;
                }
            }
        }
    }
    out
}

/// Backward pass of [`conv_transpose2d`]; returns `(d_input, d_weight,
/// d_bias)` given the upstream gradient `d_out`.
///
/// # Panics
///
/// Panics if `d_out` does not match the forward output's shape.
pub fn conv_transpose2d_backward(
    input: &Tensor,
    weight: &Tensor,
    d_out: &Tensor,
    stride: usize,
    pad: usize,
    output_padding: usize,
) -> Conv2dGrads {
    let (n, c, h, w) = input.shape_obj().as_nchw();
    let (_, o, kh, kw) = weight.shape_obj().as_nchw();
    let oh = (h - 1) * stride + kh + output_padding - 2 * pad;
    let ow = (w - 1) * stride + kw + output_padding - 2 * pad;
    assert_eq!(d_out.shape(), &[n, o, oh, ow], "d_out shape mismatch");
    let mut d_input = Tensor::zeros(input.shape());
    let mut d_weight = Tensor::zeros(weight.shape());
    let mut d_bias = Tensor::zeros(&[o]);
    let in_data = input.data();
    let w_data = weight.data();
    let g_data = d_out.data();
    for ni in 0..n {
        for oi in 0..o {
            let g_base = (ni * o + oi) * oh * ow;
            let mut s = 0.0f32;
            for v in &g_data[g_base..g_base + oh * ow] {
                s += v;
            }
            d_bias.data_mut()[oi] += s;
        }
        for ci in 0..c {
            let in_base = (ni * c + ci) * h * w;
            let w_base_c = ci * o * kh * kw;
            for iy in 0..h {
                for ix in 0..w {
                    let x = in_data[in_base + iy * w + ix];
                    let mut dx = 0.0f32;
                    for oi in 0..o {
                        let g_base = (ni * o + oi) * oh * ow;
                        let w_base = w_base_c + oi * kh * kw;
                        for ky in 0..kh {
                            let oy = (iy * stride + ky) as isize - pad as isize;
                            if oy < 0 || oy >= oh as isize {
                                continue;
                            }
                            let g_row = g_base + oy as usize * ow;
                            let w_row = w_base + ky * kw;
                            for kx in 0..kw {
                                let ox = (ix * stride + kx) as isize - pad as isize;
                                if ox < 0 || ox >= ow as isize {
                                    continue;
                                }
                                let g = g_data[g_row + ox as usize];
                                dx += g * w_data[w_row + kx];
                                d_weight.data_mut()[w_row + kx] += g * x;
                            }
                        }
                    }
                    d_input.data_mut()[in_base + iy * w + ix] += dx;
                }
            }
        }
    }
    Conv2dGrads {
        d_input,
        d_weight,
        d_bias,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_path_matches_direct_odd_kernel() {
        let x = Tensor::randn(&[2, 3, 7, 6], 0.0, 1.0, 1);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.0, 0.5, 2);
        let b = Tensor::randn(&[4], 0.0, 0.5, 3);
        let fast = conv2d(&x, &w, Some(&b), Conv2dParams::same());
        let slow = conv2d_direct(&x, &w, Some(&b), Conv2dParams::same());
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    #[test]
    fn gemm_path_matches_direct_asymmetric_kernel() {
        for (kh, kw) in [(2, 2), (2, 1), (3, 2), (2, 3), (1, 1), (5, 5)] {
            let x = Tensor::randn(&[1, 2, 6, 6], 0.0, 1.0, 10 + kh as u64);
            let w = Tensor::randn(&[3, 2, kh, kw], 0.0, 0.5, 20 + kw as u64);
            let fast = conv2d(&x, &w, None, Conv2dParams::same());
            let slow = conv2d_direct(&x, &w, None, Conv2dParams::same());
            assert_eq!(
                fast.shape(),
                &[1, 3, 6, 6],
                "same padding keeps size for {kh}x{kw}"
            );
            assert!(fast.approx_eq(&slow, 1e-4), "kernel {kh}x{kw}");
        }
    }

    #[test]
    fn valid_padding_shrinks() {
        let x = Tensor::ones(&[1, 1, 5, 5]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(&x, &w, None, Conv2dParams::valid());
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        assert!(y.data().iter().all(|&v| v == 9.0));
    }

    #[test]
    fn identity_kernel_is_identity() {
        let x = Tensor::randn(&[1, 3, 5, 5], 0.0, 1.0, 5);
        let w = Tensor::identity_kernel(3, 3);
        let y = conv2d(&x, &w, None, Conv2dParams::same());
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn strided_conv() {
        let x = Tensor::randn(&[1, 1, 8, 8], 0.0, 1.0, 6);
        let w = Tensor::randn(&[2, 1, 3, 3], 0.0, 1.0, 7);
        let p = Conv2dParams {
            stride_h: 2,
            stride_w: 2,
            padding: Padding::Explicit(1, 1, 1, 1),
        };
        let fast = conv2d(&x, &w, None, p);
        let slow = conv2d_direct(&x, &w, None, p);
        assert_eq!(fast.shape(), &[1, 2, 4, 4]);
        assert!(fast.approx_eq(&slow, 1e-4));
    }

    /// Finite-difference check of all three gradients.
    #[test]
    fn backward_matches_finite_differences() {
        let x = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, 30);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.0, 0.5, 31);
        let b = Tensor::randn(&[3], 0.0, 0.5, 32);
        let p = Conv2dParams::same();
        // Loss = sum(conv(x, w, b) * g) for fixed random g.
        let g = Tensor::randn(&[1, 3, 4, 4], 0.0, 1.0, 33);
        let loss =
            |x: &Tensor, w: &Tensor, b: &Tensor| -> f64 { conv2d(x, w, Some(b), p).mul(&g).sum() };
        let grads = conv2d_backward(&x, &w, &g, p);
        let eps = 1e-3f32;
        // Weight gradient.
        for idx in [0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64);
            let an = grads.d_weight.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dW[{idx}]: fd={fd} an={an}");
        }
        // Input gradient.
        for idx in [0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps as f64);
            let an = grads.d_input.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dX[{idx}]: fd={fd} an={an}");
        }
        // Bias gradient.
        for idx in 0..3 {
            let mut bp = b.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = b.clone();
            bm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps as f64);
            let an = grads.d_bias.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dB[{idx}]: fd={fd} an={an}");
        }
    }

    #[test]
    fn conv_transpose_upsamples() {
        // FSRCNN-style: stride 2, 9x9 kernel, pad 4, output_padding 1 doubles size.
        let x = Tensor::randn(&[1, 4, 5, 5], 0.0, 1.0, 40);
        let w = Tensor::randn(&[4, 1, 9, 9], 0.0, 0.2, 41);
        let y = conv_transpose2d(&x, &w, None, 2, 4, 1);
        assert_eq!(y.shape(), &[1, 1, 10, 10]);
    }

    #[test]
    fn conv_transpose_stride1_equals_full_correlation() {
        // stride-1 transposed conv with pad p equals conv with flipped
        // kernel and pad (k-1-p).
        let x = Tensor::randn(&[1, 1, 5, 5], 0.0, 1.0, 42);
        let w = Tensor::randn(&[1, 1, 3, 3], 0.0, 1.0, 43);
        let y = conv_transpose2d(&x, &w, None, 1, 1, 0);
        let w_flipped = w.reverse(&[2, 3]);
        let y2 = conv2d(
            &x,
            &w_flipped,
            None,
            Conv2dParams {
                stride_h: 1,
                stride_w: 1,
                padding: Padding::Explicit(1, 1, 1, 1),
            },
        );
        assert!(y.approx_eq(&y2, 1e-4));
    }

    #[test]
    fn conv_transpose_backward_finite_diff() {
        let x = Tensor::randn(&[1, 2, 3, 3], 0.0, 1.0, 50);
        let w = Tensor::randn(&[2, 1, 4, 4], 0.0, 0.5, 51);
        let g = Tensor::randn(&[1, 1, 6, 6], 0.0, 1.0, 52);
        let loss =
            |x: &Tensor, w: &Tensor| -> f64 { conv_transpose2d(x, w, None, 2, 1, 0).mul(&g).sum() };
        let grads = conv_transpose2d_backward(&x, &w, &g, 2, 1, 0);
        let eps = 1e-3f32;
        for idx in [0usize, 4, 9, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64);
            let an = grads.d_input.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dX[{idx}]: fd={fd} an={an}");
        }
        for idx in [0usize, 8, 19, 31] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64);
            let an = grads.d_weight.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dW[{idx}]: fd={fd} an={an}");
        }
    }

    #[test]
    #[should_panic(expected = "input channels")]
    fn channel_mismatch_rejected() {
        let x = Tensor::ones(&[1, 2, 4, 4]);
        let w = Tensor::ones(&[1, 3, 3, 3]);
        conv2d(&x, &w, None, Conv2dParams::same());
    }

    #[test]
    fn grouped_conv_with_one_group_equals_dense() {
        let x = Tensor::randn(&[1, 4, 6, 6], 0.0, 1.0, 70);
        let w = Tensor::randn(&[6, 4, 3, 3], 0.0, 0.5, 71);
        let dense = conv2d(&x, &w, None, Conv2dParams::same());
        let grouped = conv2d_grouped(&x, &w, None, Conv2dParams::same(), 1);
        assert!(dense.approx_eq(&grouped, 0.0));
    }

    #[test]
    fn grouped_conv_matches_blockdiagonal_dense() {
        // g groups == a dense conv with a block-diagonal weight.
        let (c, o, g) = (4usize, 4usize, 2usize);
        let x = Tensor::randn(&[2, c, 5, 5], 0.0, 1.0, 72);
        let wg = Tensor::randn(&[o, c / g, 3, 3], 0.0, 0.5, 73);
        let grouped = conv2d_grouped(&x, &wg, None, Conv2dParams::same(), g);
        // Expand to dense block-diagonal.
        let mut dense_w = Tensor::zeros(&[o, c, 3, 3]);
        let (og, icg) = (o / g, c / g);
        for gi in 0..g {
            for oo in 0..og {
                for ii in 0..icg {
                    for ky in 0..3 {
                        for kx in 0..3 {
                            *dense_w.at_mut(&[gi * og + oo, gi * icg + ii, ky, kx]) =
                                wg.at(&[gi * og + oo, ii, ky, kx]);
                        }
                    }
                }
            }
        }
        let dense = conv2d(&x, &dense_w, None, Conv2dParams::same());
        assert!(
            grouped.approx_eq(&dense, 1e-4),
            "diff {}",
            grouped.max_abs_diff(&dense)
        );
    }

    #[test]
    fn grouped_backward_finite_diff() {
        let x = Tensor::randn(&[1, 4, 4, 4], 0.0, 1.0, 74);
        let w = Tensor::randn(&[4, 2, 3, 3], 0.0, 0.5, 75);
        let g = Tensor::randn(&[1, 4, 4, 4], 0.0, 1.0, 76);
        let p = Conv2dParams::same();
        let loss = |x: &Tensor, w: &Tensor| conv2d_grouped(x, w, None, p, 2).mul(&g).sum();
        let grads = conv2d_grouped_backward(&x, &w, &g, p, 2);
        let eps = 1e-3f32;
        for idx in [0usize, 17, 40, 63] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64);
            let an = grads.d_input.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dX[{idx}] fd={fd} an={an}");
        }
        for idx in [0usize, 20, 50, 71] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = w.clone();
            wm.data_mut()[idx] -= eps;
            let fd = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64);
            let an = grads.d_weight.data()[idx] as f64;
            assert!((fd - an).abs() < 2e-2, "dW[{idx}] fd={fd} an={an}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn grouped_rejects_indivisible_channels() {
        let x = Tensor::ones(&[1, 3, 4, 4]);
        let w = Tensor::ones(&[4, 1, 3, 3]);
        conv2d_grouped(&x, &w, None, Conv2dParams::same(), 2);
    }

    #[test]
    fn conv_is_linear_in_input() {
        let x1 = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, 60);
        let x2 = Tensor::randn(&[1, 2, 4, 4], 0.0, 1.0, 61);
        let w = Tensor::randn(&[2, 2, 3, 3], 0.0, 1.0, 62);
        let p = Conv2dParams::same();
        let lhs = conv2d(&x1.add(&x2), &w, None, p);
        let rhs = conv2d(&x1, &w, None, p).add(&conv2d(&x2, &w, None, p));
        assert!(lhs.approx_eq(&rhs, 1e-4));
    }
}
