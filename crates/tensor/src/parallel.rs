//! Persistent-pool data-parallel helpers.
//!
//! The heavy kernels in this crate (GEMM, direct convolution) are
//! embarrassingly parallel over output rows. Earlier revisions spawned a
//! fresh `crossbeam::scope` per call, which put a thread-creation syscall
//! on every GEMM in the training hot path. This module instead keeps one
//! process-wide pool of parked worker threads and hands each
//! [`parallel_for`] call out as contiguous chunks of the index range —
//! same chunking semantics, same [`set_num_threads`] override, no per-call
//! spawn cost.
//!
//! # Pool design
//!
//! A global queue of jobs feeds `num_threads() - 1` lazily spawned
//! workers; the submitting thread always participates in its own job, so
//! every call makes progress even when all workers are busy (which also
//! makes *nested* `parallel_for` calls deadlock-free: any claimed chunk
//! runs to completion on the thread that claimed it). Workers park on a
//! condvar when the queue is empty. Chunks are claimed with a single
//! atomic increment, and the caller blocks until every chunk of its job
//! has finished, so the closure's borrows stay alive for exactly as long
//! as the pool can touch them. A worker panic is caught, recorded, and
//! re-raised on the submitting thread as `"parallel_for worker
//! panicked"`.
//!
//! Chunk boundaries affect only *which thread* runs an index range, never
//! the arithmetic inside a chunk, so kernels built on this module keep
//! bit-identical results across thread counts (see DESIGN.md, "Threading
//! model").

use parking_lot::Once;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

static THREADS: AtomicUsize = AtomicUsize::new(0);
static INIT: Once = Once::new();

/// Number of worker threads used by [`parallel_for`].
///
/// Defaults to the machine's available parallelism, clamped to 16 (conv
/// workloads here stop scaling beyond that). Override with
/// [`set_num_threads`].
pub fn num_threads() -> usize {
    INIT.call_once(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        THREADS.store(n, Ordering::SeqCst);
    });
    THREADS.load(Ordering::SeqCst).max(1)
}

/// Overrides the worker-thread count (1 = fully sequential). Intended for
/// benchmarking and tests. Takes effect on the next [`parallel_for`]
/// call; already-spawned pool workers are kept parked, never killed.
pub fn set_num_threads(n: usize) {
    INIT.call_once(|| {});
    THREADS.store(n.max(1), Ordering::SeqCst);
}

/// One submitted `parallel_for` call: an erased closure plus chunk
/// bookkeeping. Workers claim chunk indices with a single atomic
/// increment; the last finished chunk wakes the submitting thread.
struct Job {
    /// The caller's closure with its lifetime erased. Sound because the
    /// submitting call frame blocks until `completed == chunks`, keeping
    /// the closure (and everything it borrows) alive while any thread can
    /// still run it.
    body: *const (dyn Fn(usize, usize) + Sync),
    n: usize,
    chunk: usize,
    chunks: usize,
    next: AtomicUsize,
    completed: Mutex<usize>,
    done: Condvar,
    poisoned: AtomicBool,
}

// SAFETY: `body` is only dereferenced between submission and the
// submitter's wakeup (see the field comment), and the pointee is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims the next unclaimed chunk, or `None` when the job is fully
    /// handed out.
    fn claim(&self) -> Option<(usize, usize)> {
        let t = self.next.fetch_add(1, Ordering::Relaxed);
        if t >= self.chunks {
            return None;
        }
        let start = t * self.chunk;
        let end = ((t + 1) * self.chunk).min(self.n);
        Some((start, end))
    }

    /// Runs one claimed chunk, catching panics so a worker thread never
    /// dies, and wakes the submitter when this was the last chunk.
    fn run_chunk(&self, start: usize, end: usize) {
        // SAFETY: see the `body` field comment — the submitter keeps the
        // closure alive until every chunk has completed.
        let body = unsafe { &*self.body };
        if catch_unwind(AssertUnwindSafe(|| body(start, end))).is_err() {
            self.poisoned.store(true, Ordering::SeqCst);
        }
        let mut completed = self.completed.lock().expect("job lock poisoned");
        *completed += 1;
        if *completed == self.chunks {
            self.done.notify_all();
        }
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work: Condvar,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

/// Grows the pool to `target` parked workers (never shrinks — idle
/// workers cost one parked thread each).
fn ensure_workers(pool: &'static Pool, target: usize) {
    let mut spawned = pool.spawned.lock().expect("pool lock poisoned");
    while *spawned < target {
        std::thread::Builder::new()
            .name(format!("sesr-par-{spawned}"))
            .spawn(move || worker_loop(pool))
            .expect("failed to spawn parallel_for worker");
        *spawned += 1;
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().expect("pool lock poisoned");
            loop {
                // Drop jobs whose chunks are all claimed; their claimants
                // finish them.
                while q
                    .front()
                    .is_some_and(|j| j.next.load(Ordering::Relaxed) >= j.chunks)
                {
                    q.pop_front();
                }
                if let Some(j) = q.front() {
                    break Arc::clone(j);
                }
                q = pool.work.wait(q).expect("pool lock poisoned");
            }
        };
        while let Some((start, end)) = job.claim() {
            job.run_chunk(start, end);
        }
    }
}

/// Runs `body(start, end)` over disjoint chunks of `0..n` in parallel.
///
/// The closure receives half-open chunk bounds. Chunks never overlap, so the
/// typical pattern is to have each invocation write a disjoint slice of a
/// shared output buffer obtained via `split_at_mut` logic inside the caller;
/// this helper instead hands out index ranges and lets the caller index
/// thread-safely (e.g. through raw pointers wrapped in a `SendPtr`).
///
/// Falls back to a single sequential call when `n` is small or only one
/// thread is configured. Nested calls are allowed (the submitting thread
/// participates in its own job, so progress never depends on a free
/// worker).
///
/// # Panics
///
/// Panics with `"parallel_for worker panicked"` if `body` panicked on any
/// chunk (including chunks run by the submitting thread itself).
pub fn parallel_for(n: usize, min_chunk: usize, body: impl Fn(usize, usize) + Sync) {
    let threads = num_threads();
    if threads <= 1 || n <= min_chunk {
        body(0, n);
        return;
    }
    let chunks = threads.min(n.div_ceil(min_chunk.max(1)));
    let chunk = n.div_ceil(chunks);
    // Recompute so the final chunk is never empty.
    let chunks = n.div_ceil(chunk);
    if chunks <= 1 {
        body(0, n);
        return;
    }

    let pool = pool();
    ensure_workers(pool, threads - 1);

    let body_ref: &(dyn Fn(usize, usize) + Sync) = &body;
    // SAFETY: erases the borrow's lifetime. This frame blocks below until
    // `completed == chunks`, so no thread touches `body` after it returns.
    let body_ptr: *const (dyn Fn(usize, usize) + Sync) = unsafe { std::mem::transmute(body_ref) };
    let job = Arc::new(Job {
        body: body_ptr,
        n,
        chunk,
        chunks,
        next: AtomicUsize::new(0),
        completed: Mutex::new(0),
        done: Condvar::new(),
        poisoned: AtomicBool::new(false),
    });

    {
        let mut q = pool.queue.lock().expect("pool lock poisoned");
        q.push_back(Arc::clone(&job));
    }
    pool.work.notify_all();

    // Participate: the submitter claims chunks like any worker, so the job
    // completes even if every pool worker is busy elsewhere.
    while let Some((start, end)) = job.claim() {
        job.run_chunk(start, end);
    }
    let mut completed = job.completed.lock().expect("job lock poisoned");
    while *completed < job.chunks {
        completed = job.done.wait(completed).expect("job lock poisoned");
    }
    drop(completed);
    assert!(
        !job.poisoned.load(Ordering::SeqCst),
        "parallel_for worker panicked"
    );
}

/// A `Send`/`Sync` wrapper around a raw mutable pointer, used to let
/// disjoint chunks of one output buffer be written from multiple threads.
///
/// # Safety contract
///
/// Callers must guarantee that concurrent users write disjoint index
/// ranges. [`parallel_for`] hands out disjoint ranges, so pairing the two is
/// safe by construction.
#[derive(Clone, Copy)]
pub struct SendPtr(pub *mut f32);

// SAFETY: `SendPtr` is only used with `parallel_for`, whose chunks index
// disjoint regions of the pointee buffer.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Writes `value` at `offset`.
    ///
    /// # Safety
    ///
    /// `offset` must be in bounds for the allocation and not concurrently
    /// written by another thread.
    #[inline]
    pub unsafe fn write(&self, offset: usize, value: f32) {
        // SAFETY: bounds and non-aliasing are the caller's contract (see
        // above).
        unsafe { *self.0.add(offset) = value };
    }

    /// Adds `value` at `offset`.
    ///
    /// # Safety
    ///
    /// Same contract as [`SendPtr::write`].
    #[inline]
    pub unsafe fn add_assign(&self, offset: usize, value: f32) {
        // SAFETY: bounds and non-aliasing are the caller's contract (see
        // above).
        unsafe { *self.0.add(offset) += value };
    }

    /// Reborrows `offset..offset + len` of the pointee as a mutable
    /// slice (e.g. one batch image's slab of a shared output buffer).
    ///
    /// # Safety
    ///
    /// The range must be in bounds for the allocation and not aliased by
    /// any other live reference or concurrent access for the slice's
    /// lifetime. The caller also chooses `'a`: the slice must not outlive
    /// the buffer the pointer was taken from.
    #[inline]
    pub unsafe fn slice_mut<'a>(self, offset: usize, len: usize) -> &'a mut [f32] {
        // SAFETY: range validity, non-aliasing, and the lifetime bound are
        // the caller's contract (see above).
        unsafe { std::slice::from_raw_parts_mut(self.0.add(offset), len) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Serializes tests that touch the global thread count, pinning it to
    /// `n` for the duration of `f` (the machine running the tests may
    /// report a single core, which would otherwise skip the pool path).
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = num_threads();
        set_num_threads(n);
        let out = f();
        set_num_threads(before);
        out
    }

    #[test]
    fn covers_full_range_once() {
        let sum = AtomicU64::new(0);
        parallel_for(1000, 10, |s, e| {
            let local: u64 = (s..e).map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 999 * 1000 / 2);
    }

    #[test]
    fn small_ranges_run_sequentially() {
        let sum = AtomicU64::new(0);
        parallel_for(3, 100, |s, e| {
            assert_eq!((s, e), (0, 3));
            sum.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn min_chunk_larger_than_n_is_one_sequential_call() {
        let calls = AtomicU64::new(0);
        parallel_for(7, 8, |s, e| {
            assert_eq!((s, e), (0, 7));
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_items_is_a_noop_call() {
        parallel_for(0, 1, |s, e| assert_eq!(s, e));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn pool_survives_many_calls() {
        // Exercises job-queue reuse: every call must complete and cover
        // its range exactly once, long after the first spawn.
        with_threads(4, || {
            for round in 0..200u64 {
                let sum = AtomicU64::new(0);
                parallel_for(64, 1, |s, e| {
                    sum.fetch_add((e - s) as u64, Ordering::SeqCst);
                });
                assert_eq!(sum.load(Ordering::SeqCst), 64, "round {round}");
            }
        });
    }

    #[test]
    fn nested_parallel_for_completes() {
        with_threads(4, || {
            let sum = AtomicU64::new(0);
            parallel_for(8, 1, |s, e| {
                for _ in s..e {
                    parallel_for(16, 1, |s2, e2| {
                        sum.fetch_add((e2 - s2) as u64, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(sum.load(Ordering::SeqCst), 8 * 16);
        });
    }

    #[test]
    fn concurrent_submissions_all_complete() {
        // The serve engine submits kernels from several request workers at
        // once; every overlapping job must still cover its own range.
        with_threads(4, || {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for _ in 0..50 {
                            let sum = AtomicU64::new(0);
                            parallel_for(128, 1, |s, e| {
                                sum.fetch_add((e - s) as u64, Ordering::SeqCst);
                            });
                            assert_eq!(sum.load(Ordering::SeqCst), 128);
                        }
                    });
                }
            });
        });
    }

    #[test]
    fn single_thread_override_mid_run_applies_to_next_call() {
        with_threads(4, || {
            let seen = AtomicU64::new(0);
            parallel_for(64, 1, |s, e| {
                // Flip to sequential from inside a running job: the
                // current job is unaffected, the next call must be one
                // chunk.
                set_num_threads(1);
                seen.fetch_add((e - s) as u64, Ordering::SeqCst);
            });
            assert_eq!(seen.load(Ordering::SeqCst), 64);
            let calls = AtomicU64::new(0);
            parallel_for(64, 1, |s, e| {
                assert_eq!((s, e), (0, 64));
                calls.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(calls.load(Ordering::SeqCst), 1);
        });
    }

    #[test]
    fn body_panic_is_propagated_to_the_submitter() {
        let caught = with_threads(4, || {
            std::panic::catch_unwind(|| {
                parallel_for(64, 1, |s, _| {
                    if s >= 8 {
                        panic!("injected chunk failure");
                    }
                });
            })
        });
        let payload = caught.expect_err("the panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("parallel_for worker panicked"), "{msg}");
    }

    #[test]
    fn sendptr_disjoint_writes() {
        let mut buf = vec![0.0f32; 64];
        let ptr = SendPtr(buf.as_mut_ptr());
        parallel_for(64, 4, |s, e| {
            for i in s..e {
                // SAFETY: ranges are disjoint per parallel_for contract.
                unsafe { ptr.write(i, i as f32) };
            }
        });
        assert_eq!(buf[63], 63.0);
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[10], 10.0);
    }
}
