//! Tiny scoped data-parallel helpers.
//!
//! The heavy kernels in this crate (GEMM, direct convolution) are
//! embarrassingly parallel over output rows. Rather than pulling in a full
//! work-stealing runtime, this module provides a scoped `parallel_for` that
//! splits an index range into contiguous chunks across the machine's cores
//! using `crossbeam::scope`.

use parking_lot::Once;
use std::sync::atomic::{AtomicUsize, Ordering};

static THREADS: AtomicUsize = AtomicUsize::new(0);
static INIT: Once = Once::new();

/// Number of worker threads used by [`parallel_for`].
///
/// Defaults to the machine's available parallelism, clamped to 16 (conv
/// workloads here stop scaling beyond that). Override with
/// [`set_num_threads`].
pub fn num_threads() -> usize {
    INIT.call_once(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(16);
        THREADS.store(n, Ordering::SeqCst);
    });
    THREADS.load(Ordering::SeqCst).max(1)
}

/// Overrides the worker-thread count (1 = fully sequential). Intended for
/// benchmarking and tests.
pub fn set_num_threads(n: usize) {
    INIT.call_once(|| {});
    THREADS.store(n.max(1), Ordering::SeqCst);
}

/// Runs `body(start, end)` over disjoint chunks of `0..n` in parallel.
///
/// The closure receives half-open chunk bounds. Chunks never overlap, so the
/// typical pattern is to have each invocation write a disjoint slice of a
/// shared output buffer obtained via `split_at_mut` logic inside the caller;
/// this helper instead hands out index ranges and lets the caller index
/// thread-safely (e.g. through raw pointers wrapped in a `SendPtr`).
///
/// Falls back to a single sequential call when `n` is small or only one
/// thread is configured.
pub fn parallel_for(n: usize, min_chunk: usize, body: impl Fn(usize, usize) + Sync) {
    let threads = num_threads();
    if threads <= 1 || n <= min_chunk {
        body(0, n);
        return;
    }
    let chunks = threads.min(n.div_ceil(min_chunk.max(1)));
    let chunk = n.div_ceil(chunks);
    crossbeam::scope(|scope| {
        for t in 0..chunks {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(n);
            if start >= end {
                break;
            }
            let body = &body;
            scope.spawn(move |_| body(start, end));
        }
    })
    .expect("parallel_for worker panicked");
}

/// A `Send`/`Sync` wrapper around a raw mutable pointer, used to let
/// disjoint chunks of one output buffer be written from multiple threads.
///
/// # Safety contract
///
/// Callers must guarantee that concurrent users write disjoint index
/// ranges. [`parallel_for`] hands out disjoint ranges, so pairing the two is
/// safe by construction.
#[derive(Clone, Copy)]
pub struct SendPtr(pub *mut f32);

// SAFETY: `SendPtr` is only used with `parallel_for`, whose chunks index
// disjoint regions of the pointee buffer.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Writes `value` at `offset`.
    ///
    /// # Safety
    ///
    /// `offset` must be in bounds for the allocation and not concurrently
    /// written by another thread.
    #[inline]
    pub unsafe fn write(&self, offset: usize, value: f32) {
        *self.0.add(offset) = value;
    }

    /// Adds `value` at `offset`.
    ///
    /// # Safety
    ///
    /// Same contract as [`SendPtr::write`].
    #[inline]
    pub unsafe fn add_assign(&self, offset: usize, value: f32) {
        *self.0.add(offset) += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn covers_full_range_once() {
        let sum = AtomicU64::new(0);
        parallel_for(1000, 10, |s, e| {
            let local: u64 = (s..e).map(|i| i as u64).sum();
            sum.fetch_add(local, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 999 * 1000 / 2);
    }

    #[test]
    fn small_ranges_run_sequentially() {
        let sum = AtomicU64::new(0);
        parallel_for(3, 100, |s, e| {
            assert_eq!((s, e), (0, 3));
            sum.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_items_is_a_noop_call() {
        parallel_for(0, 1, |s, e| assert_eq!(s, e));
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn sendptr_disjoint_writes() {
        let mut buf = vec![0.0f32; 64];
        let ptr = SendPtr(buf.as_mut_ptr());
        parallel_for(64, 4, |s, e| {
            for i in s..e {
                // SAFETY: ranges are disjoint per parallel_for contract.
                unsafe { ptr.write(i, i as f32) };
            }
        });
        assert_eq!(buf[63], 63.0);
        assert_eq!(buf[0], 0.0);
        assert_eq!(buf[10], 10.0);
    }
}
