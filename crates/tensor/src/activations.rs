//! ReLU and PReLU forward/backward.
//!
//! SESR uses PReLU after each residual addition at training time and offers
//! a ReLU variant for hardware efficiency (paper Secs. 3.1 and 5.5).

use crate::tensor::Tensor;

/// Rectified linear unit, `max(0, x)`.
pub fn relu(input: &Tensor) -> Tensor {
    input.map(|x| x.max(0.0))
}

/// In-place [`relu`]: `x = max(0, x)` for every element, no allocation.
/// Bit-identical to the allocating version (same `f32::max` per element).
pub fn relu_inplace(t: &mut Tensor) {
    for x in t.data_mut() {
        *x = x.max(0.0);
    }
}

/// Backward pass of [`relu`]: passes the gradient where the input was
/// positive.
///
/// # Panics
///
/// Panics on shape mismatch between `input` and `d_out`.
pub fn relu_backward(input: &Tensor, d_out: &Tensor) -> Tensor {
    input.zip_with(d_out, |x, g| if x > 0.0 { g } else { 0.0 })
}

/// Parametric ReLU with one learnable slope per channel:
/// `x >= 0 ? x : alpha[c] * x` for NCHW input.
///
/// # Panics
///
/// Panics if `alpha` does not have one element per channel or `input` is not
/// 4-D.
pub fn prelu(input: &Tensor, alpha: &Tensor) -> Tensor {
    let (n, c, h, w) = input.shape_obj().as_nchw();
    assert_eq!(alpha.shape(), &[c], "alpha must have one slope per channel");
    let mut out = Tensor::zeros(input.shape());
    let plane = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let a = alpha.data()[ci];
            let base = (ni * c + ci) * plane;
            for i in base..base + plane {
                let x = input.data()[i];
                out.data_mut()[i] = if x >= 0.0 { x } else { a * x };
            }
        }
    }
    out
}

/// In-place [`prelu`]: rewrites `t` channel by channel without
/// allocating. Bit-identical to the allocating version — the per-element
/// predicate and multiply are the same operations in the same order.
///
/// # Panics
///
/// Panics if `alpha` does not have one element per channel or `t` is not
/// 4-D.
pub fn prelu_inplace(t: &mut Tensor, alpha: &Tensor) {
    let (n, c, h, w) = t.shape_obj().as_nchw();
    assert_eq!(alpha.shape(), &[c], "alpha must have one slope per channel");
    let plane = h * w;
    let data = t.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let a = alpha.data()[ci];
            let base = (ni * c + ci) * plane;
            for x in &mut data[base..base + plane] {
                // Mirrors the allocating version's `else` arm exactly:
                // NaN fails `>= 0.0` there and must hit the multiply
                // here too, with the same `a * x` operand order.
                #[allow(clippy::neg_cmp_op_on_partial_ord, clippy::assign_op_pattern)]
                if !(*x >= 0.0) {
                    *x = a * *x;
                }
            }
        }
    }
}

/// Gradients of [`prelu`]: `(d_input, d_alpha)`.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn prelu_backward(input: &Tensor, alpha: &Tensor, d_out: &Tensor) -> (Tensor, Tensor) {
    let (n, c, h, w) = input.shape_obj().as_nchw();
    assert_eq!(alpha.shape(), &[c], "alpha must have one slope per channel");
    assert_eq!(input.shape(), d_out.shape(), "d_out shape mismatch");
    let mut d_input = Tensor::zeros(input.shape());
    let mut d_alpha = Tensor::zeros(&[c]);
    let plane = h * w;
    for ni in 0..n {
        for ci in 0..c {
            let a = alpha.data()[ci];
            let base = (ni * c + ci) * plane;
            let mut da = 0.0f32;
            for i in base..base + plane {
                let x = input.data()[i];
                let g = d_out.data()[i];
                if x >= 0.0 {
                    d_input.data_mut()[i] = g;
                } else {
                    d_input.data_mut()[i] = a * g;
                    da += x * g;
                }
            }
            d_alpha.data_mut()[ci] += da;
        }
    }
    (d_input, d_alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        let g = Tensor::from_vec(vec![10.0, 10.0, 10.0], &[3]);
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn prelu_applies_per_channel_slope() {
        let x = Tensor::from_vec(vec![-2.0, 2.0, -2.0, 2.0], &[1, 2, 1, 2]);
        let a = Tensor::from_vec(vec![0.5, 0.25], &[2]);
        let y = prelu(&x, &a);
        assert_eq!(y.data(), &[-1.0, 2.0, -0.5, 2.0]);
    }

    #[test]
    fn prelu_with_zero_alpha_is_relu() {
        let x = Tensor::randn(&[1, 3, 4, 4], 0.0, 1.0, 1);
        let a = Tensor::zeros(&[3]);
        assert!(prelu(&x, &a).approx_eq(&relu(&x), 0.0));
    }

    #[test]
    fn relu_inplace_exactly_matches_allocating() {
        let x = Tensor::randn(&[2, 3, 5, 7], 0.0, 1.0, 11);
        let expected = relu(&x);
        let mut y = x.clone();
        relu_inplace(&mut y);
        assert_eq!(y.data(), expected.data());
        assert_eq!(y.shape(), expected.shape());
    }

    #[test]
    fn prelu_inplace_exactly_matches_allocating() {
        let x = Tensor::randn(&[2, 3, 5, 7], 0.0, 1.0, 12);
        let a = Tensor::from_vec(vec![0.3, -0.2, 0.7], &[3]);
        let expected = prelu(&x, &a);
        let mut y = x.clone();
        prelu_inplace(&mut y, &a);
        assert_eq!(y.data(), expected.data());
        assert_eq!(y.shape(), expected.shape());
    }

    #[test]
    fn prelu_backward_finite_diff() {
        let x = Tensor::randn(&[1, 2, 3, 3], 0.0, 1.0, 2);
        let a = Tensor::from_vec(vec![0.3, -0.2], &[2]);
        let g = Tensor::randn(&[1, 2, 3, 3], 0.0, 1.0, 3);
        let loss = |x: &Tensor, a: &Tensor| prelu(x, a).mul(&g).sum();
        let (dx, da) = prelu_backward(&x, &a, &g);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp, &a) - loss(&xm, &a)) / (2.0 * eps as f64);
            assert!(
                (fd - dx.data()[idx] as f64).abs() < 1e-2,
                "dX[{idx}] fd={fd} an={}",
                dx.data()[idx]
            );
        }
        for idx in 0..2 {
            let mut ap = a.clone();
            ap.data_mut()[idx] += eps;
            let mut am = a.clone();
            am.data_mut()[idx] -= eps;
            let fd = (loss(&x, &ap) - loss(&x, &am)) / (2.0 * eps as f64);
            assert!(
                (fd - da.data()[idx] as f64).abs() < 1e-2,
                "dA[{idx}] fd={fd} an={}",
                da.data()[idx]
            );
        }
    }
}
