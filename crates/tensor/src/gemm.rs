//! Row-major single-precision matrix multiplication.
//!
//! `C = A * B` with `A: m x k`, `B: k x n`, `C: m x n`, all row-major.
//! All four entry points (`gemm`, `gemm_accumulate`, `gemm_at_b`,
//! `gemm_a_bt`) funnel into one packed, cache-blocked kernel:
//!
//! * **Panel packing.** `B` is packed per `(KC, NC)` block into
//!   column strips of width `NR = 8`, and each thread packs its rows of
//!   `A` into row panels of height `MR = 8`. Packing copies the operands
//!   into unit-stride, microkernel-ordered buffers once per block, so the
//!   transposed views used by the convolution gradients (`A^T * B`,
//!   `A * B^T`) cost a strided *pack* instead of a strided *inner loop*.
//! * **Blocking.** `KC = 256`, `NC = 1024`: one `B` block stays resident
//!   in L2 while every row panel streams over it.
//! * **Microkernel.** An `MR x NR` register tile updated through the
//!   runtime-dispatched [`crate::simd::Microkernel`] (explicit AVX2 or
//!   AVX2+FMA intrinsics when the CPU supports them, scalar otherwise).
//!   The GEMM always runs the process-global
//!   [`crate::simd::kernel_variant`] so its arithmetic matches every other
//!   kernel in the process — see `simd.rs` for the variant contract.
//! * **Autotuned blocking.** `NC` and the scheduling granularity come from
//!   [`crate::autotune::gemm_blocking`], measured once per shape. Blocking
//!   is numerically neutral (the `KC`-chain accumulation order is
//!   untouched), so tuning can never change output bits.
//!
//! Work is parallelized over `MR`-row blocks of `C` via
//! [`parallel_for`]'s persistent pool. Chunk boundaries only decide which
//! thread owns a row block; every `C` element is accumulated in the same
//! (k-block-sequential) order regardless of thread count, so results are
//! bit-identical from 1 to N threads (see DESIGN.md, "Threading model").

use crate::autotune::{gemm_blocking, GemmBlocking};
use crate::parallel::{parallel_for, SendPtr};
use crate::simd::default_microkernel;

/// Microkernel tile height (rows of `C` per register tile).
const MR: usize = 8;
/// Microkernel tile width (columns of `C` per register tile).
const NR: usize = 8;
/// k-dimension block: one packed `A` panel is `MR * KC` floats (8 KiB).
///
/// Public because the block size is part of this GEMM's *numeric*
/// contract: each `C` element is accumulated as one chain per `KC`-sized
/// k-block (chains start from 0.0; blocks are combined in order). An
/// external kernel that wants to be bit-identical to `gemm` — e.g. the
/// planner's direct convolution — must reproduce exactly this grouping.
pub const KC: usize = 256;
/// Largest n-dimension block: one packed `B` block is at most `KC * NC`
/// floats. The autotuner may pick a smaller block per shape, never a
/// larger one (the scratch sizing depends on this bound).
pub(crate) const NC: usize = 1024;

/// Computes `C = A * B` for row-major matrices.
///
/// # Panics
///
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    packed_gemm(a, k, 1, b, n, 1, c, m, k, n, false);
}

/// Computes `C += A * B` (no zeroing of `C`).
///
/// # Panics
///
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn gemm_accumulate(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    packed_gemm(a, k, 1, b, n, 1, c, m, k, n, true);
}

/// Computes `C = A^T * B` where `A: k x m` (row-major), yielding `C: m x n`.
/// Used by convolution weight gradients.
///
/// # Panics
///
/// Panics if slice lengths do not match.
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A must be k x m (transposed view)");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    // Logical A[i, p] lives at a[p * m + i]: row stride 1, column stride m.
    packed_gemm(a, 1, m, b, n, 1, c, m, k, n, false);
}

/// Computes `C = A * B^T` where `B: n x k` (row-major), yielding `C: m x n`.
/// Used by convolution input gradients.
///
/// # Panics
///
/// Panics if slice lengths do not match.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), n * k, "B must be n x k (transposed view)");
    assert_eq!(c.len(), m * n, "C must be m x n");
    // Logical B[p, j] lives at b[j * k + p]: row stride 1, column stride k.
    packed_gemm(a, k, 1, b, 1, k, c, m, k, n, false);
}

/// Number of scratch floats [`gemm_with_scratch`] needs for an `n`-column
/// multiply: one packed `B` block, `KC` rows by at most `NC` (rounded-up)
/// columns.
pub fn gemm_scratch_len(n: usize) -> usize {
    KC * NC.min(n.next_multiple_of(NR))
}

/// [`gemm`] variant that packs `B` into caller-provided scratch instead of
/// allocating. `scratch` must hold at least [`gemm_scratch_len`]`(n)`
/// floats; contents on entry are ignored and clobbered. Bit-identical to
/// [`gemm`] — the kernel, blocking, and accumulation order are the same,
/// only the source of the pack buffer differs.
///
/// # Panics
///
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`, or scratch is
/// too small.
pub fn gemm_with_scratch(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    assert!(
        scratch.len() >= gemm_scratch_len(n),
        "scratch too small: {} < {}",
        scratch.len(),
        gemm_scratch_len(n)
    );
    let blocking = gemm_blocking(m, k, n);
    packed_gemm_into(a, k, 1, b, n, 1, c, m, k, n, false, scratch, blocking);
}

/// The shared packed kernel: `C (+)= A * B` where the logical operands are
/// addressed through strides (`A[i, p] = a[i*a_rs + p*a_cs]`,
/// `B[p, j] = b[p*b_rs + j*b_cs]`) and `C` is row-major `m x n`.
///
/// Accumulation order per `C` element is fixed by the block structure
/// (k-blocks in order, `p` sequential within a block), never by chunk
/// boundaries, which is what keeps results thread-count-invariant.
#[allow(clippy::too_many_arguments)]
fn packed_gemm(
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let mut bpack = vec![0.0f32; gemm_scratch_len(n)];
    let blocking = gemm_blocking(m, k, n);
    packed_gemm_into(
        a, a_rs, a_cs, b, b_rs, b_cs, c, m, k, n, accumulate, &mut bpack, blocking,
    );
}

/// Runs the packed kernel with explicit blocking on caller scratch — the
/// autotuner's measurement entry point (skips the tuned-choice lookup
/// that [`packed_gemm`] performs, which would recurse).
#[allow(clippy::too_many_arguments)]
pub(crate) fn probe_packed(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [f32],
    blocking: &GemmBlocking,
) {
    packed_gemm_into(a, k, 1, b, n, 1, c, m, k, n, false, scratch, *blocking);
}

/// [`packed_gemm`] body with the `B` pack buffer and blocking supplied by
/// the caller.
#[allow(clippy::too_many_arguments)]
fn packed_gemm_into(
    a: &[f32],
    a_rs: usize,
    a_cs: usize,
    b: &[f32],
    b_rs: usize,
    b_cs: usize,
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    bpack: &mut [f32],
    blocking: GemmBlocking,
) {
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let cp = SendPtr(c.as_mut_ptr());
    let mblocks = m.div_ceil(MR);
    let GemmBlocking { nc, mc_blocks } = blocking.clamped();
    // One dispatch per call: the process-global variant, hoisted out of
    // every loop (see the module doc for the variant contract).
    let mk = default_microkernel();

    for nb in (0..n).step_by(nc) {
        let nend = (nb + nc).min(n);
        let strips = (nend - nb).div_ceil(NR);
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            let kc = kend - kb;

            // Pack this B block once, shared read-only by every thread:
            // strip s holds columns [nb + s*NR, nb + (s+1)*NR) in p-major
            // order, zero-padded on the right edge.
            for s in 0..strips {
                let j0 = nb + s * NR;
                let jw = NR.min(nend - j0);
                let strip = &mut bpack[s * kc * NR..(s + 1) * kc * NR];
                for (p, row) in strip.chunks_exact_mut(NR).enumerate() {
                    let bbase = (kb + p) * b_rs + j0 * b_cs;
                    for (jr, slot) in row.iter_mut().enumerate() {
                        *slot = if jr < jw { b[bbase + jr * b_cs] } else { 0.0 };
                    }
                }
            }
            let bpack = &bpack[..];

            let first_k_block = kb == 0 && !accumulate;
            parallel_for(mblocks, mc_blocks, |blk_start, blk_end| {
                let mut apack = [0.0f32; MR * KC];
                for blk in blk_start..blk_end {
                    let i0 = blk * MR;
                    let mh = MR.min(m - i0);
                    // Pack this thread's A panel: p-major, MR-wide rows,
                    // zero-padded below the last valid row.
                    for (p, row) in apack[..kc * MR].chunks_exact_mut(MR).enumerate() {
                        let abase = i0 * a_rs + (kb + p) * a_cs;
                        for (ir, slot) in row.iter_mut().enumerate() {
                            *slot = if ir < mh { a[abase + ir * a_rs] } else { 0.0 };
                        }
                    }
                    for s in 0..strips {
                        let j0 = nb + s * NR;
                        let jw = NR.min(nend - j0);
                        let strip = &bpack[s * kc * NR..(s + 1) * kc * NR];
                        let mut acc = [[0.0f32; NR]; MR];
                        mk.gemm_8x8(&apack[..kc * MR], strip, kc, &mut acc);
                        // Write back only the valid rows/columns; padded
                        // lanes accumulated exact zeros.
                        for (ir, accrow) in acc.iter().enumerate().take(mh) {
                            let cbase = (i0 + ir) * n + j0;
                            for (jr, &v) in accrow.iter().enumerate().take(jw) {
                                // SAFETY: row blocks are disjoint across
                                // parallel_for chunks, and [cbase, cbase+jw)
                                // is in bounds for the m x n buffer.
                                unsafe {
                                    if first_k_block {
                                        cp.write(cbase + jr, v);
                                    } else {
                                        cp.add_assign(cbase + jr, v);
                                    }
                                }
                            }
                        }
                    }
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        crate::Tensor::randn(&[n], 0.0, 1.0, seed).into_vec()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive(&a, &b, m, k, n), 1e-4);
    }

    #[test]
    fn matches_naive_large_parallel() {
        let (m, k, n) = (64, 300, 37);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive(&a, &b, m, k, n), 1e-2);
    }

    #[test]
    fn matches_naive_across_edge_shapes() {
        // Hit every panel edge case: m/n below one tile, exact multiples,
        // ragged remainders, and k spanning multiple KC blocks.
        for &(m, k, n) in &[
            (1, 1, 1),
            (8, 8, 8),
            (9, 17, 9),
            (7, KC + 3, 11),
            (16, 2 * KC, 24),
            (5, 40, NC / 4 + 13),
        ] {
            let a = rand_vec(m * k, (m + k) as u64);
            let b = rand_vec(k * n, (k + n) as u64);
            let mut c = vec![0.0; m * n];
            gemm(&a, &b, &mut c, m, k, n);
            let tol = 1e-4 * (k as f32).sqrt();
            assert_close(&c, &naive(&a, &b, m, k, n), tol);
        }
    }

    #[test]
    fn accumulate_adds_onto_existing() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_accumulate(&a, &b, &mut c, m, k, n);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let (m, k, n) = (5, 7, 3);
        // A stored as k x m.
        let a_t = rand_vec(k * m, 5);
        let b = rand_vec(k * n, 6);
        // Build explicit A (m x k).
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm_at_b(&a_t, &b, &mut c1, m, k, n);
        assert_close(&c1, &naive(&a, &b, m, k, n), 1e-3);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = rand_vec(m * k, 7);
        // B stored as n x k.
        let b_t = rand_vec(n * k, 8);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm_a_bt(&a, &b_t, &mut c1, m, k, n);
        assert_close(&c1, &naive(&a, &b, m, k, n), 1e-3);
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        use crate::parallel::{num_threads, set_num_threads};
        let _guard = crate::simd::variant_test_lock();
        let (m, k, n) = (33, KC + 7, 29);
        let a = rand_vec(m * k, 9);
        let b = rand_vec(k * n, 10);
        let before = num_threads();
        set_num_threads(1);
        let mut c1 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n);
        set_num_threads(4);
        let mut c4 = vec![0.0; m * n];
        gemm(&a, &b, &mut c4, m, k, n);
        set_num_threads(before);
        assert_eq!(c1, c4, "accumulation order must not depend on threads");
    }

    #[test]
    fn results_are_bit_identical_across_blockings() {
        // Blocking (nc, scheduling granularity) must be numerically
        // neutral: the autotuner may pick any candidate without changing
        // output bits.
        let _guard = crate::simd::variant_test_lock();
        let (m, k, n) = (21, KC + 9, NC + 31);
        let a = rand_vec(m * k, 31);
        let b = rand_vec(k * n, 32);
        let mut want = vec![0.0; m * n];
        let mut scratch = vec![0.0; gemm_scratch_len(n)];
        probe_packed(
            &a,
            &b,
            &mut want,
            m,
            k,
            n,
            &mut scratch,
            &GemmBlocking::baseline(),
        );
        for (nc, mc_blocks) in [(8usize, 1usize), (256, 2), (512, 4), (1000, 3)] {
            let mut got = vec![0.0; m * n];
            probe_packed(
                &a,
                &b,
                &mut got,
                m,
                k,
                n,
                &mut scratch,
                &GemmBlocking { nc, mc_blocks },
            );
            assert_eq!(want, got, "nc={nc} mc_blocks={mc_blocks} changed bits");
        }
    }

    #[test]
    fn avx2_variant_is_bit_identical_to_scalar() {
        // The non-FMA SIMD variant rounds twice per multiply-add exactly
        // like the scalar kernel: whole-GEMM outputs must match bitwise.
        use crate::simd::{set_kernel_variant, variant_test_lock, KernelVariant};
        if !KernelVariant::Avx2.available() {
            return;
        }
        let _guard = variant_test_lock();
        let (m, k, n) = (19, KC + 3, 41);
        let a = rand_vec(m * k, 41);
        let b = rand_vec(k * n, 42);
        let prev = set_kernel_variant(KernelVariant::Scalar);
        let mut c_scalar = vec![0.0; m * n];
        gemm(&a, &b, &mut c_scalar, m, k, n);
        set_kernel_variant(KernelVariant::Avx2);
        let mut c_avx2 = vec![0.0; m * n];
        gemm(&a, &b, &mut c_avx2, m, k, n);
        set_kernel_variant(prev);
        assert_eq!(c_scalar, c_avx2);
    }

    #[test]
    fn with_scratch_is_bit_identical_to_gemm() {
        let _guard = crate::simd::variant_test_lock();
        let (m, k, n) = (19, KC + 5, NC / 2 + 9);
        let a = rand_vec(m * k, 21);
        let b = rand_vec(k * n, 22);
        let mut c1 = vec![0.0; m * n];
        gemm(&a, &b, &mut c1, m, k, n);
        let mut c2 = vec![0.0; m * n];
        // Poison the scratch to prove entry contents don't matter.
        let mut scratch = vec![f32::NAN; gemm_scratch_len(n)];
        gemm_with_scratch(&a, &b, &mut c2, m, k, n, &mut scratch);
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "scratch too small")]
    fn with_scratch_rejects_short_scratch() {
        let mut c = vec![0.0; 4];
        let mut scratch = vec![0.0; 1];
        gemm_with_scratch(&[1.0; 4], &[1.0; 4], &mut c, 2, 2, 2, &mut scratch);
    }

    #[test]
    #[should_panic(expected = "A must be m x k")]
    fn rejects_bad_dims() {
        let mut c = vec![0.0; 4];
        gemm(&[1.0; 3], &[1.0; 4], &mut c, 2, 2, 2);
    }

    #[test]
    fn one_by_one() {
        let mut c = vec![0.0];
        gemm(&[3.0], &[4.0], &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }
}
