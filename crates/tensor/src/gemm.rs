//! Row-major single-precision matrix multiplication.
//!
//! `C = A * B` with `A: m x k`, `B: k x n`, `C: m x n`, all row-major. The
//! kernel is a cache-blocked loop nest parallelized over rows of `C`; it is
//! deliberately simple (no SIMD intrinsics) but vectorizes well under
//! `-C opt-level=3` thanks to the unit-stride inner loop over `n`.

use crate::parallel::{parallel_for, SendPtr};

/// Computes `C = A * B` for row-major matrices.
///
/// # Panics
///
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    c.fill(0.0);
    gemm_accumulate(a, b, c, m, k, n);
}

/// Computes `C += A * B` (no zeroing of `C`).
///
/// # Panics
///
/// Panics if slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn gemm_accumulate(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    const KC: usize = 256; // k-dimension blocking to keep B panels in cache
    let cp = SendPtr(c.as_mut_ptr());
    parallel_for(m, 8, |row_start, row_end| {
        for kb in (0..k).step_by(KC) {
            let kend = (kb + KC).min(k);
            for i in row_start..row_end {
                for p in kb..kend {
                    let aip = a[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..p * n + n];
                    let cbase = i * n;
                    for (j, &bv) in brow.iter().enumerate() {
                        // SAFETY: rows in [row_start, row_end) are disjoint
                        // across parallel_for chunks.
                        unsafe { cp.add_assign(cbase + j, aip * bv) };
                    }
                }
            }
        }
    });
}

/// Computes `C = A^T * B` where `A: k x m` (row-major), yielding `C: m x n`.
/// Used by convolution weight gradients.
///
/// # Panics
///
/// Panics if slice lengths do not match.
pub fn gemm_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A must be k x m (transposed view)");
    assert_eq!(b.len(), k * n, "B must be k x n");
    assert_eq!(c.len(), m * n, "C must be m x n");
    c.fill(0.0);
    let cp = SendPtr(c.as_mut_ptr());
    parallel_for(m, 8, |row_start, row_end| {
        for p in 0..k {
            let arow = &a[p * m..p * m + m];
            let brow = &b[p * n..p * n + n];
            for (i, &av) in arow.iter().enumerate().take(row_end).skip(row_start) {
                if av == 0.0 {
                    continue;
                }
                let cbase = i * n;
                for (j, &bv) in brow.iter().enumerate() {
                    // SAFETY: disjoint rows per parallel_for contract.
                    unsafe { cp.add_assign(cbase + j, av * bv) };
                }
            }
        }
    });
}

/// Computes `C = A * B^T` where `B: n x k` (row-major), yielding `C: m x n`.
/// Used by convolution input gradients.
///
/// # Panics
///
/// Panics if slice lengths do not match.
pub fn gemm_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A must be m x k");
    assert_eq!(b.len(), n * k, "B must be n x k (transposed view)");
    assert_eq!(c.len(), m * n, "C must be m x n");
    let cp = SendPtr(c.as_mut_ptr());
    parallel_for(m, 8, |row_start, row_end| {
        for i in row_start..row_end {
            let arow = &a[i * k..i * k + k];
            for j in 0..n {
                let brow = &b[j * k..j * k + k];
                let mut acc = 0.0f32;
                for (av, bv) in arow.iter().zip(brow.iter()) {
                    acc += av * bv;
                }
                // SAFETY: disjoint rows per parallel_for contract.
                unsafe { cp.write(i * n + j, acc) };
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(n: usize, seed: u64) -> Vec<f32> {
        crate::Tensor::randn(&[n], 0.0, 1.0, seed).into_vec()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_small() {
        let (m, k, n) = (3, 4, 5);
        let a = rand_vec(m * k, 1);
        let b = rand_vec(k * n, 2);
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive(&a, &b, m, k, n), 1e-4);
    }

    #[test]
    fn matches_naive_large_parallel() {
        let (m, k, n) = (64, 300, 37);
        let a = rand_vec(m * k, 3);
        let b = rand_vec(k * n, 4);
        let mut c = vec![0.0; m * n];
        gemm(&a, &b, &mut c, m, k, n);
        assert_close(&c, &naive(&a, &b, m, k, n), 1e-2);
    }

    #[test]
    fn accumulate_adds_onto_existing() {
        let (m, k, n) = (2, 2, 2);
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![1.0; 4];
        gemm_accumulate(&a, &b, &mut c, m, k, n);
        assert_eq!(c, vec![6.0, 7.0, 8.0, 9.0]);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let (m, k, n) = (5, 7, 3);
        // A stored as k x m.
        let a_t = rand_vec(k * m, 5);
        let b = rand_vec(k * n, 6);
        // Build explicit A (m x k).
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm_at_b(&a_t, &b, &mut c1, m, k, n);
        assert_close(&c1, &naive(&a, &b, m, k, n), 1e-3);
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let (m, k, n) = (4, 6, 5);
        let a = rand_vec(m * k, 7);
        // B stored as n x k.
        let b_t = rand_vec(n * k, 8);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c1 = vec![0.0; m * n];
        gemm_a_bt(&a, &b_t, &mut c1, m, k, n);
        assert_close(&c1, &naive(&a, &b, m, k, n), 1e-3);
    }

    #[test]
    #[should_panic(expected = "A must be m x k")]
    fn rejects_bad_dims() {
        let mut c = vec![0.0; 4];
        gemm(&[1.0; 3], &[1.0; 4], &mut c, 2, 2, 2);
    }

    #[test]
    fn one_by_one() {
        let mut c = vec![0.0];
        gemm(&[3.0], &[4.0], &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }
}
